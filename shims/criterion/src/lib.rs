//! Offline shim for the subset of Criterion this workspace uses. The
//! build environment has no crates.io access, so this provides a
//! source-compatible `Criterion`/`Bencher`/`criterion_group!` surface
//! that actually measures (median of `sample_size` timed samples) and
//! prints one line per benchmark. Statistical rigor, plots and history
//! are out of scope — swap the real crate back in when networked.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup state is batched; only the variants the
/// workspace names exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for CLI compatibility with real Criterion harnesses;
    /// filtering/baseline flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!("{id:<40} median {}", fmt_ns(median));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Batch geometrically until the timing window is comfortably
        // above Instant's granularity, so nanosecond-scale routines
        // measure themselves rather than clock overhead.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.elapsed += elapsed;
            self.iters += batch;
            if elapsed >= Duration::from_millis(1) || self.iters >= 1 << 22 {
                return;
            }
            batch = batch.saturating_mul(4);
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Mirrors `criterion_group!` — both the simple list form and the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| n += 1));
        // Each of the 3 samples batches the cheap routine up enough to
        // out-measure clock granularity.
        assert!(n >= 3, "routine ran {n} times");
    }

    #[test]
    fn cheap_routines_batch_past_timer_granularity() {
        let mut iters = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("nop", |b| b.iter(|| iters += 1));
        assert!(
            iters > 100,
            "a ~1ns routine must batch, got {iters} iterations"
        );
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut setups = 0u32;
        Criterion::default()
            .sample_size(4)
            .bench_function("batched", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                        vec![1u8; 16]
                    },
                    |v| v.len(),
                    BatchSize::LargeInput,
                )
            });
        assert_eq!(setups, 4);
    }
}
