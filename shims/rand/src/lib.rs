//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`. The build environment has
//! no crates.io access; this keeps call sites source-compatible so the
//! real crate can be swapped back in unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! real `StdRng` (ChaCha12), so absolute sequences differ, but all the
//! workspace requires is determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Minimal stand-in for `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Minimal stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Minimal stand-in for `rand::Rng`, blanket-implemented for every
/// [`RngCore`] like the real trait.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random mantissa bits, exactly like rand's `Open01`-style draw.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can produce one uniform sample; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // Sign-extension + wrapping keeps the modular arithmetic
                // correct even when the span exceeds T::MAX (e.g. a full
                // signed domain); offsets land back in range.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Wrapping keeps this correct for full-domain ranges like
                // i8::MIN..=i8::MAX (span 256 > i8::MAX); spans of the
                // ≤64-bit types implemented here never overflow u128.
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ behind the `StdRng` name used at call sites.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u16..=9);
            assert!((3..=9).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn full_signed_domain_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(3);
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..200 {
            let v = r.gen_range(i8::MIN..=i8::MAX);
            saw_neg |= v < 0;
            saw_pos |= v >= 0;
            let w = r.gen_range(-100i32..100);
            assert!((-100..100).contains(&w));
        }
        assert!(
            saw_neg && saw_pos,
            "full-domain draws must cover both signs"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
