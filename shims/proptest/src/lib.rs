//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest!` macro over `ident in strategy` arguments, integer-range /
//! `any::<T>()` / tuple / `collection::vec` strategies, `ProptestConfig`,
//! and the `prop_assert*` macros. Inputs are sampled uniformly at random
//! (deterministically, seeded from the test name) with no shrinking —
//! enough to exercise the properties; swap the real crate back in when
//! networked.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use super::*;

    /// Mirrors `proptest::test_runner::Config` (re-exported in the real
    /// prelude as `ProptestConfig`). Only the fields this workspace
    /// names exist; `max_shrink_iters` is accepted and ignored because
    /// the shim never shrinks.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65536,
            }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Deterministic per-test runner: the seed is a hash of the test
        /// name, so failures reproduce across runs without a seed file.
        pub fn new(_config: &Config, test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
            }
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use super::*;

    /// A value generator. The real trait is far richer (shrink trees,
    /// combinators); the shim only needs uniform sampling.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `Just`-style constant strategy (part of the real prelude).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Mirrors `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec` for `Range<usize>` sizes.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The real macro builds failure-persisting, shrinking test runners;
/// the shim expands each property to a plain `#[test]` loop over
/// `config.cases` sampled inputs. Assertion macros panic directly, so
/// a failing case reports the panic message (inputs are deterministic
/// per test name, hence reproducible).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for __case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&$strategy, runner.rng());
                )+
                $body
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    (config = ($config:expr);) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u16..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5, "y was {y}");
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u16..4, 1u16..3), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 4 && (1..3).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>()) {
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let cfg = ProptestConfig::with_cases(1);
        let mut a = crate::test_runner::TestRunner::new(&cfg, "t");
        let mut b = crate::test_runner::TestRunner::new(&cfg, "t");
        use rand::RngCore;
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }
}
