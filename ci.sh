#!/usr/bin/env bash
# CI gate for the rtm workspace. Mirrors the tier-1 verify plus style
# and lint gates. Run from the repository root.
set -euo pipefail

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rtm-lint (static analysis: shard-locality / plan-pipeline discipline)"
# Five rules over every workspace .rs file; every accepted finding is
# justified in lint-allow.toml (stale entries fail the run). The lint
# prints its own runtime — keep it sub-second. Rules and allowlist
# policy: ARCHITECTURE.md, "Static analysis & concurrency-readiness".
cargo run -q --release -p rtm-lint
cargo test -q -p rtm-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> parallel-vs-sequential equivalence (release, full {1,2,4,8} thread pin)"
# The debug workspace pass above runs the schedule-invariance suite in
# its slimmed debug shape; this release pass runs the full net — every
# equality checked under thread counts 1, 2, 4 and 8 — plus the
# baseline-oracle counter pins. Both engines must produce FleetReports
# equal in every field. Argument: crates/fleet/src/engine.rs docs.
cargo test -q --release -p rtm-fleet --test parallel_determinism
cargo test -q --release -p rtm-fleet --test baseline_oracle

echo "==> immediate-vs-deferred admission equivalence (release, full engine x mode grid)"
# Two-phase admission: the routing edge decides (reserve), the engine's
# execute phase implements. Reports and merged event streams must be
# byte-identical between immediate and deferred execution under both
# engines and thread counts {1,2,4,8}, including the forced deferred
# LoadFailed failover anchors. Argument: crates/fleet/src/fleet.rs docs.
cargo test -q --release -p rtm-fleet --test deferred_equivalence

echo "==> work-stealing-off executor (rtm-fleet --no-default-features)"
# Without the 'parallel' feature the engine deals shards to static
# per-worker hands (no unsafe, no work stealing). The same equivalence
# net must pass verbatim against it.
cargo test -q --release -p rtm-fleet --no-default-features --test parallel_determinism

if [ "${RTM_STRESS:-0}" = "1" ]; then
  echo "==> RTM_STRESS=1: N=1024 soak + N=16/N=64 oracle scale rows (release)"
  # Opt-in: minutes of single-core wall. The soak prints a
  # sequential-vs-parallel speedup ratio (never gated); the scale rows
  # re-pin the big BENCH_fleet.json counters through the library API.
  cargo test -q --release -p rtm-fleet --test stress_parallel -- --ignored --nocapture
  cargo test -q --release -p rtm-fleet --test baseline_oracle -- --ignored
fi

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo test --workspace --doc"
cargo test --workspace -q --doc

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> example smoke: fleet_loop (3 scenarios x 4 routing policies on a 3-device fleet)"
cargo run --release --example fleet_loop > /dev/null

echo "==> trace smoke: fleet_loop --trace (JSONL export, self-validating)"
# The exporter round-trips every emitted line through the rtm-obs JSONL
# parser (byte-exact) and cross-checks seven event-count identities
# against the FleetReport before exiting 0 — a failed identity or a
# line that doesn't re-serialise identically is a nonzero exit here.
cargo run --release --example fleet_loop -- --trace target/fleet_trace.jsonl > /dev/null
test -s target/fleet_trace.jsonl

echo "==> perf gate: fleet_loop --baseline vs checked-in BENCH_fleet.json"
# Deterministic counters (admissions, frames written, make_room passes,
# plans reused, ...) are exact-match gated; wall time and the
# arrivals/s throughput printed beside each row are for the log, never
# gated. Every row is tagged with its stepping engine and admission
# mode; the N=256 rows (sequential/parallel x immediate/deferred) must
# agree on every counter — the byte diff doubles as a standing
# cross-engine *and* cross-mode equivalence gate. Regenerate with:
#   cargo run --release --example fleet_loop -- --baseline BENCH_fleet.json
cargo run --release --example fleet_loop -- --baseline target/BENCH_fleet.json \
  | tee target/fleet_baseline.log
if ! diff -u BENCH_fleet.json target/BENCH_fleet.json; then
  echo "perf counters drifted from BENCH_fleet.json — investigate, then"
  echo "regenerate the baseline if the change is intentional."
  exit 1
fi

echo "==> twin-row byte agreement: N=256 engine x mode grid"
# Strip the engine/mode tags off the four N=256 rows; the surviving
# counter text must be one identical line repeated four times. This is
# the explicit form of the gate the byte diff above implies: any
# engine- or mode-dependent counter would break the agreement here
# even if someone regenerated the baseline without looking.
n256=$(grep '"devices": 256' BENCH_fleet.json \
  | sed -e 's/"engine": "[^"]*", //' -e 's/"mode": "[^"]*", //' \
  | sort -u | wc -l)
if [ "$n256" != "1" ]; then
  echo "N=256 twin rows disagree across engine/mode (got $n256 distinct rows)"
  exit 1
fi

echo "==> twin-row byte agreement: tiered-mix preemption rows, engine x mode grid"
# Same discipline for the QoS rows: the four preemption-on tiered-mix
# rows (sequential/parallel x immediate/deferred) must agree on every
# counter — per-tier admissions, preemptions, eviction flows and all —
# once the engine/mode tags are stripped.
ntier=$(grep '"scenario": "tiered-mix' BENCH_fleet.json \
  | grep '"preemption": true' \
  | sed -e 's/"engine": "[^"]*", //' -e 's/"mode": "[^"]*", //' -e 's/,$//' \
  | sort -u | wc -l)
if [ "$ntier" != "1" ]; then
  echo "tiered-mix preemption rows disagree across engine/mode (got $ntier distinct rows)"
  exit 1
fi

echo "==> QoS gate: preemption strictly improves interactive admission"
# The headline tiered claim, gated on the checked-in baseline: the
# preemption-on rows must admit strictly more interactive arrivals
# than the preemption-off row of the same workload.
ti_off=$(grep '"scenario": "tiered-mix' BENCH_fleet.json \
  | grep '"preemption": false' \
  | sed -E 's/.*"admitted_interactive": ([0-9]+).*/\1/')
ti_on=$(grep '"scenario": "tiered-mix' BENCH_fleet.json \
  | grep '"preemption": true' | head -1 \
  | sed -E 's/.*"admitted_interactive": ([0-9]+).*/\1/')
if [ -z "$ti_off" ] || [ -z "$ti_on" ] || [ "$ti_on" -le "$ti_off" ]; then
  echo "preemption did not strictly improve interactive admission (off=$ti_off on=$ti_on)"
  exit 1
fi

echo "==> QoS demo smoke: fleet_loop --tiered (exits nonzero unless preemption helps)"
cargo run --release --example fleet_loop -- --tiered > /dev/null

echo "==> profile smoke: execute phase absorbs deferred load work"
# The deferred scale rows' share tables must show a nonzero execute
# phase — the two-phase pipeline actually moving implementation work
# off the routing edge. Shares are wall-clock and never gated beyond
# this presence check.
if ! grep -E 'execute [1-9][0-9]*\.[0-9]%' target/fleet_baseline.log > /dev/null; then
  echo "no deferred run showed a nonzero execute phase share"
  exit 1
fi

echo "CI OK"
