#!/usr/bin/env bash
# CI gate for the rtm workspace. Mirrors the tier-1 verify plus style
# and lint gates. Run from the repository root.
set -euo pipefail

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rtm-lint (static analysis: shard-locality / plan-pipeline discipline)"
# Five rules over every workspace .rs file; every accepted finding is
# justified in lint-allow.toml (stale entries fail the run). The lint
# prints its own runtime — keep it sub-second. Rules and allowlist
# policy: ARCHITECTURE.md, "Static analysis & concurrency-readiness".
cargo run -q --release -p rtm-lint
cargo test -q -p rtm-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo test --workspace --doc"
cargo test --workspace -q --doc

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> example smoke: fleet_loop (3 scenarios x 4 routing policies on a 3-device fleet)"
cargo run --release --example fleet_loop > /dev/null

echo "==> perf gate: fleet_loop --baseline vs checked-in BENCH_fleet.json"
# Deterministic counters (admissions, frames written, make_room passes,
# plans reused, ...) are exact-match gated; wall time is printed in the
# step output but never gated. Regenerate the baseline with:
#   cargo run --release --example fleet_loop -- --baseline BENCH_fleet.json
cargo run --release --example fleet_loop -- --baseline target/BENCH_fleet.json
if ! diff -u BENCH_fleet.json target/BENCH_fleet.json; then
  echo "perf counters drifted from BENCH_fleet.json — investigate, then"
  echo "regenerate the baseline if the change is intentional."
  exit 1
fi

echo "CI OK"
