#!/usr/bin/env bash
# CI gate for the rtm workspace. Mirrors the tier-1 verify plus style
# and lint gates. Run from the repository root.
set -euo pipefail

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rtm-lint (static analysis: shard-locality / plan-pipeline discipline)"
# Five rules over every workspace .rs file; every accepted finding is
# justified in lint-allow.toml (stale entries fail the run). The lint
# prints its own runtime — keep it sub-second. Rules and allowlist
# policy: ARCHITECTURE.md, "Static analysis & concurrency-readiness".
cargo run -q --release -p rtm-lint
cargo test -q -p rtm-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> parallel-vs-sequential equivalence (release, full {1,2,4,8} thread pin)"
# The debug workspace pass above runs the schedule-invariance suite in
# its slimmed debug shape; this release pass runs the full net — every
# equality checked under thread counts 1, 2, 4 and 8 — plus the
# baseline-oracle counter pins. Both engines must produce FleetReports
# equal in every field. Argument: crates/fleet/src/engine.rs docs.
cargo test -q --release -p rtm-fleet --test parallel_determinism
cargo test -q --release -p rtm-fleet --test baseline_oracle

echo "==> work-stealing-off executor (rtm-fleet --no-default-features)"
# Without the 'parallel' feature the engine deals shards to static
# per-worker hands (no unsafe, no work stealing). The same equivalence
# net must pass verbatim against it.
cargo test -q --release -p rtm-fleet --no-default-features --test parallel_determinism

if [ "${RTM_STRESS:-0}" = "1" ]; then
  echo "==> RTM_STRESS=1: N=1024 soak + N=16/N=64 oracle scale rows (release)"
  # Opt-in: minutes of single-core wall. The soak prints a
  # sequential-vs-parallel speedup ratio (never gated); the scale rows
  # re-pin the big BENCH_fleet.json counters through the library API.
  cargo test -q --release -p rtm-fleet --test stress_parallel -- --ignored --nocapture
  cargo test -q --release -p rtm-fleet --test baseline_oracle -- --ignored
fi

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo test --workspace --doc"
cargo test --workspace -q --doc

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> example smoke: fleet_loop (3 scenarios x 4 routing policies on a 3-device fleet)"
cargo run --release --example fleet_loop > /dev/null

echo "==> trace smoke: fleet_loop --trace (JSONL export, self-validating)"
# The exporter round-trips every emitted line through the rtm-obs JSONL
# parser (byte-exact) and cross-checks seven event-count identities
# against the FleetReport before exiting 0 — a failed identity or a
# line that doesn't re-serialise identically is a nonzero exit here.
cargo run --release --example fleet_loop -- --trace target/fleet_trace.jsonl > /dev/null
test -s target/fleet_trace.jsonl

echo "==> perf gate: fleet_loop --baseline vs checked-in BENCH_fleet.json"
# Deterministic counters (admissions, frames written, make_room passes,
# plans reused, ...) are exact-match gated; wall time and the
# arrivals/s throughput printed beside each row are for the log, never
# gated. Every row is tagged with its stepping engine, and the twin
# N=256 rows (sequential vs parallel) must agree on every counter —
# the byte diff doubles as a standing cross-engine equivalence gate.
# Regenerate the baseline with:
#   cargo run --release --example fleet_loop -- --baseline BENCH_fleet.json
cargo run --release --example fleet_loop -- --baseline target/BENCH_fleet.json
if ! diff -u BENCH_fleet.json target/BENCH_fleet.json; then
  echo "perf counters drifted from BENCH_fleet.json — investigate, then"
  echo "regenerate the baseline if the change is intentional."
  exit 1
fi

echo "CI OK"
