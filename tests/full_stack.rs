//! Cross-crate integration: netlist → mapping → place & route →
//! configuration memory → partial bitstream → Boundary Scan → twin
//! device, with behavioural equivalence at every stage.

use rtm::bitstream::PartialBitstream;
use rtm::fpga::geom::{ClbCoord, Rect};
use rtm::fpga::part::Part;
use rtm::fpga::Device;
use rtm::jtag::JtagPort;
use rtm::netlist::itc99::{self, Variant};
use rtm::netlist::techmap::{map_to_luts, MappedSim};
use rtm::netlist::GoldenSim;
use rtm::sim::design::implement;
use rtm::sim::devsim::DeviceSim;

#[test]
fn netlist_mapping_and_device_agree_cycle_for_cycle() {
    for name in ["b01", "b02", "b06"] {
        let netlist = itc99::generate(itc99::profile(name).unwrap(), Variant::FreeRunning);
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let placed = implement(&mut dev, &mapped, Rect::new(ClbCoord::new(2, 2), 16, 16)).unwrap();

        let mut golden = GoldenSim::new(&netlist);
        let mut msim = MappedSim::new(&mapped);
        let mut dsim = DeviceSim::new(&dev, &placed);
        let width = netlist.inputs().len();
        for cycle in 0..60u64 {
            let inputs: Vec<bool> = (0..width).map(|b| (cycle >> (b % 8)) & 1 == 1).collect();
            golden.step(&inputs).unwrap();
            let mouts = msim.step(&inputs).unwrap();
            dsim.step(&dev, &inputs).unwrap();
            let gouts = golden.outputs();
            assert_eq!(mouts, gouts, "{name}: mapped diverged at cycle {cycle}");
            let douts = dsim.outputs();
            for (i, (g, d)) in gouts.iter().zip(douts.iter()).enumerate() {
                assert_eq!(
                    d.to_bool(),
                    Some(*g),
                    "{name}: device output {i} diverged at cycle {cycle}"
                );
            }
        }
        assert!(dsim.glitches().is_empty(), "{name}: {:?}", dsim.glitches());
    }
}

#[test]
fn partial_bitstream_transports_whole_design_over_jtag() {
    let netlist = itc99::generate(itc99::profile("b06").unwrap(), Variant::GatedClock);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut golden_dev = Device::new(Part::Xcv200);
    let placed = implement(
        &mut golden_dev,
        &mapped,
        Rect::new(ClbCoord::new(3, 3), 14, 14),
    )
    .unwrap();

    // Generate the partial bitstream from blank to configured…
    let blank = Device::new(Part::Xcv200);
    let partial = PartialBitstream::diff(blank.config(), golden_dev.config()).unwrap();
    assert!(
        partial.frame_count() > 50,
        "a real design spans many frames"
    );

    // …play it into a twin through the Boundary Scan port…
    let mut twin = Device::new(Part::Xcv200);
    let mut port = JtagPort::new(Part::Xcv200);
    let report = port.configure(partial.words(), &mut twin).unwrap();
    assert_eq!(report.frames_written, partial.frame_count());
    assert!(report.crc_checked, "the stream carries a valid CRC");
    assert!(
        port.tck_cycles() >= partial.len_bits(),
        "boundary scan costs at least one TCK per bit"
    );

    // …and the twin must be bit-identical and behave identically.
    assert!(twin.config().diff_frames(golden_dev.config()).is_empty());
    let mut sim_a = DeviceSim::new(&golden_dev, &placed);
    let mut sim_b = DeviceSim::new(&twin, &placed);
    let width = netlist.inputs().len();
    for cycle in 0..40u64 {
        let inputs: Vec<bool> = (0..width).map(|b| (cycle >> (b % 6)) & 1 == 1).collect();
        sim_a.step(&golden_dev, &inputs).unwrap();
        sim_b.step(&twin, &inputs).unwrap();
        assert_eq!(
            sim_a.outputs(),
            sim_b.outputs(),
            "twins diverged at {cycle}"
        );
    }
}

#[test]
fn readback_reconstructs_device() {
    use rtm::bitstream::readback::readback;
    use rtm::fpga::config::FrameAddress;
    use rtm::fpga::part::FRAMES_PER_CLB_COLUMN;

    let netlist = itc99::generate(itc99::profile("b02").unwrap(), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut dev = Device::new(Part::Xcv50);
    implement(&mut dev, &mapped, Rect::new(ClbCoord::new(2, 2), 10, 10)).unwrap();

    // Read back every CLB column the region touches and rebuild.
    let mut rebuilt = Device::new(Part::Xcv50);
    for col in 0..dev.cols() {
        let rb = readback(
            &dev,
            FrameAddress::clb(col, 0),
            FRAMES_PER_CLB_COLUMN as usize,
        )
        .unwrap();
        for (minor, frame) in rb.frames.into_iter().enumerate() {
            rebuilt
                .write_frame(FrameAddress::clb(col, minor as u16), frame)
                .unwrap();
        }
    }
    for tile in dev.bounds().iter() {
        assert_eq!(
            dev.clb(tile).unwrap(),
            rebuilt.clb(tile).unwrap(),
            "at {tile}"
        );
    }
    assert_eq!(dev.pips().count(), rebuilt.pips().count());
}
