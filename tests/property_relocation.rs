//! Property-based integration: random circuits, random relocation
//! sequences — transparency must hold for every combination, and the
//! device must end structurally clean.

use proptest::prelude::*;
use rtm::core::verify::TransparencyHarness;
use rtm::fpga::geom::{ClbCoord, Rect};
use rtm::fpga::part::Part;
use rtm::fpga::Device;
use rtm::netlist::random::RandomCircuit;
use rtm::netlist::techmap::map_to_luts;
use rtm::sim::design::implement;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Any sequence of cell relocations on any (small) circuit of any
    /// clocking class is transparent, and the vacated slots are clean.
    #[test]
    fn random_relocation_sequences_are_transparent(
        seed in 0u64..500,
        gated in any::<bool>(),
        moves in 1usize..5,
    ) {
        let netlist = if gated {
            RandomCircuit::gated(4, 12, seed).generate()
        } else {
            RandomCircuit::free_running(4, 12, seed).generate()
        };
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(2, 2), 8, 8);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(10).unwrap();

        let n_cells = h.placed().design.cells.len();
        for k in 0..moves {
            // Deterministic pseudo-random victim and destination.
            let victim = (seed as usize + k * 7) % n_cells;
            let src = h.placed().cell_loc(victim);
            let dst_tile = ClbCoord::new(
                14 + (seed % 8) as u16 + k as u16,
                14 + ((seed / 8) % 8) as u16 + 2 * k as u16,
            );
            let dst = (dst_tile, k % 4);
            let report = h.relocate_cell(src, dst).unwrap();
            prop_assert!(report.frames_total() > 0);
            // The vacated slot must be unconfigured and unrouted.
            prop_assert!(!h.device().clb(src.0).unwrap().cells[src.1].is_used());
            prop_assert!(h.placed().netdb.users_of(
                rtm::sim::design::PlacedDesign::out_node(src)).is_empty());
            h.run_cycles(5).unwrap();
        }
        h.run_cycles(15).unwrap();
        prop_assert!(
            h.transparent(),
            "seed {seed} gated {gated}: glitches {:?} divergences {:?}",
            h.glitches(),
            h.divergences()
        );
    }

    /// Moving a cell away and back restores a structurally equivalent
    /// implementation (same cell config, same reachable sinks).
    #[test]
    fn relocation_round_trip_restores_structure(seed in 0u64..200) {
        let netlist = RandomCircuit::free_running(3, 10, seed).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(2, 2), 8, 8);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(5).unwrap();

        let victim = seed as usize % h.placed().design.cells.len();
        let src = h.placed().cell_loc(victim);
        let config_before = h.device().clb(src.0).unwrap().cells[src.1];
        let sinks_before: Vec<_> = h
            .placed()
            .netdb
            .net_with_source(rtm::sim::design::PlacedDesign::out_node(src))
            .map(|n| h.placed().netdb.net(n).unwrap().sinks().collect())
            .unwrap_or_default();

        let away = (ClbCoord::new(20, 20), 2);
        h.relocate_cell(src, away).unwrap();
        h.run_cycles(5).unwrap();
        h.relocate_cell(away, src).unwrap();
        h.run_cycles(5).unwrap();

        let config_after = h.device().clb(src.0).unwrap().cells[src.1];
        prop_assert_eq!(config_before, config_after);
        let sinks_after: Vec<_> = h
            .placed()
            .netdb
            .net_with_source(rtm::sim::design::PlacedDesign::out_node(src))
            .map(|n| h.placed().netdb.net(n).unwrap().sinks().collect())
            .unwrap_or_default();
        prop_assert_eq!(sinks_before, sinks_after);
        prop_assert!(h.transparent());
    }
}
