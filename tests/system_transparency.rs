//! The paper's full scenario as one integration test: several
//! applications share the device; the run-time manager rearranges them
//! live to admit a new one; **every** running application is observed
//! throughout — including during every reconfiguration step — against
//! its own golden model, and none may diverge.

use rtm::core::manager::RunTimeManager;
use rtm::fpga::geom::{ClbCoord, Rect};
use rtm::fpga::part::Part;
use rtm::netlist::random::RandomCircuit;
use rtm::netlist::techmap::map_to_luts;
use rtm::netlist::{GoldenSim, Netlist};
use rtm::sim::devsim::DeviceSim;
use rtm::sim::logic::Logic;
use rtm::sim::place::CellLoc;

fn stim(cycle: u64, width: usize, salt: u64) -> Vec<bool> {
    (0..width)
        .map(|b| {
            let mut z = cycle
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(salt)
                .wrapping_add(b as u64);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            (z ^ (z >> 31)) & 1 == 1
        })
        .collect()
}

/// One observed application: golden model + its slots in the shared sim.
struct App<'a> {
    name: String,
    golden: GoldenSim<'a>,
    width: usize,
    feed_idx: Vec<usize>,
    out_idx: Vec<usize>,
    feed_home: Vec<CellLoc>,
    /// Whether each feed's pre-move cell still exists (alias valid).
    feed_home_active: Vec<bool>,
    divergences: usize,
    salt: u64,
}

/// Advances the shared device sim and every golden model one cycle.
fn step_all(dsim: &mut DeviceSim, apps: &mut [App<'_>], cycle: &mut u64) {
    let mut inputs = vec![Logic::X; dsim.feed_count()];
    for app in apps.iter() {
        let s = stim(*cycle, app.width, app.salt);
        for (j, idx) in app.feed_idx.iter().enumerate() {
            inputs[*idx] = Logic::known(s[j]);
        }
    }
    dsim.step_logic(&inputs).unwrap();
    let outs = dsim.outputs();
    for app in apps.iter_mut() {
        let s = stim(*cycle, app.width, app.salt);
        app.golden.step(&s).unwrap();
        let expect = app.golden.outputs();
        for (j, idx) in app.out_idx.iter().enumerate() {
            if outs[*idx].to_bool() != Some(expect[j]) {
                app.divergences += 1;
            }
        }
    }
    *cycle += 1;
}

#[test]
fn applications_survive_live_rearrangement_under_observation() {
    let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24 CLBs

    let netlists: Vec<Netlist> = (0..2)
        .map(|i| {
            RandomCircuit {
                name: format!("app{i}"),
                ..RandomCircuit::free_running(5, 16, 50 + i as u64)
            }
            .generate()
        })
        .collect();
    let designs: Vec<_> = netlists.iter().map(|n| map_to_luts(n).unwrap()).collect();

    // Load two functions (no moves yet: observation starts first).
    let f1 = mgr.load(&designs[0], 16, 6, |_, _, _| {}).unwrap();
    let f2 = mgr.load(&designs[1], 16, 6, |_, _, _| {}).unwrap();
    let ids = [f1.id, f2.id];

    // One device-wide simulation observing both applications.
    let first = mgr.function(ids[0]).unwrap();
    let mut dsim = DeviceSim::new(mgr.device(), &first.placed);
    let mut apps: Vec<App<'_>> = Vec::new();
    for (k, id) in ids.iter().enumerate() {
        let f = mgr.function(*id).unwrap();
        let (feed_idx, out_idx): (Vec<usize>, Vec<usize>) = if k == 0 {
            (
                (0..f.placed.placement.feed_locs.len()).collect(),
                (0..f.placed.placement.tap_locs.len()).collect(),
            )
        } else {
            (
                f.placed
                    .placement
                    .feed_locs
                    .iter()
                    .map(|l| dsim.push_feed(*l))
                    .collect(),
                f.placed
                    .output_locs()
                    .iter()
                    .map(|(n, l)| dsim.push_output(n.clone(), *l))
                    .collect(),
            )
        };
        apps.push(App {
            name: netlists[k].name().to_string(),
            golden: GoldenSim::new(&netlists[k]),
            width: netlists[k].inputs().len(),
            feed_idx,
            out_idx,
            feed_home: f.placed.placement.feed_locs.clone(),
            feed_home_active: vec![true; f.placed.placement.feed_locs.len()],
            divergences: 0,
            salt: 977 * (k as u64 + 1),
        });
    }

    // Steady state.
    let mut cycle = 0u64;
    for _ in 0..25 {
        step_all(&mut dsim, &mut apps, &mut cycle);
    }

    // Push the two functions apart to fragment the array — every move
    // under observation (live state must ride through the relocation).
    for (id, col) in [(f1.id, 18u16), (f2.id, 6u16)] {
        {
            let dsim = &mut dsim;
            let apps = &mut apps;
            let cycle = &mut cycle;
            mgr.relocate_function(
                id,
                Rect::new(ClbCoord::new(0, col), 16, 6),
                |dev, placed, record| {
                    if let Some(app) = apps.iter_mut().find(|a| a.name == placed.design.name) {
                        for (j, loc) in placed.placement.feed_locs.iter().enumerate() {
                            let idx = app.feed_idx[j];
                            dsim.move_feed(idx, *loc);
                            // Alias the pre-move home only while its cell still
                            // exists; once deconfigured the slot may be reused
                            // by another relocated cell and must not be forced.
                            let home = app.feed_home[j];
                            if app.feed_home_active[j] {
                                let gone = *loc != home
                                    && !dev
                                        .clb(home.0)
                                        .map(|c| c.cells[home.1].is_used())
                                        .unwrap_or(false);
                                if gone {
                                    app.feed_home_active[j] = false;
                                } else {
                                    dsim.add_feed_alias(idx, home);
                                }
                            }
                        }
                        for (j, (_, loc)) in placed.output_locs().iter().enumerate() {
                            dsim.move_output(app.out_idx[j], *loc);
                        }
                    }
                    dsim.sync(dev);
                    for _ in 0..record.wait_cycles {
                        step_all(dsim, apps, cycle);
                    }
                },
            )
            .unwrap();
        }
        // Collapse aliases onto the new home.
        let f = mgr.function(id).unwrap();
        let k = ids.iter().position(|x| *x == id).unwrap();
        for (j, loc) in f.placed.placement.feed_locs.iter().enumerate() {
            dsim.move_feed(apps[k].feed_idx[j], *loc);
        }
        apps[k].feed_home = f.placed.placement.feed_locs.clone();
        apps[k].feed_home_active = vec![true; apps[k].feed_home.len()];
        dsim.sync(mgr.device());
    }
    for _ in 0..15 {
        step_all(&mut dsim, &mut apps, &mut cycle);
    }

    // Admit a third function that does not fit without rearrangement,
    // clocking every application through every reconfiguration step.
    let netlist3 = RandomCircuit {
        name: "app2".into(),
        ..RandomCircuit::free_running(5, 16, 99)
    }
    .generate();
    let design3 = map_to_luts(&netlist3).unwrap();
    let report = {
        let dsim = &mut dsim;
        let apps = &mut apps;
        let cycle = &mut cycle;
        mgr.load(&design3, 16, 10, |dev, placed, record| {
            // Refresh observation points of the application being moved.
            if let Some(app) = apps.iter_mut().find(|a| a.name == placed.design.name) {
                for (j, loc) in placed.placement.feed_locs.iter().enumerate() {
                    let idx = app.feed_idx[j];
                    dsim.move_feed(idx, *loc);
                    let home = app.feed_home[j];
                    if app.feed_home_active[j] {
                        let gone = *loc != home
                            && !dev
                                .clb(home.0)
                                .map(|c| c.cells[home.1].is_used())
                                .unwrap_or(false);
                        if gone {
                            app.feed_home_active[j] = false;
                        } else {
                            dsim.add_feed_alias(idx, home);
                        }
                    }
                }
                for (j, (_, loc)) in placed.output_locs().iter().enumerate() {
                    dsim.move_output(app.out_idx[j], *loc);
                }
            }
            dsim.sync(dev);
            for _ in 0..record.wait_cycles {
                step_all(dsim, apps, cycle);
            }
        })
        .unwrap()
    };
    assert!(!report.moves.is_empty(), "a rearrangement must be needed");

    // Collapse feed aliases onto the final locations and keep running.
    for (k, id) in ids.iter().enumerate() {
        let f = mgr.function(*id).unwrap();
        for (j, loc) in f.placed.placement.feed_locs.iter().enumerate() {
            dsim.move_feed(apps[k].feed_idx[j], *loc);
        }
        for (j, (_, loc)) in f.placed.output_locs().iter().enumerate() {
            dsim.move_output(apps[k].out_idx[j], *loc);
        }
        apps[k].feed_home = f.placed.placement.feed_locs.clone();
        apps[k].feed_home_active = vec![true; apps[k].feed_home.len()];
    }
    dsim.sync(mgr.device());
    for _ in 0..40 {
        step_all(&mut dsim, &mut apps, &mut cycle);
    }

    for app in &apps {
        assert_eq!(
            app.divergences, 0,
            "{} diverged during live rearrangement",
            app.name
        );
    }
    assert_eq!(mgr.functions().count(), 3);
}
