//! Guard-rail for the T1 reproduction: the gated-clock relocation cost
//! under the paper's configuration must stay in the 22.6 ms regime, and
//! the cost model's scaling laws must hold exactly.

use rtm::core::cost::{CostModel, WriteGranularity};
use rtm::core::relocation::{relocate_cell, RelocationOptions};
use rtm::core::RelocationClass;
use rtm::fpga::geom::{ClbCoord, Rect};
use rtm::fpga::part::Part;
use rtm::fpga::Device;
use rtm::jtag::timing::ConfigInterface;
use rtm::netlist::itc99::{self, Variant};
use rtm::netlist::techmap::map_to_luts;
use rtm::sim::design::implement;

fn one_gated_relocation() -> (Part, rtm::core::relocation::RelocationReport) {
    let netlist = itc99::generate(itc99::profile("b02").unwrap(), Variant::GatedClock);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut dev = Device::new(Part::Xcv200);
    let placed_region = Rect::new(ClbCoord::new(2, 2), 10, 10);
    let mut placed = implement(&mut dev, &mapped, placed_region).unwrap();
    let victim = (0..placed.design.cells.len())
        .find(|i| placed.design.cells[*i].storage.is_sequential())
        .unwrap();
    let src = placed.placement.cell_locs[victim];
    // Nearest free slot outside the region.
    let dst = (ClbCoord::new(13, 5), 0);
    let report = relocate_cell(
        &mut dev,
        &mut placed,
        src,
        dst,
        &RelocationOptions::default(),
        |_, _, _| {},
    )
    .unwrap();
    assert_eq!(report.class, RelocationClass::GatedClock);
    (Part::Xcv200, report)
}

#[test]
fn gated_relocation_cost_in_paper_regime() {
    let (part, report) = one_gated_relocation();
    let paper = CostModel::paper_default();
    let cost = paper.relocation_cost(part, &report);
    // The paper reports 22.6 ms; our model (see EXPERIMENTS.md gap
    // analysis) must stay within the same regime: 10–80 ms.
    assert!(
        cost.millis() > 10.0 && cost.millis() < 80.0,
        "gated relocation cost {:.1} ms left the 22.6 ms regime",
        cost.millis()
    );
}

#[test]
fn cost_scales_exactly_with_tck() {
    let (part, report) = one_gated_relocation();
    let at = |hz: u64| {
        CostModel {
            granularity: WriteGranularity::Column,
            interface: ConfigInterface::boundary_scan(hz),
        }
        .relocation_cost(part, &report)
        .seconds
    };
    let s10 = at(10_000_000);
    let s20 = at(20_000_000);
    let s40 = at(40_000_000);
    assert!((s10 / s20 - 2.0).abs() < 1e-9);
    assert!((s20 / s40 - 2.0).abs() < 1e-9);
}

#[test]
fn frame_granularity_strictly_cheaper_and_selectmap_faster() {
    let (part, report) = one_gated_relocation();
    let column = CostModel::paper_default().relocation_cost(part, &report);
    let frame =
        CostModel::frame_granular(ConfigInterface::paper_default()).relocation_cost(part, &report);
    assert!(frame.bits < column.bits);
    assert!(frame.seconds < column.seconds);
    let selectmap = CostModel {
        granularity: WriteGranularity::Column,
        interface: ConfigInterface::select_map(20_000_000),
    }
    .relocation_cost(part, &report);
    assert!(
        (column.seconds / selectmap.seconds - 8.0).abs() < 1e-9,
        "8 bits per CCLK"
    );
}

#[test]
fn jtag_cycle_count_brackets_cost_model() {
    // The cost model's bit arithmetic must agree with actually walking
    // the TAP: shifting N words costs at least 32N TCK cycles and at
    // most 32N plus a small protocol overhead.
    use rtm::jtag::JtagPort;
    let mut port = rtm::jtag::JtagPort::new(Part::Xcv200);
    let words = 1000;
    port.load_instruction(rtm::jtag::Instruction::CfgIn);
    let before = port.tck_cycles();
    port.scan_dr(words * 32).unwrap();
    let cycles = port.tck_cycles() - before;
    assert!(cycles >= (words * 32) as u64);
    assert!(
        cycles < (words * 32) as u64 + 16,
        "protocol overhead is a few cycles"
    );
    let _ = JtagPort::new(Part::Xcv50);
}
