//! The fleet sharding layer end to end: replay fleet-scale versions of
//! all three trace scenarios over a three-device fleet (two XCV50s and
//! an XCV100), once per routing policy, and print the aggregated
//! [`FleetReport`]s.
//!
//! Each scenario is offered at roughly 4/3 of the fleet's single-device
//! capacity (four staggered copies over three devices), so the routing
//! decision — *which device gets this function* — actually matters: on
//! the adversarial-fragmenter scenario the informed policies admit
//! strictly more than state-blind round-robin, which keeps landing big
//! deadline-bound requests on comb-fragmented devices whose
//! rearrangement they cannot afford.
//!
//! ```sh
//! cargo run --release --example fleet_loop
//! ```

use rtm::fleet::routing::standard_policies;
use rtm::fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

/// Four staggered copies of `scenario`, sized for the XCV50, with
/// disjoint id ranges — the fleet-scale workload.
fn fleet_trace(scenario: Scenario, seed: u64) -> Trace {
    let copies: Vec<Trace> = (0..4)
        .map(|k| scenario.trace(Part::Xcv50, seed + 100 * k))
        .collect();
    Trace::merged(format!("{scenario}-x4"), &copies, 1 << 32, 170_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let seed = 42;
    println!(
        "fleet: {} devices ({}), per-shard defrag threshold 0.5, \
         fleet trigger off\n",
        parts.len(),
        parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );

    let mut adversarial: Vec<(String, usize, usize)> = Vec::new();
    for scenario in Scenario::ALL {
        let trace = fleet_trace(scenario, seed);
        println!(
            "=== scenario '{scenario}' x4 — {} events, {} arrivals ===\n",
            trace.events().len(),
            trace.arrivals()
        );
        for policy in standard_policies() {
            let name = policy.name().to_string();
            // A fresh fleet per run: every policy faces identical load.
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
            let mut fleet = FleetService::new(config, policy);
            let report = fleet.run(&trace)?;
            println!("{report}");
            if scenario == Scenario::AdversarialFragmenter {
                adversarial.push((name, report.admitted(), report.submitted));
            }
        }
        println!();
    }

    println!("=== adversarial-fragmenter: routing policy comparison ===");
    let rr = adversarial
        .iter()
        .find(|(n, _, _)| n == "round-robin")
        .expect("round-robin always runs")
        .1;
    for (name, admitted, submitted) in &adversarial {
        let marker = if *admitted > rr {
            "  <-- beats round-robin"
        } else {
            ""
        };
        println!(
            "  {name:<16} {admitted}/{submitted} admitted ({:.3}){marker}",
            *admitted as f64 / *submitted as f64
        );
    }
    println!(
        "\nState-blind rotation keeps routing big deadline-bound requests onto\n\
         whichever device the counter points at — including freshly comb-\n\
         fragmented ones whose rearrangement cost blows the deadline. The\n\
         informed policies read per-device state (utilisation, largest free\n\
         rectangle, predicted post-placement fragmentation) and buy strictly\n\
         more admissions from the same fleet."
    );
    Ok(())
}
