//! The fleet sharding layer end to end: replay fleet-scale versions of
//! all three trace scenarios over a three-device fleet (two XCV50s and
//! an XCV100), once per routing policy, and print the aggregated
//! [`FleetReport`]s.
//!
//! Each scenario is offered at roughly 4/3 of the fleet's single-device
//! capacity (four staggered copies over three devices), so the routing
//! decision — *which device gets this function* — actually matters: on
//! the adversarial-fragmenter scenario the informed policies admit
//! strictly more than state-blind round-robin, which keeps landing big
//! deadline-bound requests on comb-fragmented devices whose
//! rearrangement they cannot afford.
//!
//! ```sh
//! cargo run --release --example fleet_loop
//! ```
//!
//! ## CI perf gate: `--baseline [PATH]`
//!
//! ```sh
//! cargo run --release --example fleet_loop -- --baseline target/BENCH_fleet.json
//! ```
//!
//! Replays a fixed set of deterministic fleet runs — the three-device
//! policy sweep, frag-aware sweeps at N = 16 and N = 64 devices, two
//! round-robin + rebalancing-migration runs (x4 and N = 16), the
//! epoch-engine scale tier (N = 256 under both stepping engines ×
//! both admission modes, N = 1024 under the parallel engine in both
//! modes), and the tiered QoS rows (the tiered mix without preemption,
//! then with preemption under the engine × mode grid; per-tier
//! admitted counters and the preemption/eviction flow counters ride in
//! every row) — and writes every run's counters (admissions, frames
//! written, `make_room` planning passes, plans reused, migrations, …)
//! as JSON, each row tagged with the engine it ran under and whether
//! admission execution was immediate or deferred. The checked-in
//! `BENCH_fleet.json` is the baseline; `ci.sh` re-runs this mode and
//! fails on any counter difference — which makes the N = 256 rows a
//! standing sequential/parallel *and* immediate/deferred equivalence
//! proof (`ci.sh` additionally byte-compares those rows against each
//! other after stripping the engine/mode tags). Counters are
//! exact-match gated; wall-clock time and the arrivals/s throughput
//! printed next to each row are for the log, never gated. The
//! scale-tier rows also print the epoch engine's wall-clock
//! **phase-share table** (stdout only, never in the JSON) — on the
//! deferred rows the `execute` phase absorbs the implementation work
//! the routing edge used to carry; pass `--profile` to print the
//! table for every row.
//!
//! ## QoS tiers: `--tiered`
//!
//! ```sh
//! cargo run --release --example fleet_loop -- --tiered
//! ```
//!
//! Replays the tiered multi-tenant mix twice — preemptive eviction
//! off, then on — prints both reports and the per-tier admission
//! comparison, and exits nonzero unless preemption strictly improved
//! interactive admissions.
//!
//! ## Deterministic event export: `--trace [PATH]`
//!
//! ```sh
//! cargo run --release --example fleet_loop -- --trace target/fleet_trace.jsonl
//! ```
//!
//! Replays the first gated run (three devices, round-robin, the
//! adversarial x4 trace) with the deterministic event stream enabled,
//! writes it as JSONL, and self-validates: every line must round-trip
//! byte-exact through the (de)serializer, and the event counts must
//! equal the gated report counters (admissions, departures, epochs, …).
//! Exits nonzero on any mismatch — `ci.sh` runs this as a smoke step.

use rtm::fleet::rebalance::{RebalancePolicy, WorstShardDrain};
use rtm::fleet::routing::{standard_policies, FragAware, RoundRobin, RoutingPolicy};
use rtm::fleet::{EngineKind, FleetConfig, FleetReport, FleetService};
use rtm::obs::{to_jsonl_stream, EventKind, RejectReason, RtmEvent, Stopwatch};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::{QosTier, ServiceConfig};
use std::fmt::Write as _;

/// The canonical fleet-scale workload: `copies` staggered copies of
/// `scenario`, sized for the XCV50 (see [`Scenario::fleet_trace`]).
fn fleet_trace(scenario: Scenario, copies: u64, seed: u64) -> Trace {
    scenario.fleet_trace(Part::Xcv50, copies, seed, 170_000)
}

/// One deterministic counter block of the perf baseline, JSON-ready.
/// The `engine` field names the stepping engine the row ran under and
/// `mode` whether admission execution was immediate or deferred;
/// because the gate is a byte diff, rows over the same workload that
/// agree on every other field *are* the cross-engine and cross-mode
/// equivalence checks, re-proven on every CI run.
fn json_block(
    devices: usize,
    engine: EngineKind,
    deferred: bool,
    preemption: bool,
    report: &FleetReport,
) -> String {
    let s = report.plan_stats();
    let tiers = report.tiers();
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\"scenario\": \"{}\", \"devices\": {}, \"engine\": \"{}\", \
         \"mode\": \"{}\", \"preemption\": {}, \
         \"policy\": \"{}\", \"rebalancer\": \"{}\", \
         \"submitted\": {}, \"admitted\": {}, \"retries\": {}, \
         \"load_failovers\": {}, \"unplaceable\": {}, \"queued_at_end\": {}, \
         \"failures\": {}, \"failures_no_slots\": {}, \"failures_unroutable\": {}, \
         \"defrag_cycles\": {}, \"fleet_defrags\": {}, \"function_moves\": {}, \
         \"cells_moved\": {}, \"frames_written\": {}, \
         \"migrations\": {}, \"migrations_in\": {}, \"migrations_out\": {}, \
         \"migrations_failed\": {}, \"migrations_refused\": {}, \
         \"submitted_batch\": {}, \"submitted_standard\": {}, \
         \"submitted_interactive\": {}, \
         \"admitted_batch\": {}, \"admitted_standard\": {}, \
         \"admitted_interactive\": {}, \
         \"preemptions\": {}, \"evictions_migrated\": {}, \
         \"evictions_parked\": {}, \"parked_readmitted\": {}, \
         \"parked_expired\": {}, \"parked_at_end\": {}, \
         \"make_room_calls\": {}, \"previews\": {}, \"compaction_plans\": {}, \
         \"plans_reused\": {}, \"plans_invalidated\": {}, \
         \"summary_hits\": {}, \"summary_misses\": {}}}",
        report.trace_name,
        devices,
        engine.name(),
        if deferred { "deferred" } else { "immediate" },
        preemption,
        report.policy,
        report.rebalancer.as_deref().unwrap_or("none"),
        report.submitted,
        report.admitted(),
        report.retries,
        report.load_failovers,
        report.unplaceable,
        report.queued_at_end(),
        report.failures(),
        report.failures_no_slots(),
        report.failures_unroutable(),
        report.defrag_cycles(),
        report.fleet_defrags,
        report.function_moves(),
        report.cells_moved(),
        report.frames_written(),
        report.migrations,
        report.migrations_in(),
        report.migrations_out(),
        report.migrations_failed,
        report.migrations_refused,
        tiers.submitted_for(QosTier::Batch),
        tiers.submitted_for(QosTier::Standard),
        tiers.submitted_for(QosTier::Interactive),
        tiers.admitted_for(QosTier::Batch),
        tiers.admitted_for(QosTier::Standard),
        tiers.admitted_for(QosTier::Interactive),
        report.preemptions,
        report.evictions_migrated,
        report.evictions_parked,
        report.parked_readmitted,
        report.parked_expired,
        report.parked_at_end,
        s.make_room_calls,
        s.previews,
        s.compaction_plans,
        s.plans_reused,
        s.plans_invalidated,
        s.summary_hits,
        s.summary_misses,
    );
    out
}

/// The deterministic baseline suite: every run the CI gate compares.
/// `profile_all` extends the scale-tier phase-share tables to every row.
fn baseline(path: &str, profile_all: bool) -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;
    let mut blocks: Vec<String> = Vec::new();
    let mut run = |parts: &[Part],
                   engine: EngineKind,
                   deferred: bool,
                   preemption: bool,
                   policy: Box<dyn RoutingPolicy>,
                   rebalancer: Option<Box<dyn RebalancePolicy>>,
                   trace: &Trace,
                   profile: bool| {
        let mut config = FleetConfig::heterogeneous(parts, ServiceConfig::default())
            .with_engine(engine)
            .with_deferred_execution(deferred)
            .with_preemption(preemption);
        if rebalancer.is_some() {
            config = config.with_rebalance_threshold(0.4);
        }
        let mut fleet = FleetService::new(config, policy);
        if let Some(r) = rebalancer {
            fleet = fleet.with_rebalancer(r);
        }
        if profile || profile_all {
            fleet.enable_profiler();
        }
        let sw = Stopwatch::start();
        let report = fleet.run(trace).expect("baseline fleet run stays up");
        let wall = sw.elapsed_secs();
        // Throughput rides next to the counter gate: arrivals the
        // fleet chewed through per second of wall. Printed for the CI
        // log — wall time (and thus this rate) is never gated.
        println!(
            "  {:<26} N={:<4} {:<13} {:<9} {:<16} {:>5}/{:<5} admitted, {} make_room, \
             {} reused, {} migrations   [{:.0} ms wall, {:.0} arrivals/s, not gated]",
            report.trace_name,
            parts.len(),
            engine.name(),
            if deferred { "deferred" } else { "immediate" },
            report.policy,
            report.admitted(),
            report.submitted,
            report.plan_stats().make_room_calls,
            report.plan_stats().plans_reused,
            report.migrations,
            wall * 1e3,
            report.submitted as f64 / wall.max(1e-9),
        );
        // The phase-share table rides in the log the same way: where
        // the wall went, never what the gate compares.
        if let Some(p) = fleet.profiler() {
            println!("{}", p.share_table());
        }
        blocks.push(json_block(
            parts.len(),
            engine,
            deferred,
            preemption,
            &report,
        ));
    };

    // 1. The example's three-device fleet, all four policies, on the
    //    adversarial scenario (the contended run the docs discuss).
    let small = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let adv_x4 = fleet_trace(Scenario::AdversarialFragmenter, 4, seed);
    for policy in standard_policies() {
        run(
            &small,
            EngineKind::Sequential,
            false,
            false,
            policy,
            None,
            &adv_x4,
            false,
        );
    }

    // 2. Frag-aware at fleet scale: N = 16 and N = 64 homogeneous
    //    XCV50s under (N+1) staggered adversarial copies — the sweeps
    //    the summary cache and two-stage filter make tractable.
    for n in [16usize, 64] {
        let parts = vec![Part::Xcv50; n];
        let trace = fleet_trace(Scenario::AdversarialFragmenter, n as u64 + 1, seed);
        run(
            &parts,
            EngineKind::Sequential,
            false,
            false,
            Box::<FragAware>::default(),
            None,
            &trace,
            false,
        );
    }

    // 3. Rebalancing migration: state-blind round-robin plus the
    //    worst-shard-drain planner, on the x4 contended fleet and the
    //    N = 16 sweep. The gate pins the repair (admissions match the
    //    informed router, zero admission-time rearrangement at N = 16)
    //    *and* the migration counters themselves.
    run(
        &small,
        EngineKind::Sequential,
        false,
        false,
        Box::<RoundRobin>::default(),
        Some(Box::<WorstShardDrain>::default()),
        &adv_x4,
        false,
    );
    let parts16 = vec![Part::Xcv50; 16];
    let adv_x17 = fleet_trace(Scenario::AdversarialFragmenter, 17, seed);
    run(
        &parts16,
        EngineKind::Sequential,
        false,
        false,
        Box::<RoundRobin>::default(),
        Some(Box::<WorstShardDrain>::default()),
        &adv_x17,
        false,
    );

    // 4. The scale tier, under the epoch engines. Round-robin keeps
    //    routing O(1)-ish so the rows measure the stepping loop, not
    //    the router. N = 256 runs under *both* engines: the byte diff
    //    then re-proves sequential/parallel counter equality on every
    //    CI run. N = 1024 — the soak-scale sweep — runs once, under
    //    the parallel engine (its counters are pinned equal to
    //    sequential by the schedule-invariance suite; a second
    //    multi-minute sequential row would buy no extra signal).
    let parts256 = vec![Part::Xcv50; 256];
    let adv_x257 = fleet_trace(Scenario::AdversarialFragmenter, 257, seed);
    for engine in [EngineKind::Sequential, EngineKind::Parallel { threads: 0 }] {
        // Twin rows per engine: immediate and deferred admission. All
        // four N = 256 rows must agree on every counter (`ci.sh`
        // byte-gates the agreement after stripping the tags), which
        // re-proves two-phase mode invariance on every CI run.
        for deferred in [false, true] {
            run(
                &parts256,
                engine,
                deferred,
                false,
                Box::<RoundRobin>::default(),
                None,
                &adv_x257,
                true,
            );
        }
    }
    let parts1024 = vec![Part::Xcv50; 1024];
    let adv_x1025 = fleet_trace(Scenario::AdversarialFragmenter, 1025, seed);
    // The soak-scale sweep, immediate then deferred: comparing the two
    // share tables shows the routing edge's share dropping as the
    // execute phase absorbs the implementation work (printed, never
    // gated — the counters are pinned equal by the byte diff).
    for deferred in [false, true] {
        run(
            &parts1024,
            EngineKind::Parallel { threads: 0 },
            deferred,
            false,
            Box::<RoundRobin>::default(),
            None,
            &adv_x1025,
            true,
        );
    }

    // 5. QoS tiers: the tiered multi-tenant mix on the three-device
    //    fleet, once without preemption (the baseline the improvement
    //    is measured against) and then with preemption under the full
    //    engine × mode grid. `ci.sh` gates two claims on these rows:
    //    the four preemption-on rows agree on every counter after the
    //    engine/mode tags are stripped (tiered twin-row gate), and
    //    `admitted_interactive` is strictly higher with preemption
    //    than without.
    let tiered = fleet_trace(Scenario::TieredMix, 3, 7);
    run(
        &small,
        EngineKind::Sequential,
        false,
        false,
        Box::<RoundRobin>::default(),
        None,
        &tiered,
        false,
    );
    for engine in [EngineKind::Sequential, EngineKind::Parallel { threads: 0 }] {
        for deferred in [false, true] {
            run(
                &small,
                engine,
                deferred,
                true,
                Box::<RoundRobin>::default(),
                None,
                &tiered,
                false,
            );
        }
    }

    let json = format!("{{\n  \"runs\": [\n{}\n  ]\n}}\n", blocks.join(",\n"));
    std::fs::write(path, json)?;
    println!("\nwrote {path}");
    Ok(())
}

/// `--trace`: replay the first gated baseline run with the event stream
/// enabled, export it as JSONL, and self-validate the export — every
/// line must round-trip byte-exact, and the stream must agree with the
/// gated counters event for event. Any mismatch is a hard error (the CI
/// smoke step relies on the exit code).
fn trace_export(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = fleet_trace(Scenario::AdversarialFragmenter, 4, 42);
    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::<RoundRobin>::default());
    fleet.enable_events();
    let report = fleet.run(&trace)?;
    let events = fleet.take_events();
    let text = to_jsonl_stream(&events);
    std::fs::write(path, &text)?;

    // 1. Round trip: parse(line).to_jsonl() == line, for every line.
    for (i, line) in text.lines().enumerate() {
        let parsed = RtmEvent::from_jsonl(line)
            .ok_or_else(|| format!("trace line {} does not parse: {line}", i + 1))?;
        if parsed.to_jsonl() != line {
            return Err(format!("trace line {} does not round-trip byte-exact", i + 1).into());
        }
    }

    // 2. Count identity: the stream and the report describe one run.
    let count = |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    let checks = [
        (
            "arrival events == shard-accepted submissions",
            count(|k| matches!(k, EventKind::Arrival { .. })),
            report.shard_submitted(),
        ),
        (
            "admitted events == admissions",
            count(|k| matches!(k, EventKind::Admitted { .. })),
            report.admitted(),
        ),
        (
            "load events == admissions",
            count(|k| matches!(k, EventKind::Load { .. })),
            report.admitted(),
        ),
        (
            "unload events == departures",
            count(|k| matches!(k, EventKind::Unload { .. })),
            report.departures(),
        ),
        (
            "unplaceable rejections == unplaceable counter",
            count(|k| {
                matches!(
                    k,
                    EventKind::Rejected {
                        reason: RejectReason::Unplaceable,
                        ..
                    }
                )
            }),
            report.unplaceable,
        ),
        (
            "defrag events == defrag cycles",
            count(|k| matches!(k, EventKind::DefragCycle { .. })),
            report.defrag_cycles(),
        ),
        (
            "epoch boundaries == epochs counter",
            count(|k| matches!(k, EventKind::EpochBoundary)),
            report.metrics.counter("epochs") as usize,
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            return Err(format!("event/counter mismatch: {what}: {got} != {want}").into());
        }
    }
    println!(
        "wrote {path}: {} events; every line round-trips byte-exact and \
         all event counts match the gated report counters",
        events.len()
    );
    Ok(())
}

/// `--tiered`: the QoS story in isolation. Replays the tiered
/// multi-tenant mix (long batch residents, standard churn, an
/// interactive flash crowd) over the three-device fleet twice — with
/// preemptive eviction off, then on — and prints both reports plus the
/// per-tier comparison. With preemption on, a striking-out interactive
/// reservation evicts the cheapest batch resident (smallest CLB
/// footprint × remaining runtime), migrates the bundle to a sibling
/// with room inside its idle window or parks it for deadline-safe
/// readmission, and seats in the freed region.
fn tiered_demo(profile: bool) -> Result<(), Box<dyn std::error::Error>> {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = fleet_trace(Scenario::TieredMix, 3, 7);
    println!(
        "=== tiered mix x3 — {} events, {} arrivals, preemption off vs on ===\n",
        trace.events().len(),
        trace.arrivals()
    );
    let mut reports = Vec::new();
    for preemption in [false, true] {
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
            .with_preemption(preemption);
        let mut fleet = FleetService::new(config, Box::<RoundRobin>::default());
        if profile {
            fleet.enable_profiler();
        }
        let report = fleet.run(&trace)?;
        println!("{report}");
        if let Some(p) = fleet.profiler() {
            println!("{}", p.share_table());
        }
        reports.push(report);
    }
    println!("=== per-tier admission: preemption off -> on ===");
    let (off, on) = (reports[0].tiers(), reports[1].tiers());
    for tier in QosTier::ALL.into_iter().rev() {
        println!(
            "  {:<12} {}/{} -> {}/{} admitted ({:.3} -> {:.3})",
            tier.name(),
            off.admitted_for(tier),
            off.submitted_for(tier),
            on.admitted_for(tier),
            on.submitted_for(tier),
            off.admission_rate(tier),
            on.admission_rate(tier),
        );
    }
    println!(
        "\nWithout tiers the flash crowd finds the array held wall to wall by\n\
         long-running batch strips and starves in the queue. Preemption lets\n\
         the interactive reservations evict the cheapest batch residents —\n\
         each one extracted live (state and configuration checkpointed),\n\
         migrated to a device with room or parked for readmission in a later\n\
         idle window — and seat in the freed regions.",
    );
    if reports[1].tiers().admitted_for(QosTier::Interactive)
        <= reports[0].tiers().admitted_for(QosTier::Interactive)
    {
        return Err("preemption did not improve interactive admission".into());
    }
    Ok(())
}

fn demo(profile: bool) -> Result<(), Box<dyn std::error::Error>> {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let seed = 42;
    println!(
        "fleet: {} devices ({}), per-shard defrag threshold 0.5, \
         fleet trigger off; rebalancing run: worst-shard-drain at 0.4\n",
        parts.len(),
        parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );

    let mut adversarial: Vec<(String, usize, usize)> = Vec::new();
    for scenario in Scenario::ALL {
        let trace = fleet_trace(scenario, 4, seed);
        println!(
            "=== scenario '{scenario}' x4 — {} events, {} arrivals ===\n",
            trace.events().len(),
            trace.arrivals()
        );
        for policy in standard_policies() {
            let name = policy.name().to_string();
            // A fresh fleet per run: every policy faces identical load.
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
            let mut fleet = FleetService::new(config, policy);
            if profile {
                fleet.enable_profiler();
            }
            let report = fleet.run(&trace)?;
            println!("{report}");
            if let Some(p) = fleet.profiler() {
                println!("{}", p.share_table());
            }
            if scenario == Scenario::AdversarialFragmenter {
                adversarial.push((name, report.admitted(), report.submitted));
            }
        }
        // The rebalancing run: the state-blind baseline again, but with
        // idle-window migration repairing the comb placements it ages
        // its devices into.
        if scenario == Scenario::AdversarialFragmenter {
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
                .with_rebalance_threshold(0.4);
            let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()))
                .with_rebalancer(Box::<WorstShardDrain>::default());
            if profile {
                fleet.enable_profiler();
            }
            let report = fleet.run(&trace)?;
            println!("{report}");
            if let Some(p) = fleet.profiler() {
                println!("{}", p.share_table());
            }
            adversarial.push((
                "round-robin + rebalance".to_string(),
                report.admitted(),
                report.submitted,
            ));
        }
        println!();
    }

    println!("=== adversarial-fragmenter: routing policy comparison ===");
    let rr = adversarial
        .iter()
        .find(|(n, _, _)| n == "round-robin")
        .expect("round-robin always runs")
        .1;
    for (name, admitted, submitted) in &adversarial {
        let marker = if *admitted > rr {
            "  <-- beats round-robin"
        } else {
            ""
        };
        println!(
            "  {name:<16} {admitted}/{submitted} admitted ({:.3}){marker}",
            *admitted as f64 / *submitted as f64
        );
    }
    println!(
        "\nState-blind rotation keeps routing big deadline-bound requests onto\n\
         whichever device the counter points at — including freshly comb-\n\
         fragmented ones whose rearrangement cost blows the deadline. The\n\
         informed policies read per-device state (utilisation, largest free\n\
         rectangle, predicted post-placement fragmentation) and buy strictly\n\
         more admissions from the same fleet. Rebalancing migration recovers\n\
         the same admissions *without* informing the router: resident\n\
         functions move between devices during idle port windows (never\n\
         making a queued deadline late), repairing the combs after the fact."
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let profile = args.iter().any(|a| a == "--profile");
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("target/fleet_trace.jsonl");
        println!("fleet_loop --trace: deterministic event export (self-validating)");
        return trace_export(path);
    }
    if args.iter().any(|a| a == "--tiered") {
        println!("fleet_loop --tiered: QoS tiers with preemptive eviction, off vs on");
        return tiered_demo(profile);
    }
    if let Some(i) = args.iter().position(|a| a == "--baseline") {
        let path = args
            .get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("BENCH_fleet.json");
        println!("fleet_loop --baseline: deterministic counter runs (exact-match gated)");
        return baseline(path, profile);
    }
    demo(profile)
}
