//! The runtime service loop end to end: replay all three canned trace
//! scenarios against the live run-time manager and print the structured
//! report of each.
//!
//! Functions arrive, are placed and routed for real, get relocated live
//! when fragmentation crosses the threshold, and depart — the paper's
//! on-line management story closed into one loop.
//!
//! ```sh
//! cargo run --release --example service_loop
//! ```

use rtm_fpga::part::Part;
use rtm_service::trace::Scenario;
use rtm_service::{RuntimeService, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let part = Part::Xcv50;
    let config = ServiceConfig::default()
        .with_part(part)
        .with_frag_threshold(0.5);
    println!(
        "device: {part} ({}x{} CLBs), defrag threshold {:.2}, policy {}\n",
        part.clb_rows(),
        part.clb_cols(),
        config.frag_threshold,
        config.policy,
    );

    for scenario in Scenario::ALL {
        let trace = scenario.trace(part, 42);
        println!(
            "=== scenario '{scenario}' — {} events, {} arrivals ===",
            trace.events().len(),
            trace.arrivals()
        );
        // A fresh service per scenario: each starts on a blank device.
        let mut service = RuntimeService::new(config);
        let report = service.run(&trace)?;
        println!("{report}\n");

        if let Some(worst) = report
            .frag_timeline
            .iter()
            .max_by(|a, b| {
                a.metrics
                    .fragmentation()
                    .total_cmp(&b.metrics.fragmentation())
            })
            .filter(|s| s.metrics.fragmentation() > 0.0)
        {
            println!(
                "  worst instant: t={:.1} ms — {}",
                worst.at as f64 / 1000.0,
                worst.metrics
            );
        }
        for cycle in &report.defrags {
            println!(
                "  defrag @ t={:.1} ms: {} moves, {} CLBs, {} frames, \
                 frag {:.3} -> {:.3}",
                cycle.at as f64 / 1000.0,
                cycle.moves,
                cycle.cells_moved,
                cycle.frames,
                cycle.before.fragmentation(),
                cycle.after.fragmentation(),
            );
        }
        println!();
    }

    println!(
        "All three scenarios served by the same loop: admission through the\n\
         scheduler's policy, real loads on the device, threshold-triggered\n\
         defragmentation executed with dynamic relocation — zero halt time\n\
         for the moved functions."
    );
    Ok(())
}
