//! On-line defragmentation: functions keep running while the manager
//! rearranges them to admit a request that fragmentation was blocking.
//!
//! This is the paper's headline scenario end to end: load functions,
//! fragment the array, submit a request that does not fit, and watch the
//! run-time manager execute a rearrangement with **dynamic relocation**
//! (every moved CLB relocated live through the two-phase procedure),
//! then admit the request.
//!
//! ```sh
//! cargo run --example defragmentation
//! ```

use rtm_core::cost::CostModel;
use rtm_core::manager::RunTimeManager;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::map_to_luts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24 CLBs
    let cost_model = CostModel::paper_default();
    println!("device: XCV50 (16x24 CLBs), cost model: {cost_model}\n");

    // Load two functions, then move them apart to fragment the array.
    let d1 = map_to_luts(&RandomCircuit::free_running(6, 20, 1).generate())?;
    let d2 = map_to_luts(&RandomCircuit::free_running(6, 20, 2).generate())?;
    let f1 = mgr.load(&d1, 16, 6, |_, _, _| {})?;
    let f2 = mgr.load(&d2, 16, 6, |_, _, _| {})?;
    mgr.relocate_function(f1.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})?;
    mgr.relocate_function(f2.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})?;

    let frag = mgr.fragmentation();
    println!("after fragmenting: {frag}");
    println!(
        "free cells: {}, but largest contiguous rectangle only {} —\n\
         a 16x10 function (160 CLBs) cannot be placed despite {} free CLBs\n",
        frag.free_cells, frag.largest_rect, frag.free_cells
    );

    // Submit the blocked request through the plan-reuse pipeline: plan
    // the rearrangement first (nothing moves yet — the plan is a value
    // we can inspect), then hand the plan to `load_with_plan`, which
    // executes it without planning again.
    let d3 = map_to_luts(&RandomCircuit::free_running(8, 30, 3).generate())?;
    let plan = mgr
        .plan_room(16, 10)
        .ok_or("even rearrangement cannot free a 16x10 region")?;
    println!(
        "room plan (epoch {}): {} function moves, {} CLBs to relocate",
        plan.epoch(),
        plan.moves().len(),
        plan.cells_moved()
    );
    let mut steps = 0usize;
    let report = mgr.load_with_plan(&d3, 16, 10, &plan, |_, _, record| {
        steps += 1;
        if steps <= 3 {
            println!(
                "  reconfiguration step {:-20} -> {} frames",
                record.step.to_string(),
                record.frames.len()
            );
        } else if steps == 4 {
            println!("  ... (more steps) ...");
        }
    })?;

    println!(
        "\nrequest admitted as function {} at {}",
        report.id, report.region
    );
    println!("rearrangement: {} function moves", report.moves.len());
    for mv in &report.moves {
        println!("  {mv}");
    }
    let total_cells: u32 = report.moves.iter().map(|m| m.cells_moved()).sum();
    let total_ms: f64 = report
        .relocations
        .iter()
        .map(|r| cost_model.relocation_cost(mgr.device().part(), r).millis())
        .sum();
    println!(
        "  {} CLB relocations executed, {:.1} ms of reconfiguration traffic,",
        report.relocations.len(),
        total_ms
    );
    println!(
        "  {total_cells} CLBs of running logic moved — with ZERO halt time for the\n\
         moved functions (the halting baseline would have stopped them for\n\
         {:.1} ms, see the t2 bench).",
        total_cells as f64 * 22.6
    );
    println!("\nfinal state: {}", mgr.status());
    Ok(())
}
