//! Quickstart: implement a circuit on the Virtex model, relocate a live
//! CLB with the paper's two-phase procedure, and prove the application
//! never noticed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtm_core::cost::CostModel;
use rtm_core::verify::TransparencyHarness;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::itc99;
use rtm_netlist::techmap::map_to_luts;
use rtm_sim::design::implement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The device the paper used: a Virtex XCV200 (28x42 CLBs).
    let mut dev = Device::new(Part::Xcv200);
    println!(
        "device: {} - {}x{} CLBs, {} frames of {} bits",
        dev.part(),
        dev.rows(),
        dev.cols(),
        dev.part().total_frames(),
        dev.part().frame_payload_bits()
    );

    // 2. A benchmark circuit (synthetic ITC'99 b01 equivalent).
    let netlist = itc99::generate(
        itc99::profile("b01").expect("known circuit"),
        itc99::Variant::FreeRunning,
    );
    let mapped = map_to_luts(&netlist)?;
    println!(
        "circuit: {} -> {} LUT cells ({} flip-flops)",
        netlist.name(),
        mapped.len(),
        mapped.ff_count()
    );

    // 3. Place & route it into a region.
    let region = Rect::new(ClbCoord::new(4, 4), 10, 10);
    let placed = implement(&mut dev, &mapped, region)?;
    println!(
        "implemented in {region}: {} nets routed",
        placed.netdb.nets().count()
    );

    // 4. Run it, relocate a live flip-flop cell, keep running.
    let mut harness = TransparencyHarness::new(&netlist, dev, placed);
    harness.run_cycles(100)?;

    let victim = (0..harness.placed().design.cells.len())
        .find(|i| harness.placed().design.cells[*i].storage.is_sequential())
        .expect("b01 has flip-flops");
    let src = harness.placed().cell_loc(victim);
    let dst = (ClbCoord::new(20, 24), 0);
    println!(
        "relocating live cell {}/{} -> {}/{} ...",
        src.0, src.1, dst.0, dst.1
    );
    let report = harness.relocate_cell(src, dst)?;
    harness.run_cycles(100)?;

    // 5. The paper's claims, as observations.
    println!("procedure: {report}");
    let cost = CostModel::paper_default().relocation_cost(harness.device().part(), &report);
    println!(
        "reconfiguration cost: {cost} over {}",
        CostModel::paper_default().interface
    );
    println!(
        "transparent: {} ({} glitches, {} divergences over {} cycles)",
        harness.transparent(),
        harness.glitches().len(),
        harness.divergences().len(),
        harness.cycles()
    );
    assert!(harness.transparent());
    Ok(())
}
