//! The paper's §2 experiment: relocate CLBs of ITC'99 circuits running on
//! the XCV200 and verify "no loss of information or functional
//! disturbance", reporting the average relocation cost per class.
//!
//! ```sh
//! cargo run --release --example itc99_sweep
//! ```

use rtm_core::cost::CostModel;
use rtm_core::verify::TransparencyHarness;
use rtm_core::RelocationClass;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::itc99::{self, Variant};
use rtm_netlist::techmap::map_to_luts;
use rtm_sim::design::implement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost_model = CostModel::paper_default();
    println!(
        "ITC'99 relocation sweep on XCV200 over {}\n",
        cost_model.interface
    );
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>12} {:>12}",
        "circuit", "cells", "moved", "class", "avg ms/CLB", "transparent"
    );

    for variant in [Variant::FreeRunning, Variant::GatedClock] {
        for name in ["b01", "b02", "b06"] {
            let profile = itc99::profile(name).expect("known");
            let netlist = itc99::generate(profile, variant);
            let mapped = map_to_luts(&netlist)?;
            let mut dev = Device::new(Part::Xcv200);
            let side = ((mapped.len() + mapped.n_inputs + 8) as f64).sqrt().ceil() as u16 + 2;
            let region = Rect::new(ClbCoord::new(2, 2), side.min(24), side.min(24));
            let placed = implement(&mut dev, &mapped, region)?;
            let mut harness = TransparencyHarness::new(&netlist, dev, placed);
            harness.run_cycles(50)?;

            // Relocate the first few sequential cells to free space.
            let seq: Vec<usize> = (0..harness.placed().design.cells.len())
                .filter(|i| harness.placed().design.cells[*i].storage.is_sequential())
                .take(4)
                .collect();
            let mut total_ms = 0.0;
            let mut class = RelocationClass::FreeRunning;
            for (k, i) in seq.iter().enumerate() {
                let src = harness.placed().cell_loc(*i);
                let dst = (ClbCoord::new(26, 30 + 2 * k as u16), 1);
                let report = harness.relocate_cell(src, dst)?;
                class = report.class;
                total_ms += cost_model
                    .relocation_cost(harness.device().part(), &report)
                    .millis();
                harness.run_cycles(10)?;
            }
            harness.run_cycles(50)?;
            println!(
                "{:<10} {:>6} {:>8} {:>10} {:>12.1} {:>12}",
                format!("{name}_{variant}"),
                harness.placed().design.cells.len(),
                seq.len(),
                class.to_string(),
                total_ms / seq.len() as f64,
                harness.transparent(),
            );
            assert!(
                harness.transparent(),
                "{name} {variant} must stay transparent"
            );
        }
    }
    println!(
        "\nThe paper reports ~22.6 ms per gated-clock CLB relocation at 20 MHz\n\
         Boundary Scan; the column-granular cost model lands in the same\n\
         regime, scaling with the number of configuration columns touched."
    );
    Ok(())
}
