//! Virtual hardware (paper Fig. 1): three applications whose total area
//! exceeds the device share it by swapping functions in and out, with
//! reconfiguration hidden behind execution.
//!
//! Reproduces the paper's temporal/spatial schedule: applications A (2
//! functions), B (2 functions) and C (4 functions) run concurrently;
//! every function is set up *in advance* in the space its predecessor
//! released, so the reconfiguration interval `rt` overlaps useful
//! execution and the applications never stall — until the degree of
//! parallelism exceeds the free space (which this example also
//! demonstrates).
//!
//! ```sh
//! cargo run --example virtual_hardware
//! ```

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_place::alloc::Strategy;
use rtm_place::TaskArena;
use rtm_sched::policy::BOUNDARY_SCAN_US_PER_CLB;

/// One function of an application: area and execution time.
#[derive(Debug, Clone, Copy)]
struct Func {
    name: &'static str,
    rows: u16,
    cols: u16,
    exec_us: u64,
}

/// A sequential application: functions execute one after another.
#[derive(Debug, Clone)]
struct App {
    name: &'static str,
    functions: Vec<Func>,
}

fn paper_apps() -> Vec<App> {
    // Shapes chosen so that the sum of all functions' areas is ~2.4x the
    // device (28x42 = 1176 CLBs): genuine virtual hardware.
    vec![
        App {
            name: "A",
            functions: vec![
                Func {
                    name: "A1",
                    rows: 16,
                    cols: 20,
                    exec_us: 400_000,
                },
                Func {
                    name: "A2",
                    rows: 16,
                    cols: 18,
                    exec_us: 350_000,
                },
            ],
        },
        App {
            name: "B",
            functions: vec![
                Func {
                    name: "B1",
                    rows: 12,
                    cols: 16,
                    exec_us: 300_000,
                },
                Func {
                    name: "B2",
                    rows: 12,
                    cols: 18,
                    exec_us: 450_000,
                },
            ],
        },
        App {
            name: "C",
            functions: vec![
                Func {
                    name: "C1",
                    rows: 10,
                    cols: 12,
                    exec_us: 200_000,
                },
                Func {
                    name: "C2",
                    rows: 10,
                    cols: 14,
                    exec_us: 250_000,
                },
                Func {
                    name: "C3",
                    rows: 10,
                    cols: 12,
                    exec_us: 200_000,
                },
                Func {
                    name: "C4",
                    rows: 10,
                    cols: 10,
                    exec_us: 220_000,
                },
            ],
        },
    ]
}

fn main() {
    let apps = paper_apps();
    let bounds = Rect::new(ClbCoord::new(0, 0), 28, 42);
    let device_area = bounds.area();
    let total_area: u32 = apps
        .iter()
        .flat_map(|a| &a.functions)
        .map(|f| f.rows as u32 * f.cols as u32)
        .sum();
    println!("device: {device_area} CLBs; applications need {total_area} CLBs total");
    println!(
        "({}% of the device — virtual hardware)\n",
        total_area * 100 / device_area
    );

    // Event-driven schedule: each application runs its functions in
    // sequence; the *next* function is configured while the current one
    // executes (swap in advance). Reconfiguration time through the
    // Boundary Scan port: area x per-CLB cost.
    #[derive(Debug)]
    struct AppState {
        next_fn: usize,
        // When the currently-running function finishes.
        busy_until: u64,
        // Set when the next function is already configured and waiting.
        staged: bool,
        stall_us: u64,
    }
    let mut arena = TaskArena::new(bounds);
    let mut states: Vec<AppState> = apps
        .iter()
        .map(|_| AppState {
            next_fn: 0,
            busy_until: 0,
            staged: true,
            stall_us: 0,
        })
        .collect();
    let mut now = 0u64;
    let mut task_id = 0u64;
    let mut running: Vec<(u64, usize, u64)> = Vec::new(); // (task, app, finish)

    println!("time(ms) | event");
    let mut events = 0;
    while states
        .iter()
        .enumerate()
        .any(|(i, s)| s.next_fn < apps[i].functions.len())
    {
        events += 1;
        if events > 200 {
            break;
        }
        // Start any staged function whose application is idle.
        let mut progressed = false;
        for (i, app) in apps.iter().enumerate() {
            let s = &mut states[i];
            if s.next_fn >= app.functions.len() || s.busy_until > now {
                continue;
            }
            let f = app.functions[s.next_fn];
            match arena.allocate(task_id, f.rows, f.cols, Strategy::BestFit) {
                Ok(region) => {
                    // Reconfiguration interval rt: hidden if staged in
                    // advance (the previous function was still running);
                    // exposed as a stall if we had to wait for space.
                    let rt = f.rows as u64 * f.cols as u64 * BOUNDARY_SCAN_US_PER_CLB / 100;
                    let start = if s.staged { now } else { now + rt };
                    if !s.staged {
                        s.stall_us += rt;
                    }
                    let finish = start + f.exec_us;
                    println!(
                        "{:8.1} | {}: {} starts at {} ({}x{}){}",
                        now as f64 / 1000.0,
                        app.name,
                        f.name,
                        region,
                        f.rows,
                        f.cols,
                        if s.staged {
                            ""
                        } else {
                            " [stalled: space was not free in advance]"
                        }
                    );
                    running.push((task_id, i, finish));
                    s.busy_until = finish;
                    s.next_fn += 1;
                    s.staged = false;
                    task_id += 1;
                    progressed = true;
                }
                Err(_) => {
                    // No contiguous space: the application stalls until a
                    // departure (the paper's motivation for rearrangement).
                    s.staged = false;
                }
            }
        }
        // Advance to the next completion.
        if let Some(&(tid, app_idx, finish)) = running.iter().min_by_key(|(_, _, f)| *f) {
            if !progressed || finish <= now {
                let stalled = now.max(finish);
                now = stalled;
                arena.release(tid).expect("running task allocated");
                running.retain(|(t, _, _)| *t != tid);
                println!(
                    "{:8.1} | {}: function done, {} CLBs released",
                    now as f64 / 1000.0,
                    apps[app_idx].name,
                    arena.arena().free_cells()
                );
                // Everyone still running may stage its successor now.
                for s in states.iter_mut() {
                    s.staged = true;
                }
            } else {
                now += 1000;
            }
        } else if !progressed {
            now += 1000;
        }
    }

    println!("\nper-application stall time (reconfiguration not hidden):");
    for (i, app) in apps.iter().enumerate() {
        println!(
            "  {}: {:.1} ms",
            app.name,
            states[i].stall_us as f64 / 1000.0
        );
    }
    println!(
        "\nWith functions swapped in advance the reconfiguration interval is\n\
         hidden behind execution; stalls appear only when parallel demand\n\
         exceeds free contiguous space — the problem the paper's on-line\n\
         rearrangement (see `defragmentation` example) removes."
    );
}
