//! Workspace walking, file classification, and the top-level lint run.

use crate::allowlist::{self, AllowEntry, Applied};
use crate::lexer::{lex, strip_cfg_test};
use crate::rules::{run_all, FileKind, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Everything one lint run produced.
pub struct RunResult {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Raw finding count before suppression.
    pub total_findings: usize,
    /// Allowlist application (reported / suppressed / unused entries).
    pub applied: Applied,
}

/// Classifies a root-relative `/`-separated path; `None` = not scanned.
///
/// Skipped entirely:
/// - `target/`, `.git/`: build/VCS output;
/// - `shims/`: vendored stand-ins for crates.io dependencies — excluded
///   exactly as the real external crates would be;
/// - `tests/fixtures/`: rtm-lint's own seeded-violation fixtures.
pub fn classify(rel: &str) -> Option<FileKind> {
    let comps: Vec<&str> = rel.split('/').collect();
    if comps.contains(&"target") || comps.contains(&".git") || comps.first() == Some(&"shims") {
        return None;
    }
    if rel.contains("tests/fixtures/") {
        return None;
    }
    if comps.contains(&"tests") {
        return Some(FileKind::Test);
    }
    if comps.contains(&"benches") {
        return Some(FileKind::Bench);
    }
    if comps.contains(&"examples") {
        return Some(FileKind::Example);
    }
    if rel.contains("src/bin/") {
        return Some(FileKind::Bin);
    }
    if comps.contains(&"src") {
        return Some(FileKind::Lib);
    }
    None
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every classified `.rs` file under `root`, applying `entries`.
pub fn run(root: &Path, entries: &[AllowEntry]) -> Result<RunResult, String> {
    let mut paths = Vec::new();
    walk(root, &mut paths).map_err(|e| format!("walking {}: {e}", root.display()))?;
    // read_dir order is platform-dependent; diagnostics must not be.
    paths.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut files = 0usize;
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(kind) = classify(&rel) else {
            continue;
        };
        files += 1;
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let toks = strip_cfg_test(lex(&src));
        findings.extend(run_all(&rel, kind, &toks));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let total_findings = findings.len();
    let applied = allowlist::apply(findings, entries);
    Ok(RunResult {
        files,
        total_findings,
        applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_workspace_layout() {
        assert_eq!(classify("crates/core/src/manager.rs"), Some(FileKind::Lib));
        assert_eq!(classify("crates/core/src/bin/frpt.rs"), Some(FileKind::Bin));
        assert_eq!(
            classify("crates/fleet/tests/migration.rs"),
            Some(FileKind::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/t2.rs"),
            Some(FileKind::Bench)
        );
        assert_eq!(classify("examples/fleet_loop.rs"), Some(FileKind::Example));
        assert_eq!(classify("src/lib.rs"), Some(FileKind::Lib));
        assert_eq!(classify("tools/rtm-lint/src/lexer.rs"), Some(FileKind::Lib));
        assert_eq!(classify("shims/rand/src/lib.rs"), None);
        assert_eq!(classify("target/debug/build/x.rs"), None);
        assert_eq!(classify("tools/rtm-lint/tests/fixtures/x/src/lib.rs"), None);
        assert_eq!(classify("Cargo.toml"), None);
    }
}
