//! A hand-rolled Rust lexer — just enough fidelity for lexical lint
//! rules: identifiers and punctuation with exact `line:col` positions,
//! with comments (line, nested block, doc), string literals (plain,
//! raw, byte), char literals and lifetimes skipped so that a pattern
//! inside a doc example or a message string can never trigger a rule.
//!
//! The lexer is deliberately token-level, not syntactic: rules match
//! token sequences (`.` `load` `(`), which is robust to formatting and
//! costs microseconds per file. No external crates — consistent with
//! the workspace's offline shim strategy.

/// What a token is: everything a rule can match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`load`, `fn`, `unsafe`, ...).
    Ident(String),
    /// A single punctuation character (`.` `(` `{` `=` `+` ...).
    /// Multi-char operators arrive as consecutive tokens.
    Punct(char),
    /// A literal (number, string, char). Contents are not kept: rules
    /// must never match inside literals.
    Literal,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind (and ident text).
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }

    /// True when this token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count chars, not bytes: UTF-8 continuation bytes do not
            // advance the column.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: lint
/// input is assumed to at least be code `rustc` accepts.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(n) = c.peek() {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => skip_block_comment(&mut c),
            b'r' | b'b' if starts_raw_or_byte_string(&c) => {
                lex_prefixed_string(&mut c);
                out.push(Tok {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let mut ident = String::new();
                while let Some(n) = c.peek() {
                    if !is_ident_cont(n) {
                        break;
                    }
                    ident.push(n as char);
                    c.bump();
                }
                out.push(Tok {
                    kind: TokKind::Ident(ident),
                    line,
                    col,
                });
            }
            b'0'..=b'9' => {
                lex_number(&mut c);
                out.push(Tok {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            b'"' => {
                lex_plain_string(&mut c);
                out.push(Tok {
                    kind: TokKind::Literal,
                    line,
                    col,
                });
            }
            b'\'' => {
                if lex_char_or_lifetime(&mut c) {
                    out.push(Tok {
                        kind: TokKind::Literal,
                        line,
                        col,
                    });
                }
                // Lifetimes produce no token: no rule matches them.
            }
            _ => {
                c.bump();
                out.push(Tok {
                    kind: TokKind::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn skip_block_comment(c: &mut Cursor) {
    c.bump(); // '/'
    c.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (c.peek(), c.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                c.bump();
                c.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                c.bump();
                c.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break,
        }
    }
}

/// `r"`, `r#`, `b"`, `b'`, `br"`, `br#` — anything that makes the
/// leading `r`/`b` a literal prefix rather than an identifier.
fn starts_raw_or_byte_string(c: &Cursor) -> bool {
    matches!(
        (c.peek(), c.peek_at(1), c.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn lex_prefixed_string(c: &mut Cursor) {
    let mut raw = false;
    while let Some(b'r' | b'b') = c.peek() {
        raw = c.peek() == Some(b'r');
        c.bump();
    }
    if raw {
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        c.bump(); // opening quote
        loop {
            match c.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek() == Some(b'#') {
                        seen += 1;
                        c.bump();
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    } else if c.peek() == Some(b'\'') {
        // Byte char: b'x'
        c.bump();
        lex_quoted(c, b'\'');
    } else {
        c.bump(); // opening '"'
        lex_quoted_tail(c, b'"');
    }
}

fn lex_plain_string(c: &mut Cursor) {
    c.bump(); // opening quote
    lex_quoted_tail(c, b'"');
}

/// Consumes an escaped-quoted run whose opening delimiter was already
/// consumed.
fn lex_quoted_tail(c: &mut Cursor, delim: u8) {
    loop {
        match c.bump() {
            Some(b'\\') => {
                c.bump();
            }
            Some(b) if b == delim => return,
            Some(_) => {}
            None => return,
        }
    }
}

fn lex_quoted(c: &mut Cursor, delim: u8) {
    lex_quoted_tail(c, delim)
}

fn lex_number(c: &mut Cursor) {
    // Consume alphanumerics (covers 0x.., suffixes); a '.' continues the
    // number only when followed by a digit, so `0..n` ranges survive.
    while let Some(b) = c.peek() {
        let continues = b.is_ascii_alphanumeric()
            || b == b'_'
            || (b == b'.' && c.peek_at(1).is_some_and(|n| n.is_ascii_digit()));
        if continues {
            c.bump();
        } else {
            break;
        }
    }
}

/// Returns true when a char literal was consumed (a token should be
/// emitted); false for a lifetime.
fn lex_char_or_lifetime(c: &mut Cursor) -> bool {
    c.bump(); // opening '
    match c.peek() {
        Some(b'\\') => {
            c.bump();
            c.bump();
            lex_quoted_tail(c, b'\'');
            true
        }
        Some(b) if is_ident_start(b) => {
            // Could be 'a' (char) or 'a (lifetime): consume the ident
            // run, then check for a closing quote.
            while let Some(n) = c.peek() {
                if !is_ident_cont(n) {
                    break;
                }
                c.bump();
            }
            if c.peek() == Some(b'\'') {
                c.bump();
                true
            } else {
                false
            }
        }
        Some(_) => {
            // 'x' with x non-ident (e.g. '.', ' ').
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            true
        }
        None => false,
    }
}

/// Strips every `#[cfg(test)]` item (attribute + the item it guards,
/// including a whole `mod tests { ... }` block) from the token stream.
/// Rules therefore never see test code, which is free to `unwrap`, use
/// `HashMap`s and call whatever API it wants.
pub fn strip_cfg_test(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = cfg_test_item_end(&toks, i) {
            i = end;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// If `toks[i..]` starts a `#[cfg(test)]`-guarded item, returns the
/// index one past that item.
fn cfg_test_item_end(toks: &[Tok], i: usize) -> Option<usize> {
    let t = |k: usize| toks.get(i + k);
    if !(t(0)?.is_punct('#')
        && t(1)?.is_punct('[')
        && t(2)?.is_ident("cfg")
        && t(3)?.is_punct('(')
        && t(4)?.is_ident("test")
        && t(5)?.is_punct(')')
        && t(6)?.is_punct(']'))
    {
        return None;
    }
    let mut j = i + 7;
    // Skip any further attributes on the same item.
    while toks.get(j).is_some_and(|t| t.is_punct('#'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0i32;
        j += 1;
        while let Some(t) = toks.get(j) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Consume one item: everything up to a top-level `;` or through a
    // balanced `{ ... }` block.
    let mut brace = 0i32;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    return Some(j + 1);
                }
            }
            TokKind::Punct(';') if brace == 0 => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r##"
            // mgr.load(x) in a comment
            /* mgr.load(y) /* nested */ still comment */
            let s = "mgr.load(z)"; // string
            let r = r#"mgr.load(w)"#;
            let c = '.';
            mgr.real();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"load".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let toks = lex(src);
        // The trailing `{ x }` must survive: a lexer that treated `'a`
        // as an unterminated char literal would swallow it.
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(toks.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn number_ranges_do_not_swallow_dots() {
        let toks = lex("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
            fn lib2() {}
        "#;
        let toks = strip_cfg_test(lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(ids.contains(&"lib"));
        assert!(ids.contains(&"lib2"));
        assert!(!ids.contains(&"unwrap"));
    }

    #[test]
    fn cfg_test_single_item_is_stripped() {
        let src = "#[cfg(test)] use foo::bar; fn keep() {}";
        let toks = strip_cfg_test(lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(!ids.contains(&"bar"));
        assert!(ids.contains(&"keep"));
    }
}
