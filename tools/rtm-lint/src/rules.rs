//! The rule engine: five lexical rules, each guarding one invariant the
//! parallel fleet engine will stand on. Rules receive the
//! comment/string/test-stripped token stream of one file plus its
//! classification, and return findings; suppression (the allowlist) is
//! the engine's job, not the rules'.

use crate::lexer::Tok;

/// How a workspace `.rs` file is used — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some `src/` (the default).
    Lib,
    /// A binary under `src/bin/`.
    Bin,
    /// An example under `examples/`.
    Example,
    /// An integration test under `tests/`.
    Test,
    /// A bench under `benches/`.
    Bench,
}

/// One rule violation at an exact source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`plan-discipline`, ...).
    pub rule: &'static str,
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation, including what to do about it.
    pub msg: String,
}

/// Static description of a rule, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Stable id, used in diagnostics and `lint-allow.toml`.
    pub id: &'static str,
    /// Where it looks.
    pub scope: &'static str,
    /// What it guards.
    pub what: &'static str,
}

/// Every rule this binary knows, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "plan-discipline",
        scope: "lib/bin/example code outside crates/core and tools/",
        what: "raw RunTimeManager::load/defragment calls bypass the plan-reuse \
               pipeline (stale-plan safety); use load_with_plan/defragment_with_plan \
               or the service's admit/reserve+execute_reserved",
    },
    RuleInfo {
        id: "epoch-discipline",
        scope: "crates/core/src/manager.rs",
        what: "every arena mutation must advance the epoch via bump_epoch, and \
               nothing else may write self.epoch — stale plans must never execute",
    },
    RuleInfo {
        id: "shard-locality",
        scope: "lib/bin code",
        what: "Cell/RefCell/Rc/static mut/unsafe are Send/locality hazards for the \
               parallel fleet engine; each use needs a written confinement argument",
    },
    RuleInfo {
        id: "determinism",
        scope: "lib/bin/example code",
        what: "HashMap/HashSet iteration order and wall-clock reads must stay out \
               of counter-gated paths — the CI baseline is byte-exact-diffed; \
               wall timing belongs in rtm-obs's profiler module (the one \
               allowlisted Instant site), never in event payloads or reports",
    },
    RuleInfo {
        id: "panic-hygiene",
        scope: "lib code (non-test, non-example)",
        what: "unwrap/expect/panic! in library code must be converted to Result \
               propagation or carry a written unreachability justification",
    },
    RuleInfo {
        id: "flush-discipline",
        scope: "crates/service/src/service.rs",
        what: "every public &mut entry point that touches admission state (takes \
               &mut ServiceReport) must drain pending tickets first by calling \
               execute_reserved — flush-on-touch is what makes immediate and \
               deferred execution byte-identical by construction",
    },
];

/// Runs every applicable rule over one stripped token stream.
pub fn run_all(rel: &str, kind: FileKind, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    plan_discipline(rel, kind, toks, &mut out);
    epoch_discipline(rel, toks, &mut out);
    shard_locality(rel, kind, toks, &mut out);
    determinism(rel, kind, toks, &mut out);
    panic_hygiene(rel, kind, toks, &mut out);
    flush_discipline(rel, toks, &mut out);
    out
}

fn finding(rule: &'static str, rel: &str, t: &Tok, msg: String) -> Finding {
    Finding {
        rule,
        file: rel.to_owned(),
        line: t.line,
        col: t.col,
        msg,
    }
}

/// True when `toks[i..]` is `.name(`.
fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
}

/// True when `toks[i..]` is `path :: name(`, for any one-segment prefix.
fn is_path_call(toks: &[Tok], i: usize, seg: &str, name: &str) -> bool {
    toks[i].is_ident(seg)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Rule 1 — the plan-reuse pipeline is the only way to mutate a device
/// from outside `rtm-core`. `load`/`defragment` plan internally on
/// every call; a site that uses them instead of
/// `load_with_plan`/`defragment_with_plan` — or the service's two-phase
/// admission (`admit`, or `reserve` + `execute_reserved`, both of which
/// seat an epoch-stamped ticket and execute through
/// `RunTimeManager::execute_reserved`) — silently reverts an admission
/// to triple-planning and sidesteps stale-plan accounting.
/// `execute_reserved` is a *sanctioned* load entry point: it only ever
/// implements a ticket a reservation already planned and stamped.
fn plan_discipline(rel: &str, kind: FileKind, toks: &[Tok], out: &mut Vec<Finding>) {
    if !matches!(kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return;
    }
    if rel.starts_with("crates/core/") || rel.starts_with("tools/") {
        return;
    }
    for i in 0..toks.len() {
        for name in ["load", "defragment"] {
            let hit = if is_method_call(toks, i, name) {
                Some(&toks[i + 1])
            } else if is_path_call(toks, i, "RunTimeManager", name) {
                Some(&toks[i + 3])
            } else {
                None
            };
            if let Some(site) = hit {
                out.push(finding(
                    "plan-discipline",
                    rel,
                    site,
                    format!(
                        "direct `{name}()` call outside rtm-core bypasses the plan-reuse \
                         pipeline; route it through `{name}_with_plan` (or the service's \
                         `admit`/`reserve` + `execute_reserved`), or allowlist with a \
                         rationale"
                    ),
                ));
            }
        }
    }
}

/// Arena methods whose call mutates the layout a plan describes.
const ARENA_MUTATORS: &[&str] = &["allocate", "allocate_at", "release", "relocate", "claim"];

/// Rule 2 — inside the manager, arena mutations and epoch advances are
/// inseparable: the epoch is the cache key of every plan, summary and
/// frag sample, so a mutation that skips `bump_epoch` lets a stale plan
/// execute. Conversely, only `bump_epoch` may write the counter.
fn epoch_discipline(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    if !rel.ends_with("crates/core/src/manager.rs") {
        return;
    }
    for (name, body) in split_fns(toks) {
        if name == "bump_epoch" {
            continue;
        }
        let mut missing_reported = false;
        for i in 0..body.len() {
            // `self.epoch +=` / `self.epoch =` (but not `==`, `!=` etc).
            if body[i].is_ident("self")
                && body.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && body.get(i + 2).is_some_and(|t| t.is_ident("epoch"))
            {
                let w = (body.get(i + 3), body.get(i + 4));
                let writes = match w {
                    (Some(a), Some(b)) if a.is_punct('+') && b.is_punct('=') => true,
                    (Some(a), Some(b)) if a.is_punct('=') && !b.is_punct('=') => true,
                    _ => false,
                };
                if writes {
                    out.push(finding(
                        "epoch-discipline",
                        rel,
                        &body[i + 2],
                        format!(
                            "`fn {name}` writes `self.epoch` directly; only `bump_epoch` \
                             may advance the epoch"
                        ),
                    ));
                }
            }
            // `.arena.<mutator>(` without a bump_epoch call in the fn.
            if body[i].is_punct('.')
                && body.get(i + 1).is_some_and(|t| t.is_ident("arena"))
                && body.get(i + 2).is_some_and(|t| t.is_punct('.'))
                && body.get(i + 4).is_some_and(|t| t.is_punct('('))
            {
                if let Some(m) = body.get(i + 3).and_then(|t| t.ident()) {
                    if ARENA_MUTATORS.contains(&m)
                        && !body.iter().any(|t| t.is_ident("bump_epoch"))
                        && !missing_reported
                    {
                        missing_reported = true;
                        out.push(finding(
                            "epoch-discipline",
                            rel,
                            &body[i + 3],
                            format!(
                                "`fn {name}` mutates the arena (`.arena.{m}()`) but never \
                                 calls `bump_epoch`; plans stamped before this call would \
                                 stay valid for a layout that no longer exists"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Rule 3 — the Send-readiness pre-flight. `Cell`/`RefCell` are `Send`
/// but not `Sync` (fine shard-locally, fatal if shared), `Rc` is
/// neither, `static mut` and `unsafe` are manual review forever. Every
/// use must carry a written confinement argument in the allowlist.
fn shard_locality(rel: &str, kind: FileKind, toks: &[Tok], out: &mut Vec<Finding>) {
    if !matches!(kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if let Some(id) = t.ident() {
            let msg = match id {
                "Cell" | "RefCell" | "UnsafeCell" => Some(format!(
                    "interior mutability (`{id}`) ahead of the parallel fleet engine: \
                     `Send` but not `Sync`, so it must stay confined to one shard — \
                     allowlist with the confinement argument or use owned state"
                )),
                "Rc" => Some(
                    "`Rc` is neither `Send` nor `Sync` and would break the fleet's \
                     compile-time `Send` pins; use `Arc` or owned state"
                        .to_owned(),
                ),
                "thread_local" => Some(
                    "`thread_local!` state silently diverges across a work-stealing \
                     fleet; keep per-shard state inside the shard"
                        .to_owned(),
                ),
                "unsafe" => Some(
                    "`unsafe` in workspace code is a standing review obligation for \
                     the parallel refactor; justify in the allowlist or remove"
                        .to_owned(),
                ),
                "static" if toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) => Some(
                    "`static mut` is an unsynchronized global — a data race the moment \
                     shards run in parallel"
                        .to_owned(),
                ),
                _ => None,
            };
            if let Some(msg) = msg {
                out.push(finding("shard-locality", rel, t, msg));
            }
        }
    }
}

/// Rule 4 — the CI perf gate diffs counter output byte-for-byte, so
/// anything that can reorder or time-skew output in library, binary or
/// example code is flagged: `HashMap`/`HashSet` (iteration order varies
/// run to run), `Instant`/`SystemTime` (wall time in gated paths).
/// Benches are exempt — timing is their purpose. The observability
/// split sharpens the wall-clock arm: `rtm-obs` keeps the deterministic
/// event stream (simulated time only) strictly apart from the wall-clock
/// phase profiler, so the *only* legitimate `Instant` home in workspace
/// code is `crates/obs/src/profile.rs` — carried as the one justified
/// determinism allowlist entry, not as a rule exemption.
fn determinism(rel: &str, kind: FileKind, toks: &[Tok], out: &mut Vec<Finding>) {
    if !matches!(kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return;
    }
    for t in toks {
        if let Some(id) = t.ident() {
            let msg = match id {
                "HashMap" | "HashSet" => Some(format!(
                    "`{id}` iteration order is nondeterministic; report counters and \
                     baseline output must not depend on it — use BTreeMap/BTreeSet/Vec, \
                     or allowlist lookup-only uses"
                )),
                "Instant" | "SystemTime" => Some(format!(
                    "wall-clock (`{id}`) near counter-gated paths threatens the \
                     byte-exact CI baseline; route timing through rtm-obs's phase \
                     profiler/Stopwatch (the one allowlisted Instant site) and keep \
                     events and reports on simulated time"
                )),
                _ => None,
            };
            if let Some(msg) = msg {
                out.push(finding("determinism", rel, t, msg));
            }
        }
    }
}

/// Rule 5 — a panic in one shard of a parallel fleet poisons the whole
/// run. Library code must propagate `Result`s; the residue of genuinely
/// unreachable states needs a written justification in the allowlist
/// (the `expect` message alone is not reviewable at a distance).
fn panic_hygiene(rel: &str, kind: FileKind, toks: &[Tok], out: &mut Vec<Finding>) {
    if kind != FileKind::Lib {
        return;
    }
    for i in 0..toks.len() {
        for name in ["unwrap", "expect"] {
            if is_method_call(toks, i, name) {
                out.push(finding(
                    "panic-hygiene",
                    rel,
                    &toks[i + 1],
                    format!(
                        "`.{name}()` in library code; convert to Result/CoreError \
                         propagation or allowlist with the invariant that makes it \
                         unreachable"
                    ),
                ));
            }
        }
        if let Some(id) = toks[i].ident() {
            if matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                out.push(finding(
                    "panic-hygiene",
                    rel,
                    &toks[i],
                    format!(
                        "`{id}!` in library code; convert to Result/CoreError propagation \
                         or allowlist with the invariant that makes it unreachable"
                    ),
                ));
            }
        }
    }
}

/// Rule 6 — flush-on-touch. Deferred and immediate execution produce
/// byte-identical event streams because every state-observing public
/// entry point on `RuntimeService` drains the shard's pending admission
/// tickets *before* touching anything: the drain then happens at the
/// same per-shard sequence position in both modes. Lexically: a
/// `pub fn` taking `&mut self` and a `&mut ServiceReport` parameter
/// (the signature shape of every admission-state entry point) must
/// mention `execute_reserved` in its body. Methods that legitimately
/// skip the drain (`finish` is infallible and only runs after the
/// final settle; `restore_migrated` is the rollback arm of an
/// already-drained `migrate_out`) carry allowlist entries with the
/// written argument.
fn flush_discipline(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    if !rel.ends_with("crates/service/src/service.rs") {
        return;
    }
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
            if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                if let Some(f) = flush_check(rel, toks, i + 3, name, &toks[i + 2]) {
                    out.push(f);
                }
            }
        }
        i += 1;
    }
}

/// The per-function half of [`flush_discipline`]: `sig_start` points
/// just past the function name. Returns a finding when the signature
/// matches the entry-point shape but the body never drains.
fn flush_check(
    rel: &str,
    toks: &[Tok],
    sig_start: usize,
    name: &str,
    site: &Tok,
) -> Option<Finding> {
    if name == "execute_reserved" {
        return None;
    }
    // Scan the parameter list only (`(` .. matching `)`), so a
    // `ServiceReport` in return position (e.g. `run`) doesn't count.
    let open = (sig_start..toks.len())
        .find(|&j| toks[j].is_punct('(') || toks[j].is_punct('{') || toks[j].is_punct(';'))?;
    if !toks[open].is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    let mut close = open;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }
    let params = &toks[open..=close];
    let mut_self = params
        .windows(3)
        .any(|w| w[0].is_punct('&') && w[1].is_ident("mut") && w[2].is_ident("self"));
    let takes_report = params.iter().any(|t| t.is_ident("ServiceReport"));
    if !(mut_self && takes_report) {
        return None;
    }
    // The body is the next balanced `{ ... }`; `;` first means a
    // declaration with no body.
    let mut body_start = None;
    for (j, t) in toks.iter().enumerate().skip(close + 1) {
        if t.is_punct('{') {
            body_start = Some(j);
            break;
        }
        if t.is_punct(';') {
            break;
        }
    }
    let start = body_start?;
    let mut depth = 0i32;
    let mut end = start;
    for (k, t) in toks.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                end = k;
                break;
            }
        }
    }
    if toks[start..=end]
        .iter()
        .any(|t| t.is_ident("execute_reserved"))
    {
        return None;
    }
    Some(finding(
        "flush-discipline",
        rel,
        site,
        format!(
            "`pub fn {name}` takes `&mut self` and a `&mut ServiceReport` but never \
             calls `execute_reserved`; every admission-state entry point must drain \
             pending tickets first (flush-on-touch) or carry an allowlist entry with \
             the argument for why the drain is unnecessary"
        ),
    ))
}

/// Splits a token stream into `fn` items: (name, body tokens). The body
/// is the balanced `{ ... }` block after the signature. Nested closures
/// stay inside their function's body; nested `fn` items are also
/// yielded separately (their tokens appear in both — acceptable for
/// presence checks).
fn split_fns(toks: &[Tok]) -> Vec<(String, Vec<Tok>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Find the body's opening brace; `;` first means a
                // trait/extern declaration with no body.
                let mut j = i + 2;
                let mut body_start = None;
                while let Some(t) = toks.get(j) {
                    if t.is_punct('{') {
                        body_start = Some(j);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let mut depth = 0i32;
                    let mut end = start;
                    for (k, t) in toks.iter().enumerate().skip(start) {
                        if t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break;
                            }
                        }
                    }
                    out.push((name.to_owned(), toks[start..=end].to_vec()));
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};

    fn run(rel: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        run_all(rel, kind, &strip_cfg_test(lex(src)))
    }

    #[test]
    fn plan_discipline_flags_raw_load_outside_core() {
        let f = run(
            "crates/service/src/service.rs",
            FileKind::Lib,
            "fn a(m: &mut M) { m.load(d, 8, 8, |_,_,_| {}); }",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "plan-discipline").count(), 1);
    }

    #[test]
    fn plan_discipline_allows_pipeline_calls_and_core() {
        let clean = run(
            "crates/service/src/service.rs",
            FileKind::Lib,
            "fn a(m: &mut M) { m.load_with_plan(d, 8, 8, &p, |_,_,_| {}); }",
        );
        assert!(clean.iter().all(|f| f.rule != "plan-discipline"));
        let core = run(
            "crates/core/src/lib.rs",
            FileKind::Lib,
            "fn a(m: &mut M) { m.load(d, 8, 8, |_,_,_| {}); }",
        );
        assert!(core.iter().all(|f| f.rule != "plan-discipline"));
        // The two-phase pipeline is sanctioned end to end: a seated
        // reservation executing its ticket is not a raw load.
        let two_phase = run(
            "crates/fleet/src/fleet.rs",
            FileKind::Lib,
            "fn a(s: &mut S, r: &mut R) { s.reserve(0, bid, r); s.execute_reserved(r); }",
        );
        assert!(two_phase.iter().all(|f| f.rule != "plan-discipline"));
    }

    #[test]
    fn epoch_discipline_requires_bump_for_arena_mutation() {
        let src = "
            impl M {
                fn bad(&mut self) { self.arena.release(id); }
                fn good(&mut self) { self.arena.release(id); self.bump_epoch(); }
                fn bump_epoch(&mut self) { self.epoch += 1; }
            }";
        let f = run("crates/core/src/manager.rs", FileKind::Lib, src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "epoch-discipline").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].msg.contains("fn bad"));
    }

    #[test]
    fn epoch_discipline_flags_direct_epoch_writes() {
        let src = "impl M { fn sneaky(&mut self) { self.epoch += 1; } \
                   fn cmp(&self) -> bool { self.epoch == 3 } }";
        let f = run("crates/core/src/manager.rs", FileKind::Lib, src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "epoch-discipline").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].msg.contains("sneaky"));
    }

    #[test]
    fn shard_locality_flags_cells_and_static_mut() {
        let src = "struct S { c: Cell<u32>, r: RefCell<u8>, p: Rc<u8> } \
                   static mut G: u32 = 0; \
                   fn f() { unsafe { G = 1 } }";
        let f = run("crates/x/src/lib.rs", FileKind::Lib, src);
        assert_eq!(f.iter().filter(|f| f.rule == "shard-locality").count(), 5);
    }

    #[test]
    fn determinism_flags_hash_collections_and_time() {
        let src = "use std::collections::HashMap; \
                   fn f() { let t = Instant::now(); }";
        let f = run("crates/x/src/lib.rs", FileKind::Lib, src);
        assert_eq!(f.iter().filter(|f| f.rule == "determinism").count(), 2);
    }

    #[test]
    fn flush_discipline_requires_drain_in_entry_points() {
        let src = "
            impl RuntimeService {
                pub fn bad(&mut self, report: &mut ServiceReport) { report.x += 1; }
                pub fn good(&mut self, report: &mut ServiceReport) -> Result<(), E> {
                    self.execute_reserved(report)?;
                    Ok(())
                }
            }";
        let f = run("crates/service/src/service.rs", FileKind::Lib, src);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "flush-discipline").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].msg.contains("fn bad"));
    }

    #[test]
    fn flush_discipline_ignores_other_signatures_and_files() {
        // Return-position ServiceReport (the `run` shape), &self
        // getters, and report-free mutators are all out of scope; so is
        // the drain itself, and so is every other file.
        let src = "
            impl RuntimeService {
                pub fn run(&mut self, t: &Trace) -> Result<ServiceReport, E> { self.x() }
                pub fn now(&self, report: &mut ServiceReport) -> u64 { 0 }
                pub fn resolve_ticket(&mut self, id: u64) -> Result<T, E> { self.go(id) }
                pub fn execute_reserved(&mut self, report: &mut ServiceReport) {}
            }";
        let f = run("crates/service/src/service.rs", FileKind::Lib, src);
        assert!(f.iter().all(|f| f.rule != "flush-discipline"), "{f:?}");
        let elsewhere = run(
            "crates/fleet/src/fleet.rs",
            FileKind::Lib,
            "pub fn f(&mut self, report: &mut ServiceReport) {}",
        );
        assert!(elsewhere.iter().all(|f| f.rule != "flush-discipline"));
    }

    #[test]
    fn panic_hygiene_skips_tests_and_examples() {
        let src = "fn f() { x.unwrap(); } \
                   #[cfg(test)] mod tests { fn t() { y.unwrap(); } }";
        let lib = run("crates/x/src/lib.rs", FileKind::Lib, src);
        assert_eq!(lib.iter().filter(|f| f.rule == "panic-hygiene").count(), 1);
        let ex = run("examples/e.rs", FileKind::Example, src);
        assert_eq!(ex.iter().filter(|f| f.rule == "panic-hygiene").count(), 0);
    }
}
