//! CLI entry point. See the library docs ([`rtm_lint`]) for what the
//! rules check; see `lint-allow.toml` at the workspace root for every
//! accepted finding and its justification.

use rtm_lint::{allowlist, engine, rules};
use std::path::PathBuf;
use std::process::ExitCode;
// Wall-clock here is operator feedback on the lint run itself (the
// "stays sub-second" budget in ci.sh); it never reaches gated output.
use std::time::Instant;

fn usage() -> &'static str {
    "usage: rtm-lint [--root DIR] [--allowlist FILE] [--no-allowlist] [--list-rules]\n\
     \n\
     Lints every workspace .rs file under DIR (default: current dir)\n\
     against the shard-locality / plan-pipeline discipline rules.\n\
     The allowlist defaults to DIR/lint-allow.toml when present."
}

fn main() -> ExitCode {
    let started = Instant::now();
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut no_allowlist = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return config_error("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return config_error("--allowlist needs a file"),
            },
            "--no-allowlist" => no_allowlist = true,
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:<17} scope: {}", r.id, r.scope);
                    println!("{:<17} {}", "", r.what);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return config_error(&format!("unknown argument `{other}`\n{}", usage())),
        }
    }

    let entries = if no_allowlist {
        Vec::new()
    } else {
        let path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.toml"));
        if path.exists() {
            let display = path.display().to_string();
            match std::fs::read_to_string(&path) {
                Ok(src) => match allowlist::parse(&src, &display) {
                    Ok(entries) => entries,
                    Err(e) => return config_error(&e),
                },
                Err(e) => return config_error(&format!("reading {display}: {e}")),
            }
        } else {
            Vec::new()
        }
    };

    let result = match engine::run(&root, &entries) {
        Ok(r) => r,
        Err(e) => return config_error(&e),
    };

    for f in &result.applied.reported {
        println!("{}:{}:{}: [{}] {}", f.file, f.line, f.col, f.rule, f.msg);
    }
    for e in &result.applied.unused {
        println!(
            "lint-allow.toml:{}: stale [[allow]] entry ({} in {}) matches nothing — \
             remove it or fix the path",
            e.line, e.rule, e.file
        );
    }

    let reported = result.applied.reported.len();
    let stale = result.applied.unused.len();
    println!(
        "rtm-lint: {} files, {} findings ({} allowlisted, {} reported), \
         {} stale allowlist entries, {} ms",
        result.files,
        result.total_findings,
        result.applied.suppressed,
        reported,
        stale,
        started.elapsed().as_millis()
    );
    if reported > 0 || stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn config_error(msg: &str) -> ExitCode {
    eprintln!("rtm-lint: {msg}");
    ExitCode::from(2)
}
