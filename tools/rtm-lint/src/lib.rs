//! # rtm-lint
//!
//! Offline, dependency-free static analysis for the rtm workspace: a
//! hand-rolled lexer over every workspace `.rs` file, a five-rule
//! engine, and a checked-in allowlist with mandatory written
//! justifications. The rules mechanically pin the invariants the
//! parallel fleet engine will stand on — plan-pipeline discipline,
//! epoch discipline, shard locality (Send-readiness), deterministic
//! counter output, and panic hygiene — the same way `BENCH_fleet.json`
//! pinned the perf counters.
//!
//! Run it from the repository root:
//!
//! ```sh
//! cargo run --release -p rtm-lint            # lint the workspace
//! cargo run -p rtm-lint -- --list-rules      # what is checked, where
//! ```
//!
//! Exit codes: `0` clean, `1` unallowed findings (or stale allowlist
//! entries), `2` configuration/IO errors.

#![warn(missing_docs)]

pub mod allowlist;
pub mod engine;
pub mod lexer;
pub mod rules;
