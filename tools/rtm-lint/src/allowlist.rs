//! The checked-in suppression file: `lint-allow.toml` at the scanned
//! root. Hand-rolled parser for the tiny TOML subset the file uses —
//! `[[allow]]` tables of string/integer keys — because the toolchain is
//! offline and a suppression file must never pull a dependency tree.
//!
//! Policy (enforced here, not just documented):
//! - every entry MUST carry a non-empty `reason` — an allowlist without
//!   written justifications is just a mute button;
//! - an entry with `max = N` suppresses findings only while the file
//!   has at most N of them — the allowlist doubles as a ratchet, so new
//!   violations in an already-allowlisted file still fail;
//! - an entry that matches nothing fails the run — stale suppressions
//!   rot into lies about the codebase.

use crate::rules::{Finding, RULES};

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Root-relative `/`-separated file the entry covers.
    pub file: String,
    /// Why the findings are acceptable. Required, non-empty.
    pub reason: String,
    /// Ratchet: maximum number of findings this entry may suppress.
    /// More than `max` findings in the file report *all* of them.
    pub max: Option<usize>,
    /// 1-based line of the `[[allow]]` header, for error messages.
    pub line: usize,
}

/// Parses the allowlist, validating the policy invariants.
pub fn parse(src: &str, path: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut cur: Option<AllowEntry> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = cur.take() {
                validate(&e, path)?;
                entries.push(e);
            }
            cur = Some(AllowEntry {
                rule: String::new(),
                file: String::new(),
                reason: String::new(),
                max: None,
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{path}:{lineno}: expected `key = value` or `[[allow]]`"
            ));
        };
        let Some(e) = cur.as_mut() else {
            return Err(format!(
                "{path}:{lineno}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => e.rule = parse_string(value, path, lineno)?,
            "file" => e.file = parse_string(value, path, lineno)?,
            "reason" => e.reason = parse_string(value, path, lineno)?,
            "max" => {
                e.max = Some(value.parse::<usize>().map_err(|_| {
                    format!("{path}:{lineno}: `max` must be a non-negative integer")
                })?)
            }
            other => {
                return Err(format!(
                    "{path}:{lineno}: unknown key `{other}` (expected rule/file/reason/max)"
                ))
            }
        }
    }
    if let Some(e) = cur.take() {
        validate(&e, path)?;
        entries.push(e);
    }
    Ok(entries)
}

/// Strips a trailing `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

fn parse_string(value: &str, path: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].replace("\\\"", "\""))
    } else {
        Err(format!("{path}:{lineno}: expected a double-quoted string"))
    }
}

fn validate(e: &AllowEntry, path: &str) -> Result<(), String> {
    if e.rule.is_empty() || e.file.is_empty() {
        return Err(format!(
            "{path}:{}: [[allow]] entry needs both `rule` and `file`",
            e.line
        ));
    }
    if !RULES.iter().any(|r| r.id == e.rule) {
        return Err(format!(
            "{path}:{}: unknown rule `{}` (known: {})",
            e.line,
            e.rule,
            RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "{path}:{}: [[allow]] entry for {}:{} has no `reason` — every \
             suppression must carry a written justification",
            e.line, e.rule, e.file
        ));
    }
    Ok(())
}

/// The result of filtering findings through the allowlist.
pub struct Applied {
    /// Findings not covered by any entry (these fail the run).
    pub reported: Vec<Finding>,
    /// Count of findings suppressed by entries.
    pub suppressed: usize,
    /// Entries that matched nothing (these also fail the run).
    pub unused: Vec<AllowEntry>,
}

/// Applies the allowlist. Ratchet semantics: an entry whose file holds
/// more findings than `max` suppresses nothing, and the diagnostics say
/// so.
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> Applied {
    let mut used = vec![0usize; entries.len()];
    let mut reported = Vec::new();
    let mut suppressed = 0usize;

    // Count matches per entry first (ratchet needs totals).
    for f in &findings {
        if let Some(i) = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file)
        {
            used[i] += 1;
        }
    }
    for mut f in findings {
        let entry = entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.rule == f.rule && e.file == f.file);
        match entry {
            Some((i, e)) => {
                let over = e.max.is_some_and(|m| used[i] > m);
                if over {
                    f.msg = format!(
                        "{} [allowlisted max {} for this file, found {}]",
                        f.msg,
                        e.max.unwrap_or(0),
                        used[i]
                    );
                    reported.push(f);
                } else {
                    suppressed += 1;
                }
            }
            None => reported.push(f),
        }
    }
    let unused = entries
        .iter()
        .enumerate()
        .filter(|(i, _)| used[*i] == 0)
        .map(|(_, e)| e.clone())
        .collect();
    Applied {
        reported,
        suppressed,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            col: 1,
            msg: "m".into(),
        }
    }

    #[test]
    fn parses_entries_and_requires_reason() {
        let src = r#"
# comment
[[allow]]
rule = "panic-hygiene"   # trailing comment
file = "crates/x/src/lib.rs"
max = 2
reason = "messages name the invariant # not a comment"
"#;
        let e = parse(src, "t.toml").unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].max, Some(2));
        assert!(e[0].reason.contains("# not a comment"));

        let bad = "[[allow]]\nrule = \"panic-hygiene\"\nfile = \"x.rs\"\n";
        assert!(parse(bad, "t.toml").unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let src = "[[allow]]\nrule = \"nope\"\nfile = \"x.rs\"\nreason = \"r\"\n";
        assert!(parse(src, "t.toml").unwrap_err().contains("unknown rule"));
    }

    #[test]
    fn ratchet_reports_all_when_over_max() {
        let entries = parse(
            "[[allow]]\nrule = \"panic-hygiene\"\nfile = \"a.rs\"\nmax = 1\nreason = \"r\"\n",
            "t.toml",
        )
        .unwrap();
        let ok = apply(vec![f("panic-hygiene", "a.rs")], &entries);
        assert_eq!(ok.suppressed, 1);
        assert!(ok.reported.is_empty());

        let over = apply(
            vec![f("panic-hygiene", "a.rs"), f("panic-hygiene", "a.rs")],
            &entries,
        );
        assert_eq!(over.suppressed, 0);
        assert_eq!(over.reported.len(), 2);
        assert!(over.reported[0].msg.contains("max 1"));
    }

    #[test]
    fn unmatched_entries_are_flagged_unused() {
        let entries = parse(
            "[[allow]]\nrule = \"determinism\"\nfile = \"gone.rs\"\nreason = \"r\"\n",
            "t.toml",
        )
        .unwrap();
        let a = apply(vec![], &entries);
        assert_eq!(a.unused.len(), 1);
    }
}
