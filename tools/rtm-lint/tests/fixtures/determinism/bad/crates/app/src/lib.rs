//! Seeded violation: HashMap in code that feeds counters.

/// Tallies hits per id into an unordered map.
pub fn tally() -> std::collections::HashMap<u32, u32> {
    Default::default()
}
