//! Clean counterpart: ordered map, deterministic iteration.

/// Tallies hits per id into an ordered map.
pub fn tally() -> std::collections::BTreeMap<u32, u32> {
    Default::default()
}
