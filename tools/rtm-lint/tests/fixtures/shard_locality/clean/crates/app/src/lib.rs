//! Clean counterpart: owned state, mutated through `&mut self`.

/// Hit counter with owned state.
pub struct Stats {
    hits: u64,
}
