//! Seeded violation: interior mutability in library code.

/// Hit counter with interior mutability.
pub struct Stats {
    hits: std::cell::Cell<u64>,
}
