//! Clean counterpart: admission goes through the plan pipeline.

/// Plans first, then loads with the stamped plan.
pub fn admit(mgr: &mut rtm_core::RunTimeManager, d: &rtm_core::Design) {
    if let Some(plan) = mgr.plan_room(4, 4) {
        let _ = mgr.load_with_plan(d, 4, 4, &plan, |_, _, _| {});
    }
}
