//! Seeded violation: a direct `load()` call outside rtm-core.

/// Loads straight through the manager, skipping the plan pipeline.
pub fn admit(mgr: &mut rtm_core::RunTimeManager, d: &rtm_core::Design) {
    let _ = mgr.load(d, 4, 4);
}
