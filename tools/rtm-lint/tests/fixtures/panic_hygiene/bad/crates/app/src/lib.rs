//! Seeded violation: unwrap in library code.

/// Reads the first element, panicking on empty input.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
