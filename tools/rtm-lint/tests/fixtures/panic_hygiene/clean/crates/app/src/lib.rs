//! Clean counterpart: empty input is an Option, not a panic.

/// Reads the first element if there is one.
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
