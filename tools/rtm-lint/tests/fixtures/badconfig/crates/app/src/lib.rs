//! Clean file; the fixture exercises allowlist validation only.

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
