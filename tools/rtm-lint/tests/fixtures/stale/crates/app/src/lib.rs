//! Clean file; the fixture's allowlist entry matches nothing.

/// Adds two numbers.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
