//! Clean counterpart: the mutation routes through `bump_epoch`.

impl RunTimeManager {
    fn evict(&mut self, id: FunctionId) {
        self.arena.release(id);
        self.bump_epoch();
    }
}
