//! Seeded violation: arena mutation without an epoch bump.

impl RunTimeManager {
    fn evict(&mut self, id: FunctionId) {
        self.arena.release(id);
    }
}
