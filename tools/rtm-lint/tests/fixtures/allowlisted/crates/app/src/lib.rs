//! Seeded violation suppressed by this fixture's lint-allow.toml.

/// Hit counter with interior mutability.
pub struct Stats {
    hits: std::cell::Cell<u64>,
}
