//! Seeded violation of the observability split: wall-clock time inside
//! an event payload. Events must carry *simulated* time only — an
//! `Instant` here makes the stream differ run to run and engine to
//! engine, which the byte-exact stream equality tests would catch late
//! and expensively.

/// An event stamped with wall clock instead of simulated time.
pub struct StampedEvent {
    /// Wrong: wall-clock stamp in a deterministic payload.
    pub at: std::time::Instant,
    /// The payload.
    pub kind: u32,
}
