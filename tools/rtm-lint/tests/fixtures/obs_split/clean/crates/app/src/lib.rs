//! Clean counterpart: the event carries a simulated-time stamp (a plain
//! `u64` of µs), and any wall-clock curiosity is delegated to the
//! profiler side of the split — which lives in rtm-obs, behind its own
//! allowlist entry, never in payloads.

/// An event stamped with simulated time.
pub struct StampedEvent {
    /// Simulated µs — deterministic, engine-invariant.
    pub at: u64,
    /// The payload.
    pub kind: u32,
}

/// Wall time, when wanted, is a profiler concern: callers hand the
/// measurement to the obs profiler rather than reading a clock here.
pub fn observe_phase(profiler_nanos: &mut u64, spent: u64) {
    *profiler_nanos += spent;
}
