//! End-to-end fixture tests: run the real `rtm-lint` binary against the
//! seeded mini-workspaces under `tests/fixtures/` and pin the exact
//! diagnostics, summary counts, and exit codes — one violation per rule,
//! a clean counterpart for each, allowlist suppression, stale-entry
//! failure, and configuration-error handling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(root: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rtm-lint"))
        .arg("--root")
        .arg(fixture(root))
        .args(extra)
        .output()
        .expect("rtm-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Asserts the bad tree reports exactly one diagnostic with the given
/// prefix and the clean counterpart reports nothing.
fn assert_rule(dir: &str, expected_prefix: &str) {
    let bad = run(&format!("{dir}/bad"), &["--no-allowlist"]);
    assert_eq!(bad.status.code(), Some(1), "bad tree must exit 1");
    let text = stdout(&bad);
    let mut lines = text.lines();
    let diag = lines.next().expect("one diagnostic line");
    assert!(
        diag.starts_with(expected_prefix),
        "expected `{expected_prefix}`, got `{diag}`"
    );
    let summary = lines.next().expect("summary line");
    assert!(
        summary.starts_with("rtm-lint: 1 files, 1 findings (0 allowlisted, 1 reported)"),
        "unexpected summary: {summary}"
    );
    assert_eq!(lines.next(), None, "exactly two lines of output");

    let clean = run(&format!("{dir}/clean"), &["--no-allowlist"]);
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");
    assert!(
        stdout(&clean).starts_with("rtm-lint: 1 files, 0 findings"),
        "clean tree must report nothing"
    );
}

#[test]
fn plan_discipline_diagnostic_and_exit_code() {
    assert_rule(
        "plan_discipline",
        "crates/app/src/lib.rs:5:17: [plan-discipline] direct `load()` call outside \
         rtm-core bypasses the plan-reuse pipeline; route it through `load_with_plan`",
    );
}

#[test]
fn epoch_discipline_diagnostic_and_exit_code() {
    assert_rule(
        "epoch_discipline",
        "crates/core/src/manager.rs:5:20: [epoch-discipline] `fn evict` mutates the \
         arena (`.arena.release()`) but never calls `bump_epoch`",
    );
}

#[test]
fn shard_locality_diagnostic_and_exit_code() {
    assert_rule(
        "shard_locality",
        "crates/app/src/lib.rs:5:22: [shard-locality] interior mutability (`Cell`)",
    );
}

#[test]
fn determinism_diagnostic_and_exit_code() {
    assert_rule(
        "determinism",
        "crates/app/src/lib.rs:4:37: [determinism] `HashMap` iteration order is \
         nondeterministic",
    );
}

#[test]
fn obs_split_wall_clock_in_event_payload_is_flagged() {
    // The observability split: wall clock may live only in rtm-obs's
    // profiler module (via allowlist); an `Instant` in an event payload
    // is a determinism finding that points at the profiler instead.
    assert_rule(
        "obs_split",
        "crates/app/src/lib.rs:10:24: [determinism] wall-clock (`Instant`) near \
         counter-gated paths threatens the byte-exact CI baseline; route timing \
         through rtm-obs's phase profiler/Stopwatch",
    );
}

#[test]
fn panic_hygiene_diagnostic_and_exit_code() {
    assert_rule(
        "panic_hygiene",
        "crates/app/src/lib.rs:5:17: [panic-hygiene] `.unwrap()` in library code",
    );
}

#[test]
fn allowlist_suppresses_justified_finding() {
    // The fixture's own lint-allow.toml (picked up from --root) carries a
    // justified entry for the seeded Cell: finding counted, not reported.
    let out = run("allowlisted", &[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        stdout(&out).starts_with("rtm-lint: 1 files, 1 findings (1 allowlisted, 0 reported)"),
        "suppressed finding must still be counted: {}",
        stdout(&out)
    );

    // Without the allowlist the same tree fails — the suppression is the
    // allowlist's doing, not the rule going blind.
    let out = run("allowlisted", &["--no-allowlist"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let out = run("stale", &[]);
    assert_eq!(out.status.code(), Some(1), "stale entries are failures");
    let text = stdout(&out);
    assert!(
        text.contains("stale [[allow]] entry (panic-hygiene in crates/app/src/lib.rs)"),
        "stale entry must be named: {text}"
    );
}

#[test]
fn missing_reason_is_a_config_error() {
    let out = run("badconfig", &[]);
    assert_eq!(out.status.code(), Some(2), "config errors exit 2");
    let err = String::from_utf8(out.stderr.clone()).expect("utf-8 stderr");
    assert!(
        err.contains("has no `reason`"),
        "must demand a justification: {err}"
    );
}
