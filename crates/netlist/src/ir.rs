//! The structural netlist intermediate representation.

use crate::error::NetlistError;
use std::fmt;

/// Identifier of one node within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index into the node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Combinational gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// N-ary AND (≥1 fan-in).
    And,
    /// N-ary OR (≥1 fan-in).
    Or,
    /// N-ary NAND (≥1 fan-in).
    Nand,
    /// N-ary NOR (≥1 fan-in).
    Nor,
    /// N-ary XOR (≥1 fan-in).
    Xor,
    /// N-ary XNOR (≥1 fan-in).
    Xnor,
    /// Inverter (exactly 1 fan-in).
    Not,
    /// Buffer (exactly 1 fan-in).
    Buf,
    /// 2:1 multiplexer: fan-in `[sel, a, b]`, output `sel ? b : a`.
    Mux,
    /// Constant (no fan-in).
    Const(bool),
}

impl GateKind {
    /// Evaluates the gate on the fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len()` violates the gate's arity (validated
    /// netlists never do).
    pub fn eval(self, vals: &[bool]) -> bool {
        match self {
            GateKind::And => vals.iter().all(|v| *v),
            GateKind::Or => vals.iter().any(|v| *v),
            GateKind::Nand => !vals.iter().all(|v| *v),
            GateKind::Nor => !vals.iter().any(|v| *v),
            GateKind::Xor => vals.iter().fold(false, |a, v| a ^ v),
            GateKind::Xnor => !vals.iter().fold(false, |a, v| a ^ v),
            GateKind::Not => !vals[0],
            GateKind::Buf => vals[0],
            GateKind::Mux => {
                if vals[0] {
                    vals[2]
                } else {
                    vals[1]
                }
            }
            GateKind::Const(b) => b,
        }
    }

    /// Arity constraint as (min, max) fan-ins.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Not | GateKind::Buf => (1, 1),
            GateKind::Mux => (3, 3),
            GateKind::Const(_) => (0, 0),
            _ => (1, usize::MAX),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Const(b) => write!(f, "const{}", u8::from(*b)),
            k => write!(f, "{}", format!("{k:?}").to_lowercase()),
        }
    }
}

/// One node of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input.
    Input {
        /// Port name.
        name: String,
    },
    /// A combinational gate.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Fan-in node ids.
        fanin: Vec<NodeId>,
    },
    /// An edge-triggered flip-flop. Its *output* is this node's value.
    Ff {
        /// Data input (must be wired before validation).
        d: Option<NodeId>,
        /// Optional clock-enable input (`None` = free-running).
        ce: Option<NodeId>,
        /// Power-up value.
        init: bool,
    },
    /// A transparent latch (asynchronous circuit class).
    Latch {
        /// Data input.
        d: Option<NodeId>,
        /// Enable input (transparent while high).
        en: Option<NodeId>,
        /// Power-up value.
        init: bool,
    },
}

impl NodeKind {
    /// True for FFs and latches.
    pub fn is_sequential(&self) -> bool {
        matches!(self, NodeKind::Ff { .. } | NodeKind::Latch { .. })
    }
}

/// A structural netlist.
///
/// See the [crate-level example](crate) for building one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<NodeKind>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Netlist {
    /// An empty netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()]
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs (name, driver), in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(NodeKind::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a combinational gate.
    pub fn add_gate(&mut self, kind: GateKind, fanin: &[NodeId]) -> NodeId {
        self.push(NodeKind::Gate {
            kind,
            fanin: fanin.to_vec(),
        })
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.add_gate(GateKind::Const(value), &[])
    }

    /// Adds a flip-flop; wire its inputs now or later with
    /// [`Netlist::set_ff_input`] (needed for feedback).
    pub fn add_ff_ce(&mut self, d: Option<NodeId>, ce: Option<NodeId>, init: bool) -> NodeId {
        self.push(NodeKind::Ff { d, ce, init })
    }

    /// Adds a free-running flip-flop with its data input wired.
    pub fn add_ff(&mut self, d: NodeId, init: bool) -> NodeId {
        self.add_ff_ce(Some(d), None, init)
    }

    /// Adds a transparent latch.
    pub fn add_latch(&mut self, d: Option<NodeId>, en: Option<NodeId>, init: bool) -> NodeId {
        self.push(NodeKind::Latch { d, en, init })
    }

    /// (Re)wires a flip-flop's data and clock-enable inputs.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop.
    pub fn set_ff_input(&mut self, ff: NodeId, d: NodeId, ce: Option<NodeId>) {
        match &mut self.nodes[ff.index()] {
            NodeKind::Ff {
                d: slot,
                ce: ce_slot,
                ..
            } => {
                *slot = Some(d);
                *ce_slot = ce;
            }
            other => panic!("{ff} is not a flip-flop: {other:?}"),
        }
    }

    /// (Re)wires a latch's data and enable inputs.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a latch.
    pub fn set_latch_input(&mut self, latch: NodeId, d: NodeId, en: NodeId) {
        match &mut self.nodes[latch.index()] {
            NodeKind::Latch {
                d: slot,
                en: en_slot,
                ..
            } => {
                *slot = Some(d);
                *en_slot = Some(en);
            }
            other => panic!("{latch} is not a latch: {other:?}"),
        }
    }

    /// Declares a primary output driven by `src`.
    pub fn add_output(&mut self, name: impl Into<String>, src: NodeId) {
        self.outputs.push((name.into(), src));
    }

    /// The fan-in ids a node reads combinationally (storage outputs are
    /// cycle boundaries, so FFs/latches report none here).
    pub fn comb_fanin(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id) {
            NodeKind::Gate { fanin, .. } => fanin.clone(),
            _ => Vec::new(),
        }
    }

    /// The data/control inputs of a storage node.
    pub fn storage_fanin(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id) {
            NodeKind::Ff { d, ce, .. } => d.iter().chain(ce.iter()).copied().collect(),
            NodeKind::Latch { d, en, .. } => d.iter().chain(en.iter()).copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Checks structural sanity: no dangling references, arities, wired
    /// storage, and an acyclic combinational part.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.nodes.len() as u32;
        let check = |node: u32, target: NodeId| {
            if target.0 >= n {
                Err(NetlistError::DanglingRef {
                    node,
                    target: target.0,
                })
            } else {
                Ok(())
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let i = i as u32;
            match node {
                NodeKind::Input { .. } => {}
                NodeKind::Gate { kind, fanin } => {
                    for f in fanin {
                        check(i, *f)?;
                    }
                    let (lo, hi) = kind.arity();
                    if fanin.len() < lo || fanin.len() > hi {
                        return Err(NetlistError::BadArity {
                            node: i,
                            expected: if lo == hi {
                                format!("exactly {lo}")
                            } else {
                                format!("at least {lo}")
                            },
                            actual: fanin.len(),
                        });
                    }
                }
                NodeKind::Ff { d, ce, .. } => {
                    let d = d.ok_or(NetlistError::UnwiredStorage { node: i })?;
                    check(i, d)?;
                    if let Some(ce) = ce {
                        check(i, *ce)?;
                    }
                }
                NodeKind::Latch { d, en, .. } => {
                    let d = d.ok_or(NetlistError::UnwiredStorage { node: i })?;
                    check(i, d)?;
                    let en = en.ok_or(NetlistError::UnwiredStorage { node: i })?;
                    check(i, en)?;
                }
            }
        }
        for (_, out) in &self.outputs {
            check(u32::MAX, *out).map_err(|_| NetlistError::DanglingRef {
                node: u32::MAX,
                target: out.0,
            })?;
        }
        self.topo_order()?;
        Ok(())
    }

    /// Topological order of the combinational gates (inputs and storage
    /// outputs are sources).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if gates form a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut order = Vec::new();
        // Iterative DFS to avoid stack overflow on deep netlists.
        for start in 0..self.nodes.len() {
            if marks[start] != Mark::White {
                continue;
            }
            if !matches!(self.nodes[start], NodeKind::Gate { .. }) {
                marks[start] = Mark::Black;
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            marks[start] = Mark::Grey;
            while let Some((node, child)) = stack.pop() {
                let fanin = match &self.nodes[node] {
                    NodeKind::Gate { fanin, .. } => fanin,
                    _ => unreachable!("only gates are pushed"),
                };
                if child < fanin.len() {
                    stack.push((node, child + 1));
                    let next = fanin[child].index();
                    match marks[next] {
                        Mark::White => {
                            if matches!(self.nodes[next], NodeKind::Gate { .. }) {
                                marks[next] = Mark::Grey;
                                stack.push((next, 0));
                            } else {
                                marks[next] = Mark::Black;
                            }
                        }
                        Mark::Grey => {
                            return Err(NetlistError::CombinationalCycle { node: next as u32 })
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks[node] = Mark::Black;
                    order.push(NodeId(node as u32));
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(Or.eval(&[false, true]));
        assert!(Nand.eval(&[true, false]));
        assert!(!Nor.eval(&[false, true]));
        assert!(Xor.eval(&[true, true, true]));
        assert!(!Xor.eval(&[true, true]));
        assert!(Xnor.eval(&[true, true]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
        assert!(Mux.eval(&[false, true, false]), "sel=0 picks a");
        assert!(Mux.eval(&[true, false, true]), "sel=1 picks b");
        assert!(Const(true).eval(&[]));
    }

    #[test]
    fn build_and_validate_simple() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]);
        let q = n.add_ff(g, false);
        n.add_output("q", q);
        assert!(n.validate().is_ok());
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn unwired_ff_rejected() {
        let mut n = Netlist::new("t");
        let _ = n.add_ff_ce(None, None, false);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UnwiredStorage { .. })
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let _ = n.add_gate(GateKind::Not, &[a, a]);
        assert!(matches!(n.validate(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn dangling_ref_rejected() {
        let mut n = Netlist::new("t");
        let _ = n.add_gate(GateKind::Buf, &[NodeId(99)]);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingRef { .. })
        ));
    }

    #[test]
    fn combinational_cycle_rejected_but_ff_feedback_ok() {
        // FF feedback is fine.
        let mut ok = Netlist::new("ok");
        let q = ok.add_ff_ce(None, None, false);
        let inv = ok.add_gate(GateKind::Not, &[q]);
        ok.set_ff_input(q, inv, None);
        assert!(ok.validate().is_ok());

        // A purely combinational loop is not. Build it by rewiring.
        let mut bad = Netlist::new("bad");
        let a = bad.add_input("a");
        let g1 = bad.add_gate(GateKind::Buf, &[a]);
        let g2 = bad.add_gate(GateKind::Buf, &[g1]);
        // Introduce a cycle g1 <- g2 manually.
        if let NodeKind::Gate { fanin, .. } = &mut bad.nodes[g1.index()] {
            fanin[0] = g2;
        }
        assert!(matches!(
            bad.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Not, &[a]);
        let g2 = n.add_gate(GateKind::Not, &[g1]);
        let g3 = n.add_gate(GateKind::And, &[g1, g2]);
        let order = n.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
        assert!(pos(g1) < pos(g3));
        assert_eq!(order.len(), 3, "only gates appear in the order");
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut n = Netlist::new("deep");
        let mut prev = n.add_input("a");
        for _ in 0..200_000 {
            prev = n.add_gate(GateKind::Not, &[prev]);
        }
        n.add_output("o", prev);
        assert!(n.validate().is_ok());
    }
}
