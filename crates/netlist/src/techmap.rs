//! Technology mapping: netlist → 4-input LUT cells.
//!
//! The mapper performs the two steps a minimal FPGA flow needs:
//!
//! 1. **decomposition** — wide gates are broken into trees of ≤4-input
//!    gates;
//! 2. **covering** — every remaining gate becomes one LUT cell; storage
//!    elements become cells with a pass-through LUT and the appropriate
//!    storage/clocking configuration.
//!
//! No packing optimisation is attempted: cell count is a few × the gate
//! count, which only makes the relocation experiments *harder* (more CLBs
//! to move), never easier.

use crate::error::NetlistError;
use crate::ir::{GateKind, Netlist, NodeId, NodeKind};
use rtm_fpga::lut::{Lut, LUT_INPUTS};
use rtm_fpga::storage::{ClockingClass, StorageKind};

/// Where a mapped cell input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellSrc {
    /// Primary input `i` of the design.
    Input(usize),
    /// Output of mapped cell `i`.
    Cell(usize),
}

/// One mapped 4-LUT logic cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedCell {
    /// The LUT truth table over `inputs` (input `i` is LUT address bit
    /// `i`; unused address bits are don't-care).
    pub lut: Lut,
    /// LUT inputs, at most 4.
    pub inputs: Vec<CellSrc>,
    /// Storage element kind.
    pub storage: StorageKind,
    /// Clocking class, determining the relocation procedure required.
    pub clocking: ClockingClass,
    /// If true the cell output is the storage output (Q), else the LUT.
    pub registered_output: bool,
    /// Clock-enable (FF) or latch-enable source, if gated/asynchronous.
    pub ce: Option<CellSrc>,
    /// Power-up storage value.
    pub init: bool,
}

impl MappedCell {
    fn comb(lut: Lut, inputs: Vec<CellSrc>) -> Self {
        MappedCell {
            lut,
            inputs,
            storage: StorageKind::None,
            clocking: ClockingClass::FreeRunning,
            registered_output: false,
            ce: None,
            init: false,
        }
    }
}

/// A technology-mapped design: LUT cells referencing primary inputs and
/// one another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedNetlist {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub n_inputs: usize,
    /// The cells.
    pub cells: Vec<MappedCell>,
    /// Primary outputs (name, source).
    pub outputs: Vec<(String, CellSrc)>,
    /// Topological order of the cells' combinational evaluation.
    comb_order: Vec<usize>,
}

impl MappedNetlist {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the design has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of sequential cells.
    pub fn ff_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.storage.is_sequential())
            .count()
    }

    /// The topological evaluation order of the cells.
    pub fn comb_order(&self) -> &[usize] {
        &self.comb_order
    }

    /// The dominant clocking class: asynchronous if any latch is present,
    /// else gated-clock if any gated FF, else free-running.
    pub fn clocking_class(&self) -> ClockingClass {
        let mut class = ClockingClass::FreeRunning;
        for c in &self.cells {
            match c.clocking {
                ClockingClass::Asynchronous => return ClockingClass::Asynchronous,
                ClockingClass::GatedClock => class = ClockingClass::GatedClock,
                ClockingClass::FreeRunning => {}
            }
        }
        class
    }
}

/// Maps a validated netlist onto 4-input LUT cells.
///
/// # Errors
///
/// Propagates validation errors; returns
/// [`NetlistError::CombinationalCycle`] if decomposition exposes one
/// (cannot happen for valid inputs).
pub fn map_to_luts(netlist: &Netlist) -> Result<MappedNetlist, NetlistError> {
    netlist.validate()?;
    // Step 1: decompose wide gates into a ≤4-input equivalent netlist.
    let narrow = decompose(netlist);

    // Step 2: one cell per non-input node.
    let mut node_to_src: Vec<Option<CellSrc>> = vec![None; narrow.len()];
    let mut input_count = 0usize;
    let mut cell_count = 0usize;
    for (i, node) in narrow.nodes().iter().enumerate() {
        match node {
            NodeKind::Input { .. } => {
                node_to_src[i] = Some(CellSrc::Input(input_count));
                input_count += 1;
            }
            _ => {
                node_to_src[i] = Some(CellSrc::Cell(cell_count));
                cell_count += 1;
            }
        }
    }
    let src_of = |id: NodeId| node_to_src[id.index()].expect("all nodes assigned");

    let mut cells: Vec<MappedCell> = Vec::with_capacity(cell_count);
    for (i, node) in narrow.nodes().iter().enumerate() {
        match node {
            NodeKind::Input { .. } => {}
            NodeKind::Gate { kind, fanin } => {
                if fanin.len() > LUT_INPUTS {
                    return Err(NetlistError::MapArity { node: i as u32 });
                }
                let k = *kind;
                let n = fanin.len();
                let lut = Lut::from_fn(|addr| {
                    let vals: Vec<bool> = (0..n).map(|j| addr[j]).collect();
                    k.eval(&vals)
                });
                let inputs = fanin.iter().map(|f| src_of(*f)).collect();
                cells.push(MappedCell::comb(lut, inputs));
            }
            NodeKind::Ff { d, ce, init } => {
                let d = d.expect("validated");
                let gated = ce.is_some();
                cells.push(MappedCell {
                    lut: Lut::passthrough(0),
                    inputs: vec![src_of(d)],
                    storage: StorageKind::FlipFlop,
                    clocking: if gated {
                        ClockingClass::GatedClock
                    } else {
                        ClockingClass::FreeRunning
                    },
                    registered_output: true,
                    ce: ce.map(src_of),
                    init: *init,
                });
            }
            NodeKind::Latch { d, en, init } => {
                let d = d.expect("validated");
                let en = en.expect("validated");
                cells.push(MappedCell {
                    lut: Lut::passthrough(0),
                    inputs: vec![src_of(d)],
                    storage: StorageKind::Latch,
                    clocking: ClockingClass::Asynchronous,
                    registered_output: true,
                    ce: Some(src_of(en)),
                    init: *init,
                });
            }
        }
    }

    let outputs = narrow
        .outputs()
        .iter()
        .map(|(n, id)| (n.clone(), src_of(*id)))
        .collect();
    let comb_order = comb_topo_order(&cells)?;
    Ok(MappedNetlist {
        name: narrow.name().to_string(),
        n_inputs: input_count,
        cells,
        outputs,
        comb_order,
    })
}

/// Rebuilds the netlist with every gate fan-in ≤ 4 by tree decomposition.
fn decompose(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];

    // First pass: create placeholders so feedback references resolve.
    for (i, node) in netlist.nodes().iter().enumerate() {
        let id = match node {
            NodeKind::Input { name } => out.add_input(name.clone()),
            NodeKind::Ff { init, .. } => out.add_ff_ce(None, None, *init),
            NodeKind::Latch { init, .. } => out.add_latch(None, None, *init),
            NodeKind::Gate { .. } => {
                // Gates are created in the second pass (they only reference
                // earlier nodes or storage placeholders). Reserve nothing.
                continue;
            }
        };
        map[i] = Some(id);
    }

    // Second pass: gates in original order (fan-ins reference originals
    // that are either already-mapped or storage placeholders).
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let NodeKind::Gate { kind, fanin } = node {
            let srcs: Vec<NodeId> = fanin
                .iter()
                .map(|f| map[f.index()].expect("fanin resolved"))
                .collect();
            let id = build_narrow_gate(&mut out, *kind, &srcs);
            map[i] = Some(id);
        }
    }

    // Third pass: wire storage inputs.
    for (i, node) in netlist.nodes().iter().enumerate() {
        match node {
            NodeKind::Ff { d, ce, .. } => {
                let ff = map[i].unwrap();
                let d = map[d.expect("validated").index()].unwrap();
                let ce = ce.map(|c| map[c.index()].unwrap());
                out.set_ff_input(ff, d, ce);
            }
            NodeKind::Latch { d, en, .. } => {
                let latch = map[i].unwrap();
                let d = map[d.expect("validated").index()].unwrap();
                let en = map[en.expect("validated").index()].unwrap();
                out.set_latch_input(latch, d, en);
            }
            _ => {}
        }
    }

    for (name, id) in netlist.outputs() {
        out.add_output(name.clone(), map[id.index()].unwrap());
    }
    out
}

/// Emits `kind` over `srcs` as a tree of ≤4-input gates.
fn build_narrow_gate(out: &mut Netlist, kind: GateKind, srcs: &[NodeId]) -> NodeId {
    if srcs.len() <= LUT_INPUTS {
        return out.add_gate(kind, srcs);
    }
    // Reduce with the associative core of the gate, applying the final
    // inversion (NAND/NOR/XNOR) only at the root.
    let (assoc, invert) = match kind {
        GateKind::And => (GateKind::And, false),
        GateKind::Nand => (GateKind::And, true),
        GateKind::Or => (GateKind::Or, false),
        GateKind::Nor => (GateKind::Or, true),
        GateKind::Xor => (GateKind::Xor, false),
        GateKind::Xnor => (GateKind::Xor, true),
        // Non-associative kinds never exceed 4 inputs.
        _ => unreachable!("gate kind {kind} cannot be wide"),
    };
    let mut layer: Vec<NodeId> = srcs.to_vec();
    while layer.len() > LUT_INPUTS {
        let mut next = Vec::with_capacity(layer.len().div_ceil(LUT_INPUTS));
        for chunk in layer.chunks(LUT_INPUTS) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(out.add_gate(assoc, chunk));
            }
        }
        layer = next;
    }
    let root = out.add_gate(assoc, &layer);
    if invert {
        out.add_gate(GateKind::Not, &[root])
    } else {
        root
    }
}

/// Topological order for combinational evaluation of the mapped cells.
fn comb_topo_order(cells: &[MappedCell]) -> Result<Vec<usize>, NetlistError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let comb_deps = |i: usize| -> Vec<usize> {
        // Registered outputs are state: not combinational dependencies.
        cells[i]
            .inputs
            .iter()
            .chain(cells[i].ce.iter())
            .filter_map(|s| match s {
                CellSrc::Cell(j) if !cells[*j].registered_output => Some(*j),
                _ => None,
            })
            .collect()
    };
    let mut marks = vec![Mark::White; cells.len()];
    let mut order = Vec::with_capacity(cells.len());
    for start in 0..cells.len() {
        if marks[start] != Mark::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        marks[start] = Mark::Grey;
        while let Some((node, child)) = stack.pop() {
            let deps = comb_deps(node);
            if child < deps.len() {
                stack.push((node, child + 1));
                let next = deps[child];
                match marks[next] {
                    Mark::White => {
                        marks[next] = Mark::Grey;
                        stack.push((next, 0));
                    }
                    Mark::Grey => {
                        return Err(NetlistError::CombinationalCycle { node: next as u32 })
                    }
                    Mark::Black => {}
                }
            } else {
                marks[node] = Mark::Black;
                order.push(node);
            }
        }
    }
    Ok(order)
}

/// Cycle-accurate simulator of a mapped netlist — used to prove the
/// mapping is behaviourally equivalent to the golden model.
#[derive(Debug, Clone)]
pub struct MappedSim<'a> {
    design: &'a MappedNetlist,
    lut_val: Vec<bool>,
    q: Vec<bool>,
    cycle: u64,
}

impl<'a> MappedSim<'a> {
    /// A simulator with storage at init values.
    pub fn new(design: &'a MappedNetlist) -> Self {
        let q = design.cells.iter().map(|c| c.init).collect();
        MappedSim {
            design,
            lut_val: vec![false; design.cells.len()],
            q,
            cycle: 0,
        }
    }

    /// Clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn src_value(&self, src: CellSrc, inputs: &[bool]) -> bool {
        match src {
            CellSrc::Input(i) => inputs[i],
            CellSrc::Cell(i) => self.cell_output(i),
        }
    }

    /// The visible output of cell `i`.
    pub fn cell_output(&self, i: usize) -> bool {
        if self.design.cells[i].registered_output {
            self.q[i]
        } else {
            self.lut_val[i]
        }
    }

    /// The stored value of cell `i` (meaningful for sequential cells).
    pub fn cell_state(&self, i: usize) -> bool {
        self.q[i]
    }

    /// Primary output values.
    pub fn outputs(&self, inputs: &[bool]) -> Vec<bool> {
        self.design
            .outputs
            .iter()
            .map(|(_, s)| self.src_value(*s, inputs))
            .collect()
    }

    /// One clock cycle: settle LUTs, then clock storage.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] for wrong input width.
    pub fn step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.design.n_inputs {
            return Err(NetlistError::InputWidthMismatch {
                expected: self.design.n_inputs,
                actual: inputs.len(),
            });
        }
        for &i in &self.design.comb_order {
            let cell = &self.design.cells[i];
            let mut addr = [false; LUT_INPUTS];
            for (p, src) in cell.inputs.iter().enumerate() {
                addr[p] = self.src_value(*src, inputs);
            }
            self.lut_val[i] = cell.lut.eval(addr);
        }
        // Simultaneous storage update.
        let mut updates = Vec::new();
        for (i, cell) in self.design.cells.iter().enumerate() {
            if !cell.storage.is_sequential() {
                continue;
            }
            let enabled = match cell.storage {
                StorageKind::FlipFlop => cell.ce.map(|s| self.src_value(s, inputs)).unwrap_or(true),
                StorageKind::Latch => cell.ce.map(|s| self.src_value(s, inputs)).unwrap_or(false),
                StorageKind::None => false,
            };
            if enabled {
                updates.push((i, self.lut_val[i]));
            }
        }
        for (i, v) in updates {
            self.q[i] = v;
        }
        // Post-edge combinational re-settle (matches GoldenSim).
        for &i in &self.design.comb_order {
            let cell = &self.design.cells[i];
            let mut addr = [false; LUT_INPUTS];
            for (p, src) in cell.inputs.iter().enumerate() {
                addr[p] = self.src_value(*src, inputs);
            }
            self.lut_val[i] = cell.lut.eval(addr);
        }
        self.cycle += 1;
        Ok(self.outputs(inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenSim;
    use crate::ir::Netlist;
    use proptest::prelude::*;

    fn check_equivalence(netlist: &Netlist, stim: Vec<Vec<bool>>) {
        let mapped = map_to_luts(netlist).unwrap();
        let mut gold = GoldenSim::new(netlist);
        let mut msim = MappedSim::new(&mapped);
        for inputs in stim {
            gold.step(&inputs).unwrap();
            let mapped_out = msim.step(&inputs).unwrap();
            assert_eq!(
                mapped_out,
                gold.outputs(),
                "divergence at cycle {}",
                gold.cycle()
            );
        }
    }

    #[test]
    fn wide_and_gate_decomposes_and_matches() {
        let mut n = Netlist::new("wide");
        let ins: Vec<_> = (0..11).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(GateKind::And, &ins);
        n.add_output("o", g);
        let mapped = map_to_luts(&n).unwrap();
        for c in &mapped.cells {
            assert!(c.inputs.len() <= 4);
        }
        let all_true = vec![vec![true; 11]];
        check_equivalence(&n, all_true);
        let mut one_false = vec![true; 11];
        one_false[7] = false;
        check_equivalence(&n, vec![one_false]);
    }

    #[test]
    fn wide_nor_inversion_at_root() {
        let mut n = Netlist::new("nor");
        let ins: Vec<_> = (0..9).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(GateKind::Nor, &ins);
        n.add_output("o", g);
        check_equivalence(&n, vec![vec![false; 9], vec![true; 9]]);
    }

    #[test]
    fn counter_equivalence_over_time() {
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let q0 = n.add_ff_ce(None, None, false);
        let q1 = n.add_ff_ce(None, None, false);
        let d0 = n.add_gate(GateKind::Not, &[q0]);
        let d1 = n.add_gate(GateKind::Xor, &[q1, q0]);
        n.set_ff_input(q0, d0, Some(en));
        n.set_ff_input(q1, d1, Some(en));
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        let stim = vec![
            vec![true],
            vec![true],
            vec![false],
            vec![true],
            vec![false],
            vec![true],
            vec![true],
        ];
        check_equivalence(&n, stim);
    }

    #[test]
    fn latch_design_equivalence() {
        let mut n = Netlist::new("latched");
        let d = n.add_input("d");
        let en = n.add_input("en");
        let q = n.add_latch(None, None, false);
        n.set_latch_input(q, d, en);
        let o = n.add_gate(GateKind::Not, &[q]);
        n.add_output("o", o);
        let mapped = map_to_luts(&n).unwrap();
        assert_eq!(
            mapped.clocking_class(),
            rtm_fpga::storage::ClockingClass::Asynchronous
        );
        check_equivalence(
            &n,
            vec![
                vec![true, true],
                vec![false, false],
                vec![false, true],
                vec![true, false],
            ],
        );
    }

    #[test]
    fn gated_class_detected() {
        let mut n = Netlist::new("g");
        let ce = n.add_input("ce");
        let d = n.add_input("d");
        let q = n.add_ff_ce(Some(d), Some(ce), false);
        n.add_output("q", q);
        let mapped = map_to_luts(&n).unwrap();
        assert_eq!(
            mapped.clocking_class(),
            rtm_fpga::storage::ClockingClass::GatedClock
        );
        assert_eq!(mapped.ff_count(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_stimulus_equivalence(seed in 0u64..1000, steps in 1usize..20) {
            // Small mixed design driven with pseudo-random stimulus.
            let mut n = Netlist::new("p");
            let a = n.add_input("a");
            let b = n.add_input("b");
            let c = n.add_input("c");
            let g1 = n.add_gate(GateKind::Xor, &[a, b]);
            let g2 = n.add_gate(GateKind::Mux, &[c, g1, a]);
            let q = n.add_ff_ce(None, None, false);
            let g3 = n.add_gate(GateKind::And, &[g2, q]);
            let d = n.add_gate(GateKind::Or, &[g3, b]);
            n.set_ff_input(q, d, Some(c));
            n.add_output("x", g3);
            n.add_output("q", q);

            let mut s = seed;
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 33) & 1 == 1
            };
            let stim: Vec<Vec<bool>> = (0..steps).map(|_| vec![rnd(), rnd(), rnd()]).collect();
            check_equivalence(&n, stim);
        }
    }
}
