//! Error type for netlist construction and validation.

use std::fmt;

/// Errors raised while building, validating or mapping netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node referenced an id that does not exist.
    DanglingRef {
        /// The referencing node.
        node: u32,
        /// The missing id.
        target: u32,
    },
    /// A gate has the wrong number of fan-ins for its kind.
    BadArity {
        /// The offending node.
        node: u32,
        /// What the gate kind requires (textual, e.g. "exactly 1").
        expected: String,
        /// What was provided.
        actual: usize,
    },
    /// A storage element was left without a data input.
    UnwiredStorage {
        /// The offending node.
        node: u32,
    },
    /// The combinational part contains a cycle (through the listed node).
    CombinationalCycle {
        /// A node on the cycle.
        node: u32,
    },
    /// Simulation was driven with the wrong number of primary inputs.
    InputWidthMismatch {
        /// Inputs the netlist declares.
        expected: usize,
        /// Inputs provided.
        actual: usize,
    },
    /// Technology mapping hit a gate with more than 4 inputs after
    /// decomposition (internal invariant violation).
    MapArity {
        /// The offending node.
        node: u32,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingRef { node, target } => {
                write!(f, "node {node} references missing node {target}")
            }
            NetlistError::BadArity {
                node,
                expected,
                actual,
            } => {
                write!(f, "node {node} has {actual} fan-ins, expected {expected}")
            }
            NetlistError::UnwiredStorage { node } => {
                write!(f, "storage node {node} has no data input")
            }
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::InputWidthMismatch { expected, actual } => {
                write!(f, "expected {expected} primary inputs, got {actual}")
            }
            NetlistError::MapArity { node } => {
                write!(f, "node {node} still exceeds 4 inputs after decomposition")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            NetlistError::DanglingRef { node: 1, target: 9 },
            NetlistError::BadArity {
                node: 1,
                expected: "exactly 1".into(),
                actual: 3,
            },
            NetlistError::UnwiredStorage { node: 2 },
            NetlistError::CombinationalCycle { node: 3 },
            NetlistError::InputWidthMismatch {
                expected: 2,
                actual: 1,
            },
            NetlistError::MapArity { node: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
