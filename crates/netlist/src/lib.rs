//! # rtm-netlist
//!
//! Structural netlists, a cycle-accurate golden-model simulator, a 4-LUT
//! technology mapper, and benchmark-circuit generators.
//!
//! The paper validates its relocation procedure on "a group of circuits
//! from the ITC'99 Benchmark Circuits from the Politécnico di Torino
//! implemented in a Virtex XCV200" (§2). The originals are VHDL; this
//! crate provides behaviourally-equivalent *synthetic* FSM circuits with
//! the published flip-flop/gate counts ([`itc99`]), plus a parameterised
//! random circuit generator ([`random`]) for property tests and sweeps.
//!
//! The flow mirrors a real implementation flow at the granularity the
//! experiments need:
//!
//! 1. build or generate a [`Netlist`] (gates, FFs, latches),
//! 2. map it to 4-input LUT cells with [`techmap::map_to_luts`],
//! 3. hand the [`techmap::MappedNetlist`] to `rtm-sim`'s placer/router to
//!    implement it on the device model,
//! 4. compare live device behaviour against [`GoldenSim`] — the
//!    transparency oracle used throughout the relocation experiments.
//!
//! ## Example
//!
//! ```
//! use rtm_netlist::{Netlist, GateKind, GoldenSim};
//!
//! // A 2-bit counter with enable.
//! let mut n = Netlist::new("counter2");
//! let en = n.add_input("en");
//! let q0 = n.add_ff_ce(None, None, false); // placeholder D, CE wired below
//! let q1 = n.add_ff_ce(None, None, false);
//! let d0 = n.add_gate(GateKind::Not, &[q0]);
//! let carry = n.add_gate(GateKind::And, &[q0]);
//! let d1 = n.add_gate(GateKind::Xor, &[q1, carry]);
//! n.set_ff_input(q0, d0, Some(en));
//! n.set_ff_input(q1, d1, Some(en));
//! n.add_output("q0", q0);
//! n.add_output("q1", q1);
//! n.validate().unwrap();
//!
//! let mut sim = GoldenSim::new(&n);
//! sim.step(&[true]); // en=1: 00 -> 01
//! assert_eq!(sim.outputs(), vec![true, false]);
//! sim.step(&[false]); // en=0: holds
//! assert_eq!(sim.outputs(), vec![true, false]);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod golden;
pub mod ir;
pub mod itc99;
pub mod random;
pub mod stats;
pub mod techmap;

pub use error::NetlistError;
pub use golden::GoldenSim;
pub use ir::{GateKind, Netlist, NodeId, NodeKind};
