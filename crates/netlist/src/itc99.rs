//! Synthetic ITC'99-style benchmark circuits.
//!
//! The paper validates relocation on "circuits from the ITC'99 Benchmark
//! Circuits from the Politécnico di Torino implemented in a Virtex
//! XCV200" (§2), which "are purely synchronous with only one single-phase
//! clock signal". The originals are RT-level VHDL; building a VHDL
//! frontend is out of scope, so this module generates *synthetic
//! equivalents*: deterministic FSM-style circuits whose primary-input,
//! primary-output and flip-flop counts match the published b01–b15
//! characteristics, with combinational clouds of comparable size. The
//! relocation experiments only depend on these structural properties
//! (number and connectivity of live CLBs), not on the circuits' semantics.
//!
//! Every circuit is generated in two variants: the paper's free-running
//! class and a gated-clock class (clock-enable derived from an extra
//! input), so the Fig. 2 and Fig. 3 experiments can run the same suite.

use crate::ir::Netlist;
use crate::random::RandomCircuit;
use std::fmt;

/// Published structural characteristics of an ITC'99 circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Itc99Profile {
    /// Benchmark name.
    pub name: &'static str,
    /// Primary inputs (excluding clock/reset).
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// Approximate gate count of the synthesised circuit.
    pub gates: usize,
}

/// The ITC'99 suite subset used by the experiments (b01–b10, the sizes
/// that fit comfortably on an XCV200 alongside free space to relocate
/// into, plus the larger b11–b13 for stress runs).
pub const PROFILES: [Itc99Profile; 13] = [
    Itc99Profile {
        name: "b01",
        inputs: 2,
        outputs: 2,
        ffs: 5,
        gates: 45,
    },
    Itc99Profile {
        name: "b02",
        inputs: 1,
        outputs: 1,
        ffs: 4,
        gates: 25,
    },
    Itc99Profile {
        name: "b03",
        inputs: 4,
        outputs: 4,
        ffs: 30,
        gates: 150,
    },
    Itc99Profile {
        name: "b04",
        inputs: 11,
        outputs: 8,
        ffs: 66,
        gates: 480,
    },
    Itc99Profile {
        name: "b05",
        inputs: 1,
        outputs: 36,
        ffs: 34,
        gates: 608,
    },
    Itc99Profile {
        name: "b06",
        inputs: 2,
        outputs: 6,
        ffs: 9,
        gates: 56,
    },
    Itc99Profile {
        name: "b07",
        inputs: 1,
        outputs: 8,
        ffs: 49,
        gates: 420,
    },
    Itc99Profile {
        name: "b08",
        inputs: 9,
        outputs: 4,
        ffs: 21,
        gates: 168,
    },
    Itc99Profile {
        name: "b09",
        inputs: 1,
        outputs: 1,
        ffs: 28,
        gates: 159,
    },
    Itc99Profile {
        name: "b10",
        inputs: 11,
        outputs: 6,
        ffs: 17,
        gates: 189,
    },
    Itc99Profile {
        name: "b11",
        inputs: 7,
        outputs: 6,
        ffs: 31,
        gates: 366,
    },
    Itc99Profile {
        name: "b12",
        inputs: 5,
        outputs: 6,
        ffs: 121,
        gates: 1000,
    },
    Itc99Profile {
        name: "b13",
        inputs: 10,
        outputs: 10,
        ffs: 53,
        gates: 339,
    },
];

/// Clocking variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Single free-running clock — the class the paper's ITC'99 runs use.
    #[default]
    FreeRunning,
    /// Clock-enable driven storage (Fig. 3 experiments).
    GatedClock,
    /// Transparent-latch storage (asynchronous class).
    Asynchronous,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::FreeRunning => "free",
            Variant::GatedClock => "gated",
            Variant::Asynchronous => "async",
        };
        f.write_str(s)
    }
}

/// Looks up a profile by name (`"b01"` … `"b13"`).
pub fn profile(name: &str) -> Option<Itc99Profile> {
    PROFILES.iter().find(|p| p.name == name).copied()
}

/// Generates the synthetic circuit for `profile` in the given variant.
///
/// Generation is deterministic: the same profile and variant always yield
/// the same netlist.
pub fn generate(profile: Itc99Profile, variant: Variant) -> Netlist {
    // Seed derived from the name so every benchmark is distinct but
    // reproducible.
    let seed = profile.name.bytes().fold(0xB99u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(b as u64)
    }) ^ match variant {
        Variant::FreeRunning => 0,
        Variant::GatedClock => 0x1000,
        Variant::Asynchronous => 0x2000,
    };
    let (gated_fraction, latch_fraction) = match variant {
        Variant::FreeRunning => (0.0, 0.0),
        Variant::GatedClock => (1.0, 0.0),
        Variant::Asynchronous => (0.0, 1.0),
    };
    let params = RandomCircuit {
        name: format!("{}_{variant}", profile.name),
        inputs: profile.inputs.max(1),
        outputs: profile.outputs.max(1),
        ffs: profile.ffs,
        gates: profile.gates,
        gated_fraction,
        latch_fraction,
        seed,
    };
    params.generate()
}

/// Generates the full free-running suite b01–b10 (the paper's experiment
/// set).
pub fn paper_suite() -> Vec<Netlist> {
    PROFILES[..10]
        .iter()
        .map(|p| generate(*p, Variant::FreeRunning))
        .collect()
}

/// Generates the gated-clock variants of b01–b10 (Fig. 3 experiments).
pub fn gated_suite() -> Vec<Netlist> {
    PROFILES[..10]
        .iter()
        .map(|p| generate(*p, Variant::GatedClock))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::GoldenSim;
    use crate::stats::NetlistStats;

    #[test]
    fn all_profiles_generate_valid_circuits() {
        for p in PROFILES {
            for v in [
                Variant::FreeRunning,
                Variant::GatedClock,
                Variant::Asynchronous,
            ] {
                let n = generate(p, v);
                n.validate()
                    .unwrap_or_else(|e| panic!("{} {v}: {e}", p.name));
            }
        }
    }

    #[test]
    fn sizes_match_published_profiles() {
        for p in PROFILES {
            let n = generate(p, Variant::FreeRunning);
            let s = NetlistStats::of(&n);
            assert_eq!(s.ffs, p.ffs, "{}", p.name);
            assert_eq!(s.gates, p.gates, "{}", p.name);
            assert_eq!(s.inputs, p.inputs.max(1), "{}", p.name);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(PROFILES[0], Variant::FreeRunning);
        let b = generate(PROFILES[0], Variant::FreeRunning);
        assert_eq!(a, b);
        let c = generate(PROFILES[0], Variant::GatedClock);
        assert_ne!(a, c, "variants differ");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile("b05").unwrap().ffs, 34);
        assert!(profile("b99").is_none());
    }

    #[test]
    fn paper_suite_is_b01_to_b10() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 10);
        assert_eq!(suite[0].name(), "b01_free");
        assert_eq!(suite[9].name(), "b10_free");
    }

    #[test]
    fn suite_circuits_simulate_100_cycles() {
        for n in paper_suite().iter().take(4) {
            let width = n.inputs().len();
            let mut sim = GoldenSim::new(n);
            for i in 0..100u64 {
                let inputs: Vec<bool> = (0..width).map(|b| (i >> (b % 60)) & 1 == 1).collect();
                sim.step(&inputs).unwrap();
            }
        }
    }
}
