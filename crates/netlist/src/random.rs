//! Parameterised random sequential circuit generation.
//!
//! Used by property tests (random relocation targets) and by the workload
//! sweeps in the benches. Generation is fully deterministic in the seed.

use crate::ir::{GateKind, Netlist, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`RandomCircuit::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCircuit {
    /// Circuit name.
    pub name: String,
    /// Primary inputs (≥1).
    pub inputs: usize,
    /// Primary outputs (≥1).
    pub outputs: usize,
    /// Flip-flops/latches.
    pub ffs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Fraction of storage elements that are clock-gated (0.0–1.0).
    pub gated_fraction: f64,
    /// Fraction of storage elements that are transparent latches.
    pub latch_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCircuit {
    fn default() -> Self {
        RandomCircuit {
            name: "random".into(),
            inputs: 4,
            outputs: 4,
            ffs: 8,
            gates: 32,
            gated_fraction: 0.0,
            latch_fraction: 0.0,
            seed: 1,
        }
    }
}

impl RandomCircuit {
    /// A free-running synchronous circuit of the given size.
    pub fn free_running(ffs: usize, gates: usize, seed: u64) -> Self {
        RandomCircuit {
            ffs,
            gates,
            seed,
            ..RandomCircuit::default()
        }
    }

    /// A gated-clock circuit (all storage gated).
    pub fn gated(ffs: usize, gates: usize, seed: u64) -> Self {
        RandomCircuit {
            ffs,
            gates,
            seed,
            gated_fraction: 1.0,
            ..RandomCircuit::default()
        }
    }

    /// An asynchronous (latch-based) circuit.
    pub fn asynchronous(latches: usize, gates: usize, seed: u64) -> Self {
        RandomCircuit {
            ffs: latches,
            gates,
            seed,
            latch_fraction: 1.0,
            ..RandomCircuit::default()
        }
    }

    /// Generates the netlist.
    ///
    /// The construction is sound by design: gates only reference earlier
    /// nodes (inputs, storage outputs, earlier gates), so the
    /// combinational part is acyclic; storage inputs are wired last and
    /// may reference any gate.
    pub fn generate(&self) -> Netlist {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut n = Netlist::new(self.name.clone());

        let inputs: Vec<NodeId> = (0..self.inputs.max(1))
            .map(|i| n.add_input(format!("i{i}")))
            .collect();

        let n_latches = (self.ffs as f64 * self.latch_fraction).round() as usize;
        let n_gated =
            ((self.ffs - n_latches.min(self.ffs)) as f64 * self.gated_fraction).round() as usize;
        let mut storage = Vec::with_capacity(self.ffs);
        for i in 0..self.ffs {
            let init = rng.gen_bool(0.5);
            if i < n_latches {
                storage.push(n.add_latch(None, None, init));
            } else {
                storage.push(n.add_ff_ce(None, None, init));
            }
        }

        // Pool of referencable signals grows as gates are added.
        let mut pool: Vec<NodeId> = inputs.iter().chain(storage.iter()).copied().collect();
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Mux,
        ];
        let mut gates = Vec::with_capacity(self.gates);
        for _ in 0..self.gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let (lo, hi) = kind.arity();
            let arity = if lo == hi {
                lo
            } else {
                rng.gen_range(2..=4usize)
            };
            let fanin: Vec<NodeId> = (0..arity)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let g = n.add_gate(kind, &fanin);
            pool.push(g);
            gates.push(g);
        }

        // Wire storage: D from any gate (or input if no gates), CE/EN from
        // the pool.
        let d_pool: &[NodeId] = if gates.is_empty() { &inputs } else { &gates };
        for (i, s) in storage.iter().enumerate() {
            let d = d_pool[rng.gen_range(0..d_pool.len())];
            if i < n_latches {
                let en = inputs[rng.gen_range(0..inputs.len())];
                n.set_latch_input(*s, d, en);
            } else if i < n_latches + n_gated {
                let ce = inputs[rng.gen_range(0..inputs.len())];
                n.set_ff_input(*s, d, Some(ce));
            } else {
                n.set_ff_input(*s, d, None);
            }
        }

        for i in 0..self.outputs.max(1) {
            let src = pool[rng.gen_range(0..pool.len())];
            n.add_output(format!("o{i}"), src);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetlistStats;

    #[test]
    fn generated_circuits_validate() {
        for seed in 0..20 {
            let n = RandomCircuit::free_running(10, 40, seed).generate();
            n.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RandomCircuit::gated(6, 20, 42).generate();
        let b = RandomCircuit::gated(6, 20, 42).generate();
        assert_eq!(a, b);
        let c = RandomCircuit::gated(6, 20, 43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_match_request() {
        let n = RandomCircuit::free_running(12, 50, 7).generate();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.ffs + stats.latches, 12);
        assert_eq!(stats.gates, 50);
        assert_eq!(stats.inputs, 4);
    }

    #[test]
    fn latch_and_gated_fractions_respected() {
        let n = RandomCircuit::asynchronous(8, 30, 3).generate();
        let stats = NetlistStats::of(&n);
        assert_eq!(stats.latches, 8);
        assert_eq!(stats.ffs, 0);

        let g = RandomCircuit::gated(8, 30, 3).generate();
        g.validate().unwrap();
    }

    #[test]
    fn generated_circuits_simulate() {
        use crate::golden::GoldenSim;
        let n = RandomCircuit::gated(5, 25, 11).generate();
        let mut sim = GoldenSim::new(&n);
        for i in 0..50u64 {
            let inputs: Vec<bool> = (0..4).map(|b| (i >> b) & 1 == 1).collect();
            sim.step(&inputs).unwrap();
        }
        assert_eq!(sim.cycle(), 50);
    }
}
