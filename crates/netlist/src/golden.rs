//! The golden-model simulator: cycle-accurate netlist semantics.
//!
//! Relocation transparency is judged against this oracle: the device-level
//! simulation of a placed circuit must match the golden model cycle for
//! cycle — before, during and after a relocation.

use crate::error::NetlistError;
use crate::ir::{Netlist, NodeId, NodeKind};

/// Cycle-accurate simulator over a [`Netlist`].
///
/// Per call to [`GoldenSim::step`]:
/// 1. primary inputs are applied,
/// 2. the combinational part is evaluated in topological order,
/// 3. flip-flops capture on the (implicit) rising clock edge if their CE
///    is active,
/// 4. latches update transparently where their enable is high.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct GoldenSim<'a> {
    netlist: &'a Netlist,
    order: Vec<NodeId>,
    values: Vec<bool>,
    cycle: u64,
}

impl<'a> GoldenSim<'a> {
    /// Builds a simulator; storage elements start at their `init` values.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not validate — construct only from
    /// validated netlists.
    pub fn new(netlist: &'a Netlist) -> Self {
        netlist
            .validate()
            .expect("golden sim requires a valid netlist");
        let order = netlist
            .topo_order()
            .expect("validated netlist has a topo order");
        let mut values = vec![false; netlist.len()];
        for (i, node) in netlist.nodes().iter().enumerate() {
            match node {
                NodeKind::Ff { init, .. } | NodeKind::Latch { init, .. } => values[i] = *init,
                _ => {}
            }
        }
        GoldenSim {
            netlist,
            order,
            values,
            cycle: 0,
        }
    }

    /// The number of clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of any node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Current primary-output values, in declaration order.
    pub fn outputs(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, id)| self.value(*id))
            .collect()
    }

    /// Current storage-element values (FFs and latches), in node order.
    pub fn state(&self) -> Vec<bool> {
        self.netlist
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_sequential())
            .map(|(i, _)| self.values[i])
            .collect()
    }

    /// Forces a storage element's value (used to check state-transfer
    /// scenarios).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a storage node.
    pub fn load_state(&mut self, id: NodeId, value: bool) {
        assert!(
            self.netlist.node(id).is_sequential(),
            "{id} is not a storage element"
        );
        self.values[id.index()] = value;
    }

    /// Evaluates the combinational part for the given inputs without
    /// advancing the clock (useful to inspect next-state logic).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` has the
    /// wrong width.
    pub fn settle(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        let expected = self.netlist.inputs().len();
        if inputs.len() != expected {
            return Err(NetlistError::InputWidthMismatch {
                expected,
                actual: inputs.len(),
            });
        }
        for (id, v) in self.netlist.inputs().iter().zip(inputs) {
            self.values[id.index()] = *v;
        }
        for id in &self.order {
            if let NodeKind::Gate { kind, fanin } = self.netlist.node(*id) {
                let vals: Vec<bool> = fanin.iter().map(|f| self.values[f.index()]).collect();
                self.values[id.index()] = kind.eval(&vals);
            }
        }
        Ok(())
    }

    /// Applies inputs, settles combinational logic, then clocks storage.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` has the
    /// wrong width.
    pub fn step(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        self.settle(inputs)?;
        // Capture all storage inputs before updating any (simultaneous
        // edge semantics).
        let mut updates: Vec<(usize, bool)> = Vec::new();
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node {
                NodeKind::Ff { d, ce, .. } => {
                    let ce_on = ce.map(|c| self.values[c.index()]).unwrap_or(true);
                    if ce_on {
                        let d = d.expect("validated");
                        updates.push((i, self.values[d.index()]));
                    }
                }
                NodeKind::Latch { d, en, .. } => {
                    let en_on = en.map(|c| self.values[c.index()]).unwrap_or(false);
                    if en_on {
                        let d = d.expect("validated");
                        updates.push((i, self.values[d.index()]));
                    }
                }
                _ => {}
            }
        }
        for (i, v) in updates {
            self.values[i] = v;
        }
        // Re-settle the combinational part so sampled outputs reflect the
        // post-edge state (the value a register or pad would see just
        // before the next edge).
        for id in &self.order {
            if let NodeKind::Gate { kind, fanin } = self.netlist.node(*id) {
                let vals: Vec<bool> = fanin.iter().map(|f| self.values[f.index()]).collect();
                self.values[id.index()] = kind.eval(&vals);
            }
        }
        self.cycle += 1;
        Ok(())
    }

    /// Runs `steps` cycles with inputs produced by `stim(cycle)` and
    /// returns the output trace (one vector per cycle, sampled *after*
    /// the clock edge).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if the stimulus width
    /// is wrong.
    pub fn run<F: FnMut(u64) -> Vec<bool>>(
        &mut self,
        steps: u64,
        mut stim: F,
    ) -> Result<Vec<Vec<bool>>, NetlistError> {
        let mut trace = Vec::with_capacity(steps as usize);
        for _ in 0..steps {
            let inputs = stim(self.cycle);
            self.step(&inputs)?;
            trace.push(self.outputs());
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    fn toggler() -> Netlist {
        let mut n = Netlist::new("toggle");
        let q = n.add_ff_ce(None, None, false);
        let inv = n.add_gate(GateKind::Not, &[q]);
        n.set_ff_input(q, inv, None);
        n.add_output("q", q);
        n
    }

    #[test]
    fn free_running_toggle() {
        let n = toggler();
        let mut sim = GoldenSim::new(&n);
        assert_eq!(sim.outputs(), vec![false]);
        sim.step(&[]).unwrap();
        assert_eq!(sim.outputs(), vec![true]);
        sim.step(&[]).unwrap();
        assert_eq!(sim.outputs(), vec![false]);
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn gated_ff_holds_when_ce_low() {
        let mut n = Netlist::new("gated");
        let ce = n.add_input("ce");
        let q = n.add_ff_ce(None, None, false);
        let inv = n.add_gate(GateKind::Not, &[q]);
        n.set_ff_input(q, inv, Some(ce));
        n.add_output("q", q);
        let mut sim = GoldenSim::new(&n);
        sim.step(&[false]).unwrap();
        assert_eq!(sim.outputs(), vec![false], "held");
        sim.step(&[true]).unwrap();
        assert_eq!(sim.outputs(), vec![true], "toggled");
        sim.step(&[false]).unwrap();
        assert_eq!(sim.outputs(), vec![true], "held again");
    }

    #[test]
    fn latch_transparent_only_when_enabled() {
        let mut n = Netlist::new("latch");
        let d = n.add_input("d");
        let en = n.add_input("en");
        let q = n.add_latch(None, None, false);
        n.set_latch_input(q, d, en);
        n.add_output("q", q);
        let mut sim = GoldenSim::new(&n);
        sim.step(&[true, false]).unwrap();
        assert_eq!(sim.outputs(), vec![false], "opaque");
        sim.step(&[true, true]).unwrap();
        assert_eq!(sim.outputs(), vec![true], "captured");
        sim.step(&[false, false]).unwrap();
        assert_eq!(sim.outputs(), vec![true], "held on enable fall");
    }

    #[test]
    fn settle_does_not_clock() {
        let n = toggler();
        let mut sim = GoldenSim::new(&n);
        sim.settle(&[]).unwrap();
        sim.settle(&[]).unwrap();
        assert_eq!(sim.outputs(), vec![false]);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn input_width_checked() {
        let n = toggler();
        let mut sim = GoldenSim::new(&n);
        assert!(matches!(
            sim.step(&[true]),
            Err(NetlistError::InputWidthMismatch {
                expected: 0,
                actual: 1
            })
        ));
    }

    #[test]
    fn load_state_overrides() {
        let n = toggler();
        let mut sim = GoldenSim::new(&n);
        let ff = NodeId(0);
        sim.load_state(ff, true);
        assert_eq!(sim.outputs(), vec![true]);
    }

    #[test]
    fn run_produces_trace() {
        let n = toggler();
        let mut sim = GoldenSim::new(&n);
        let trace = sim.run(4, |_| vec![]).unwrap();
        assert_eq!(
            trace,
            vec![vec![true], vec![false], vec![true], vec![false]]
        );
    }

    #[test]
    fn simultaneous_update_semantics() {
        // Two FFs swapping values must not see each other's new value.
        let mut n = Netlist::new("swap");
        let a = n.add_ff_ce(None, None, true);
        let b = n.add_ff_ce(None, None, false);
        let buf_a = n.add_gate(GateKind::Buf, &[a]);
        let buf_b = n.add_gate(GateKind::Buf, &[b]);
        n.set_ff_input(a, buf_b, None);
        n.set_ff_input(b, buf_a, None);
        n.add_output("a", a);
        n.add_output("b", b);
        let mut sim = GoldenSim::new(&n);
        sim.step(&[]).unwrap();
        assert_eq!(sim.outputs(), vec![false, true]);
        sim.step(&[]).unwrap();
        assert_eq!(sim.outputs(), vec![true, false]);
    }
}
