//! Netlist size and depth statistics.

use crate::ir::{Netlist, NodeKind};
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Edge-triggered flip-flops.
    pub ffs: usize,
    /// Transparent latches.
    pub latches: usize,
    /// Longest combinational path, in gates.
    pub depth: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (validate first).
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            ..NetlistStats::default()
        };
        for node in netlist.nodes() {
            match node {
                NodeKind::Gate { .. } => s.gates += 1,
                NodeKind::Ff { .. } => s.ffs += 1,
                NodeKind::Latch { .. } => s.latches += 1,
                NodeKind::Input { .. } => {}
            }
        }
        // Depth via the topological order.
        let order = netlist
            .topo_order()
            .expect("stats require an acyclic netlist");
        let mut depth = vec![0usize; netlist.len()];
        for id in order {
            if let NodeKind::Gate { fanin, .. } = netlist.node(id) {
                let d = fanin.iter().map(|f| depth[f.index()]).max().unwrap_or(0) + 1;
                depth[id.index()] = d;
                s.depth = s.depth.max(d);
            }
        }
        s
    }

    /// Total storage elements.
    pub fn storage(&self) -> usize {
        self.ffs + self.latches
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in, {} out, {} gates, {} ffs, {} latches, depth {}",
            self.inputs, self.outputs, self.gates, self.ffs, self.latches, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::GateKind;

    #[test]
    fn counts_and_depth() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]);
        let g2 = n.add_gate(GateKind::Not, &[g1]);
        let g3 = n.add_gate(GateKind::Or, &[g2, a]);
        let q = n.add_ff(g3, false);
        n.add_output("q", q);
        let s = NetlistStats::of(&n);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.ffs, 1);
        assert_eq!(s.latches, 0);
        assert_eq!(s.depth, 3);
        assert_eq!(s.storage(), 1);
        assert!(s.to_string().contains("3 gates"));
    }

    #[test]
    fn depth_resets_at_storage_boundaries() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::Not, &[a]);
        let q = n.add_ff(g1, false);
        let g2 = n.add_gate(GateKind::Not, &[q]);
        n.add_output("o", g2);
        let s = NetlistStats::of(&n);
        assert_eq!(s.depth, 1, "ff breaks the path");
    }
}
