//! Crate-level smoke tests: benchmark generation must be deterministic
//! and tech-mappable.

use rtm_netlist::itc99::{self, Variant};
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::map_to_luts;

#[test]
fn itc99_generation_is_deterministic() {
    for name in ["b01", "b02", "b06"] {
        let profile = itc99::profile(name).expect("known profile");
        let a = itc99::generate(profile, Variant::FreeRunning);
        let b = itc99::generate(profile, Variant::FreeRunning);
        assert_eq!(a, b, "{name} must generate identically every time");
        assert!(!a.inputs().is_empty());
        assert!(!a.outputs().is_empty());
    }
}

#[test]
fn itc99_variants_differ() {
    let profile = itc99::profile("b02").unwrap();
    let free = itc99::generate(profile, Variant::FreeRunning);
    let gated = itc99::generate(profile, Variant::GatedClock);
    assert_ne!(free, gated);
}

#[test]
fn paper_suite_maps_to_luts() {
    for netlist in itc99::paper_suite() {
        let mapped = map_to_luts(&netlist).unwrap();
        assert!(!mapped.is_empty(), "{} mapped to zero LUTs", netlist.name());
    }
}

#[test]
fn random_circuits_are_seed_deterministic() {
    let a = RandomCircuit::free_running(4, 12, 7).generate();
    let b = RandomCircuit::free_running(4, 12, 7).generate();
    assert_eq!(a, b);
    let c = RandomCircuit::free_running(4, 12, 8).generate();
    assert_ne!(a, c, "different seeds should differ");
}
