//! On-line allocation strategies (DESIGN.md ablation 3).

use crate::arena::Arena;
use rtm_fpga::geom::{ClbCoord, Rect};
use std::fmt;

/// Placement strategy for incoming rectangular requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// First feasible origin in row-major scan order.
    #[default]
    FirstFit,
    /// Feasible origin with maximal contact (touching occupied cells or
    /// arena edges) — packs tightly, preserving large free areas.
    BestFit,
    /// Feasible origin closest to the bottom-left corner (classic on-line
    /// rectangle packing).
    BottomLeft,
    /// Feasible origin with minimal contact — a deliberately bad packer
    /// used as an ablation baseline.
    WorstFit,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 4] = [
        Strategy::FirstFit,
        Strategy::BestFit,
        Strategy::BottomLeft,
        Strategy::WorstFit,
    ];

    /// Chooses an origin for a `rows`×`cols` request, or `None` if
    /// nothing fits.
    pub fn choose(&self, arena: &Arena, rows: u16, cols: u16) -> Option<ClbCoord> {
        let candidates = arena.candidate_origins(rows, cols);
        match self {
            Strategy::FirstFit => candidates.first().copied(),
            Strategy::BottomLeft => candidates
                .iter()
                .max_by_key(|o| (o.row, std::cmp::Reverse(o.col)))
                .copied(),
            Strategy::BestFit => candidates
                .iter()
                .max_by_key(|o| contact(arena, Rect::new(**o, rows, cols)))
                .copied(),
            Strategy::WorstFit => candidates
                .iter()
                .min_by_key(|o| contact(arena, Rect::new(**o, rows, cols)))
                .copied(),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::FirstFit => "first-fit",
            Strategy::BestFit => "best-fit",
            Strategy::BottomLeft => "bottom-left",
            Strategy::WorstFit => "worst-fit",
        };
        f.write_str(s)
    }
}

/// Contact score: perimeter cells of `rect` that touch occupied cells or
/// the arena boundary. Higher = tighter packing.
fn contact(arena: &Arena, rect: Rect) -> u32 {
    let bounds = arena.bounds();
    let mut score = 0;
    let occupied_or_edge = |coord: Option<ClbCoord>| -> bool {
        match coord {
            None => true,
            Some(c) => {
                if !bounds.contains(c) {
                    true
                } else {
                    arena.occupied(c)
                }
            }
        }
    };
    for r in rect.origin.row..rect.row_end() {
        score += u32::from(occupied_or_edge(
            ClbCoord::new(r, rect.origin.col).offset(0, -1),
        ));
        score += u32::from(occupied_or_edge(
            ClbCoord::new(r, rect.col_end() - 1).offset(0, 1),
        ));
    }
    for c in rect.origin.col..rect.col_end() {
        score += u32::from(occupied_or_edge(
            ClbCoord::new(rect.origin.row, c).offset(-1, 0),
        ));
        score += u32::from(occupied_or_edge(
            ClbCoord::new(rect.row_end() - 1, c).offset(1, 0),
        ));
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(rects: &[Rect]) -> Arena {
        let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
        for r in rects {
            a.claim(r).unwrap();
        }
        a
    }

    #[test]
    fn first_fit_takes_topmost_leftmost() {
        let a = arena_with(&[Rect::new(ClbCoord::new(0, 0), 2, 2)]);
        assert_eq!(
            Strategy::FirstFit.choose(&a, 2, 2),
            Some(ClbCoord::new(0, 2))
        );
    }

    #[test]
    fn bottom_left_takes_lowest_then_leftmost() {
        let a = arena_with(&[]);
        assert_eq!(
            Strategy::BottomLeft.choose(&a, 2, 2),
            Some(ClbCoord::new(6, 0))
        );
    }

    #[test]
    fn best_fit_prefers_corner_over_centre() {
        let a = arena_with(&[]);
        let chosen = Strategy::BestFit.choose(&a, 2, 2).unwrap();
        let corners = [
            ClbCoord::new(0, 0),
            ClbCoord::new(0, 6),
            ClbCoord::new(6, 0),
            ClbCoord::new(6, 6),
        ];
        assert!(corners.contains(&chosen), "best-fit picked {chosen}");
    }

    #[test]
    fn worst_fit_avoids_contact() {
        let a = arena_with(&[]);
        let chosen = Strategy::WorstFit.choose(&a, 2, 2).unwrap();
        // The centre has zero contact.
        assert!(chosen.row > 0 && chosen.row < 6);
        assert!(chosen.col > 0 && chosen.col < 6);
    }

    #[test]
    fn none_when_full() {
        let a = arena_with(&[Rect::new(ClbCoord::new(0, 0), 8, 8)]);
        for s in Strategy::ALL {
            assert_eq!(s.choose(&a, 1, 1), None, "{s}");
        }
    }

    #[test]
    fn best_fit_fills_notch() {
        // A notch of exactly 2x2 next to an allocation: best-fit must
        // prefer it over open space.
        let a = arena_with(&[
            Rect::new(ClbCoord::new(0, 0), 2, 2),
            Rect::new(ClbCoord::new(0, 4), 2, 4),
            Rect::new(ClbCoord::new(2, 0), 6, 8),
        ]);
        // Only free cells: rows 0-1, cols 2-3 (the notch).
        assert_eq!(
            Strategy::BestFit.choose(&a, 2, 2),
            Some(ClbCoord::new(0, 2))
        );
    }

    #[test]
    fn strategies_display() {
        assert_eq!(Strategy::FirstFit.to_string(), "first-fit");
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
