//! # rtm-place
//!
//! Free-space management for the 2D CLB array: on-line allocation of
//! rectangular regions, fragmentation measurement, and rearrangement
//! planning (defragmentation).
//!
//! This crate operationalises the paper's motivation (§1): "many small
//! pools of resources are created as they are released. These unallocated
//! areas tend to become so small that they fail to satisfy any request and
//! for that reason remain unused, leading to a fragmentation of the FPGA
//! logic space." The [`defrag`] planner produces the *rearrangements* that
//! the paper's dynamic relocation executes without halting the moved
//! functions.
//!
//! ## Example
//!
//! ```
//! use rtm_place::arena::TaskArena;
//! use rtm_place::alloc::Strategy;
//! use rtm_fpga::geom::{ClbCoord, Rect};
//!
//! # fn main() -> Result<(), rtm_place::PlaceError> {
//! let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 28, 42));
//! let a = arena.allocate(1, 10, 10, Strategy::BottomLeft)?;
//! let b = arena.allocate(2, 10, 10, Strategy::BottomLeft)?;
//! assert!(!a.intersects(&b));
//! arena.release(1)?;
//! let frag = arena.fragmentation();
//! assert!(frag.free_cells > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod arena;
pub mod defrag;
pub mod error;
pub mod frag;

pub use arena::TaskArena;
pub use error::PlaceError;
