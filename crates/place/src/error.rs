//! Error type for area management.

use rtm_fpga::geom::Rect;
use std::fmt;

/// Errors raised by the free-space manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The requested rectangle overlaps an allocation.
    Overlap {
        /// The rejected rectangle.
        rect: Rect,
    },
    /// The rectangle exceeds the arena bounds.
    OutOfBounds {
        /// The rejected rectangle.
        rect: Rect,
    },
    /// No free region can satisfy the request right now.
    NoFit {
        /// Requested rows.
        rows: u16,
        /// Requested columns.
        cols: u16,
    },
    /// The task id is unknown.
    UnknownTask {
        /// The offending id.
        id: u64,
    },
    /// The task id is already allocated.
    DuplicateTask {
        /// The offending id.
        id: u64,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Overlap { rect } => write!(f, "rectangle {rect} overlaps an allocation"),
            PlaceError::OutOfBounds { rect } => write!(f, "rectangle {rect} outside arena"),
            PlaceError::NoFit { rows, cols } => {
                write!(f, "no contiguous {rows}x{cols} region available")
            }
            PlaceError::UnknownTask { id } => write!(f, "unknown task {id}"),
            PlaceError::DuplicateTask { id } => write!(f, "task {id} already allocated"),
        }
    }
}

impl std::error::Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;

    #[test]
    fn displays_nonempty() {
        let r = Rect::new(ClbCoord::new(0, 0), 2, 2);
        for e in [
            PlaceError::Overlap { rect: r },
            PlaceError::OutOfBounds { rect: r },
            PlaceError::NoFit { rows: 3, cols: 4 },
            PlaceError::UnknownTask { id: 7 },
            PlaceError::DuplicateTask { id: 7 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
