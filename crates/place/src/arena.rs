//! The occupancy arena: a grid of allocated/free CLBs with named tasks.

use crate::alloc::Strategy;
use crate::error::PlaceError;
use crate::frag::FragMetrics;
use rtm_fpga::geom::{ClbCoord, Rect};
use std::collections::BTreeMap;

/// Identifier of an allocated task.
pub type TaskId = u64;

/// Occupancy grid over a rectangular arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arena {
    bounds: Rect,
    grid: Vec<bool>,
}

impl Arena {
    /// An empty arena covering `bounds`.
    pub fn new(bounds: Rect) -> Self {
        Arena {
            bounds,
            grid: vec![false; bounds.area() as usize],
        }
    }

    /// The arena bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    fn idx(&self, coord: ClbCoord) -> usize {
        let r = (coord.row - self.bounds.origin.row) as usize;
        let c = (coord.col - self.bounds.origin.col) as usize;
        r * self.bounds.cols as usize + c
    }

    /// True if `coord` is occupied.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the arena.
    pub fn occupied(&self, coord: ClbCoord) -> bool {
        assert!(self.bounds.contains(coord), "{coord} outside arena");
        self.grid[self.idx(coord)]
    }

    /// Number of free CLBs.
    pub fn free_cells(&self) -> u32 {
        self.grid.iter().filter(|o| !**o).count() as u32
    }

    /// True if `rect` lies inside the arena and is entirely free.
    pub fn fits(&self, rect: &Rect) -> bool {
        self.bounds.contains_rect(rect) && rect.iter().all(|c| !self.occupied(c))
    }

    /// Marks `rect` occupied.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::OutOfBounds`] or [`PlaceError::Overlap`].
    pub fn claim(&mut self, rect: &Rect) -> Result<(), PlaceError> {
        if !self.bounds.contains_rect(rect) {
            return Err(PlaceError::OutOfBounds { rect: *rect });
        }
        if rect.iter().any(|c| self.occupied(c)) {
            return Err(PlaceError::Overlap { rect: *rect });
        }
        for c in rect.iter() {
            let i = self.idx(c);
            self.grid[i] = true;
        }
        Ok(())
    }

    /// Marks `rect` free.
    ///
    /// # Panics
    ///
    /// Panics if `rect` leaves the arena.
    pub fn release(&mut self, rect: &Rect) {
        assert!(self.bounds.contains_rect(rect), "release outside arena");
        for c in rect.iter() {
            let i = self.idx(c);
            self.grid[i] = false;
        }
    }

    /// All origins at which a `rows`×`cols` rectangle would fit, in
    /// row-major order.
    pub fn candidate_origins(&self, rows: u16, cols: u16) -> Vec<ClbCoord> {
        let mut out = Vec::new();
        if rows == 0 || cols == 0 || rows > self.bounds.rows || cols > self.bounds.cols {
            return out;
        }
        for r in self.bounds.origin.row..=(self.bounds.row_end() - rows) {
            for c in self.bounds.origin.col..=(self.bounds.col_end() - cols) {
                let rect = Rect::new(ClbCoord::new(r, c), rows, cols);
                if self.fits(&rect) {
                    out.push(rect.origin);
                }
            }
        }
        out
    }

    /// Area of the largest fully-free rectangle (histogram method,
    /// O(rows × cols)).
    pub fn largest_free_rect(&self) -> u32 {
        let (rows, cols) = (self.bounds.rows as usize, self.bounds.cols as usize);
        let mut heights = vec![0u32; cols];
        let mut best = 0u32;
        for r in 0..rows {
            for (c, h) in heights.iter_mut().enumerate() {
                *h = if self.grid[r * cols + c] { 0 } else { *h + 1 };
            }
            best = best.max(max_histogram_area(&heights));
        }
        best
    }
}

fn max_histogram_area(heights: &[u32]) -> u32 {
    let mut stack: Vec<usize> = Vec::new();
    let mut best = 0u32;
    for i in 0..=heights.len() {
        let h = if i == heights.len() { 0 } else { heights[i] };
        while let Some(&top) = stack.last() {
            if heights[top] <= h {
                break;
            }
            stack.pop();
            let width = match stack.last() {
                Some(&prev) => i - prev - 1,
                None => i,
            };
            best = best.max(heights[top] * width as u32);
        }
        stack.push(i);
    }
    best
}

/// An arena plus the task table: who owns which rectangle.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskArena {
    arena: Arena,
    tasks: BTreeMap<TaskId, Rect>,
}

impl TaskArena {
    /// An empty task arena covering `bounds`.
    pub fn new(bounds: Rect) -> Self {
        TaskArena {
            arena: Arena::new(bounds),
            tasks: BTreeMap::new(),
        }
    }

    /// The underlying occupancy arena.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// The task table.
    pub fn tasks(&self) -> &BTreeMap<TaskId, Rect> {
        &self.tasks
    }

    /// The rectangle of one task.
    pub fn task_rect(&self, id: TaskId) -> Option<Rect> {
        self.tasks.get(&id).copied()
    }

    /// Allocates a `rows`×`cols` region for task `id` using `strategy`.
    /// Returns the placed rectangle.
    ///
    /// # Errors
    ///
    /// [`PlaceError::DuplicateTask`] if `id` is live,
    /// [`PlaceError::NoFit`] if no free region is large enough.
    pub fn allocate(
        &mut self,
        id: TaskId,
        rows: u16,
        cols: u16,
        strategy: Strategy,
    ) -> Result<Rect, PlaceError> {
        if self.tasks.contains_key(&id) {
            return Err(PlaceError::DuplicateTask { id });
        }
        let origin = strategy
            .choose(&self.arena, rows, cols)
            .ok_or(PlaceError::NoFit { rows, cols })?;
        let rect = Rect::new(origin, rows, cols);
        self.arena.claim(&rect)?;
        self.tasks.insert(id, rect);
        Ok(rect)
    }

    /// Places task `id` at an exact position (used when replaying plans).
    ///
    /// # Errors
    ///
    /// [`PlaceError::DuplicateTask`], [`PlaceError::OutOfBounds`] or
    /// [`PlaceError::Overlap`].
    pub fn allocate_at(&mut self, id: TaskId, rect: Rect) -> Result<(), PlaceError> {
        if self.tasks.contains_key(&id) {
            return Err(PlaceError::DuplicateTask { id });
        }
        self.arena.claim(&rect)?;
        self.tasks.insert(id, rect);
        Ok(())
    }

    /// Releases task `id`'s region.
    ///
    /// # Errors
    ///
    /// [`PlaceError::UnknownTask`] if `id` is not live.
    pub fn release(&mut self, id: TaskId) -> Result<Rect, PlaceError> {
        let rect = self
            .tasks
            .remove(&id)
            .ok_or(PlaceError::UnknownTask { id })?;
        self.arena.release(&rect);
        Ok(rect)
    }

    /// Moves task `id` to `to` (the bookkeeping side of a relocation).
    ///
    /// The move is atomic: on error the task keeps its old region. The
    /// destination may overlap the source (sliding moves) — overlap with
    /// *other* tasks is rejected.
    ///
    /// # Errors
    ///
    /// [`PlaceError::UnknownTask`], [`PlaceError::OutOfBounds`] or
    /// [`PlaceError::Overlap`].
    pub fn relocate(&mut self, id: TaskId, to: Rect) -> Result<(), PlaceError> {
        let from = self
            .tasks
            .get(&id)
            .copied()
            .ok_or(PlaceError::UnknownTask { id })?;
        if to.rows != from.rows || to.cols != from.cols {
            return Err(PlaceError::OutOfBounds { rect: to });
        }
        self.arena.release(&from);
        match self.arena.claim(&to) {
            Ok(()) => {
                self.tasks.insert(id, to);
                Ok(())
            }
            Err(e) => {
                self.arena.claim(&from).expect("restoring old region");
                Err(e)
            }
        }
    }

    /// Current fragmentation metrics.
    pub fn fragmentation(&self) -> FragMetrics {
        FragMetrics::of(&self.arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Strategy as Alloc;
    use proptest::prelude::*;

    fn arena() -> Arena {
        Arena::new(Rect::new(ClbCoord::new(0, 0), 8, 8))
    }

    #[test]
    fn claim_release_roundtrip() {
        let mut a = arena();
        let r = Rect::new(ClbCoord::new(1, 1), 3, 3);
        a.claim(&r).unwrap();
        assert!(a.occupied(ClbCoord::new(2, 2)));
        assert_eq!(a.free_cells(), 64 - 9);
        a.release(&r);
        assert_eq!(a.free_cells(), 64);
    }

    #[test]
    fn overlap_rejected() {
        let mut a = arena();
        a.claim(&Rect::new(ClbCoord::new(0, 0), 4, 4)).unwrap();
        let err = a.claim(&Rect::new(ClbCoord::new(3, 3), 2, 2)).unwrap_err();
        assert!(matches!(err, PlaceError::Overlap { .. }));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut a = arena();
        let err = a.claim(&Rect::new(ClbCoord::new(6, 6), 4, 4)).unwrap_err();
        assert!(matches!(err, PlaceError::OutOfBounds { .. }));
    }

    #[test]
    fn largest_free_rect_empty_and_split() {
        let mut a = arena();
        assert_eq!(a.largest_free_rect(), 64);
        // A full-height wall down the middle splits the arena.
        a.claim(&Rect::new(ClbCoord::new(0, 3), 8, 1)).unwrap();
        assert_eq!(a.largest_free_rect(), 8 * 4);
    }

    #[test]
    fn candidate_origins_row_major() {
        let mut a = arena();
        a.claim(&Rect::new(ClbCoord::new(0, 0), 8, 7)).unwrap(); // leave last column
        let cands = a.candidate_origins(2, 1);
        assert_eq!(cands.first(), Some(&ClbCoord::new(0, 7)));
        assert_eq!(cands.len(), 7);
        assert!(a.candidate_origins(1, 2).is_empty());
        assert!(a.candidate_origins(0, 1).is_empty());
        assert!(a.candidate_origins(9, 1).is_empty());
    }

    #[test]
    fn task_arena_lifecycle() {
        let mut t = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
        let r1 = t.allocate(1, 4, 4, Alloc::FirstFit).unwrap();
        assert_eq!(t.task_rect(1), Some(r1));
        assert!(matches!(
            t.allocate(1, 1, 1, Alloc::FirstFit),
            Err(PlaceError::DuplicateTask { id: 1 })
        ));
        let released = t.release(1).unwrap();
        assert_eq!(released, r1);
        assert!(matches!(
            t.release(1),
            Err(PlaceError::UnknownTask { id: 1 })
        ));
    }

    #[test]
    fn relocate_moves_atomically() {
        let mut t = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
        t.allocate_at(1, Rect::new(ClbCoord::new(0, 0), 2, 2))
            .unwrap();
        t.allocate_at(2, Rect::new(ClbCoord::new(0, 4), 2, 2))
            .unwrap();
        // Sliding move overlapping itself is fine.
        t.relocate(1, Rect::new(ClbCoord::new(1, 1), 2, 2)).unwrap();
        assert_eq!(t.task_rect(1), Some(Rect::new(ClbCoord::new(1, 1), 2, 2)));
        // Collision with task 2 restores the original.
        let err = t
            .relocate(1, Rect::new(ClbCoord::new(0, 3), 2, 2))
            .unwrap_err();
        assert!(matches!(err, PlaceError::Overlap { .. }));
        assert_eq!(t.task_rect(1), Some(Rect::new(ClbCoord::new(1, 1), 2, 2)));
        // Size change rejected.
        assert!(t.relocate(2, Rect::new(ClbCoord::new(4, 4), 3, 2)).is_err());
    }

    #[test]
    fn allocation_failure_when_fragmented_despite_free_area() {
        // The paper's core motivating scenario: enough total free cells,
        // but no contiguous region.
        let mut t = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 4, 8));
        // Checkerboard of 1x2 tasks leaving 16 free cells in slivers.
        for (i, col) in [0u16, 3, 6].iter().enumerate() {
            t.allocate_at(i as u64, Rect::new(ClbCoord::new(0, *col), 4, 2))
                .unwrap();
        }
        assert!(t.arena().free_cells() >= 8);
        let err = t.allocate(99, 4, 3, Alloc::FirstFit).unwrap_err();
        assert!(matches!(err, PlaceError::NoFit { .. }));
    }

    proptest! {
        #[test]
        fn free_cells_consistent_with_claims(ops in proptest::collection::vec(
            (0u16..6, 0u16..6, 1u16..3, 1u16..3), 0..20))
        {
            let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
            let mut claimed: Vec<Rect> = Vec::new();
            for (r, c, h, w) in ops {
                let rect = Rect::new(ClbCoord::new(r, c), h, w);
                if a.claim(&rect).is_ok() {
                    claimed.push(rect);
                }
            }
            let used: u32 = claimed.iter().map(|r| r.area()).sum();
            prop_assert_eq!(a.free_cells(), 64 - used);
            for r in &claimed {
                a.release(r);
            }
            prop_assert_eq!(a.free_cells(), 64);
        }

        #[test]
        fn largest_free_rect_is_actually_free(rects in proptest::collection::vec(
            (0u16..7, 0u16..7, 1u16..3, 1u16..3), 0..12))
        {
            let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
            for (r, c, h, w) in rects {
                let _ = a.claim(&Rect::new(ClbCoord::new(r, c), h, w));
            }
            let best = a.largest_free_rect();
            // Exhaustive check over all rectangles.
            let mut brute = 0;
            for r in 0..8u16 {
                for c in 0..8u16 {
                    for h in 1..=(8 - r) {
                        for w in 1..=(8 - c) {
                            let rect = Rect::new(ClbCoord::new(r, c), h, w);
                            if a.fits(&rect) {
                                brute = brute.max(rect.area());
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(best, brute);
        }
    }
}
