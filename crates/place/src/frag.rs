//! Fragmentation metrics (experiment T3).

use crate::arena::Arena;
use std::fmt;

/// Fragmentation state of an arena at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragMetrics {
    /// Total free CLBs.
    pub free_cells: u32,
    /// Area of the largest contiguous free rectangle.
    pub largest_rect: u32,
    /// Total CLBs in the arena.
    pub total_cells: u32,
}

impl FragMetrics {
    /// Measures `arena`.
    pub fn of(arena: &Arena) -> Self {
        FragMetrics {
            free_cells: arena.free_cells(),
            largest_rect: arena.largest_free_rect(),
            total_cells: arena.bounds().area(),
        }
    }

    /// External fragmentation index in `[0, 1]`:
    /// `1 − largest_free_rect / free_cells`. Zero when all free space is
    /// one rectangle; approaches one as free space shatters. Zero when
    /// the arena is full (no free space to fragment).
    pub fn fragmentation(&self) -> f64 {
        if self.free_cells == 0 {
            0.0
        } else {
            1.0 - self.largest_rect as f64 / self.free_cells as f64
        }
    }

    /// Utilisation in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        1.0 - self.free_cells as f64 / self.total_cells as f64
    }

    /// The largest request (as an area) guaranteed satisfiable right now.
    pub fn satisfiable_area(&self) -> u32 {
        self.largest_rect
    }

    /// True when the fragmentation index exceeds `threshold` — the
    /// condition a run-time service uses to trigger a defragmentation
    /// cycle.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_place::frag::FragMetrics;
    ///
    /// let m = FragMetrics { free_cells: 100, largest_rect: 25, total_cells: 200 };
    /// assert!(m.exceeds(0.5));  // index 0.75
    /// assert!(!m.exceeds(0.8));
    /// ```
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.fragmentation() > threshold
    }
}

impl fmt::Display for FragMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "free {}/{} cells, largest rect {}, frag {:.3}",
            self.free_cells,
            self.total_cells,
            self.largest_rect,
            self.fragmentation()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::{ClbCoord, Rect};

    #[test]
    fn empty_arena_is_unfragmented() {
        let a = Arena::new(Rect::new(ClbCoord::new(0, 0), 6, 6));
        let m = FragMetrics::of(&a);
        assert_eq!(m.free_cells, 36);
        assert_eq!(m.largest_rect, 36);
        assert_eq!(m.fragmentation(), 0.0);
        assert_eq!(m.utilisation(), 0.0);
    }

    #[test]
    fn full_arena_reports_zero_fragmentation() {
        let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 4, 4));
        a.claim(&Rect::new(ClbCoord::new(0, 0), 4, 4)).unwrap();
        let m = FragMetrics::of(&a);
        assert_eq!(m.fragmentation(), 0.0);
        assert_eq!(m.utilisation(), 1.0);
    }

    #[test]
    fn shattered_free_space_scores_high() {
        // Claim a comb pattern: free cells are isolated columns.
        let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 4, 8));
        for col in [1u16, 3, 5, 7] {
            a.claim(&Rect::new(ClbCoord::new(0, col), 4, 1)).unwrap();
        }
        let m = FragMetrics::of(&a);
        assert_eq!(m.free_cells, 16);
        assert_eq!(m.largest_rect, 4);
        assert!(m.fragmentation() > 0.7);
        assert!(m.to_string().contains("frag"));
    }

    #[test]
    fn compact_free_space_scores_zero() {
        let mut a = Arena::new(Rect::new(ClbCoord::new(0, 0), 4, 8));
        a.claim(&Rect::new(ClbCoord::new(0, 0), 4, 4)).unwrap();
        let m = FragMetrics::of(&a);
        assert_eq!(m.fragmentation(), 0.0);
        assert_eq!(m.satisfiable_area(), 16);
    }
}
