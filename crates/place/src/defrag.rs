//! Rearrangement planning: make room for incoming functions by moving
//! running ones.
//!
//! "If a new function cannot be allocated immediately due to lack of
//! contiguous free resources, a suitable rearrangement of a subset of the
//! functions currently running may solve the problem." (paper §1, citing
//! Diessel et al.\[5\] for the planning methods). The planner offers the
//! two method families of \[5\]:
//!
//! * **local repacking** ([`make_room`]) — move as few tasks as possible,
//!   preferring single-task moves;
//! * **ordered compaction** ([`compact`]) — slide every task toward the
//!   left edge in column order, consolidating all free space.
//!
//! What the *paper* adds is downstream of this planner: executing the
//! moves with dynamic relocation so the moved tasks never stop.

use crate::arena::{TaskArena, TaskId};
use crate::frag::FragMetrics;
use rtm_fpga::geom::{ClbCoord, Rect};
use std::fmt;

/// One planned task move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The task to move.
    pub id: TaskId,
    /// Where it currently is.
    pub from: Rect,
    /// Where it should go.
    pub to: Rect,
}

impl Move {
    /// Manhattan distance of the move in CLBs (relocation cost scales
    /// with it).
    pub fn distance(&self) -> u32 {
        self.from.origin.manhattan(self.to.origin)
    }

    /// CLBs that must be relocated (the task's area).
    pub fn cells_moved(&self) -> u32 {
        self.from.area()
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {}: {} -> {}", self.id, self.from, self.to)
    }
}

/// Summary cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCost {
    /// Number of task moves.
    pub moves: usize,
    /// Total CLBs relocated.
    pub cells: u32,
    /// Total Manhattan distance.
    pub distance: u32,
}

/// Cost of a move list.
pub fn plan_cost(moves: &[Move]) -> PlanCost {
    PlanCost {
        moves: moves.len(),
        cells: moves.iter().map(Move::cells_moved).sum(),
        distance: moves.iter().map(Move::distance).sum(),
    }
}

/// Plans an ordered compaction without touching the caller's arena.
///
/// This is the planning half of [`compact`]: it returns the move list
/// that compaction *would* execute, computed on a scratch copy. Callers
/// that own real hardware state (the run-time manager) replay the plan
/// themselves, executing each [`Move`] with dynamic relocation, instead
/// of letting this crate mutate bookkeeping it does not own.
///
/// # Examples
///
/// ```
/// use rtm_place::{TaskArena, defrag::plan_compaction};
/// use rtm_fpga::geom::{ClbCoord, Rect};
///
/// let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
/// arena.allocate_at(1, Rect::new(ClbCoord::new(0, 5), 4, 2)).unwrap();
/// let plan = plan_compaction(&arena);
/// assert_eq!(plan.len(), 1);
/// // The caller's arena is untouched until it replays the plan.
/// assert_eq!(arena.task_rect(1), Some(Rect::new(ClbCoord::new(0, 5), 4, 2)));
/// ```
pub fn plan_compaction(arena: &TaskArena) -> Vec<Move> {
    let mut scratch = arena.clone();
    compact(&mut scratch)
}

/// Predicts the fragmentation metrics `arena` would show after executing
/// `moves` — computed on a scratch copy, the caller's arena is untouched.
///
/// This is how a run-time manager decides whether a planned cycle is
/// worth its relocation traffic *before* moving anything: ordered
/// compaction always packs tasks leftward, but on some layouts that
/// shuffling never grows the largest free rectangle, so the predicted
/// index equals the current one and the cycle should be skipped.
///
/// # Panics
///
/// Panics if `moves` is not executable on `arena` (the plan must come
/// from this arena's planner, e.g. [`plan_compaction`] or [`make_room`]).
///
/// # Examples
///
/// ```
/// use rtm_place::{TaskArena, defrag::{plan_compaction, predict_metrics}};
/// use rtm_fpga::geom::{ClbCoord, Rect};
///
/// let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
/// arena.allocate_at(1, Rect::new(ClbCoord::new(0, 5), 4, 2)).unwrap();
/// let plan = plan_compaction(&arena);
/// let predicted = predict_metrics(&arena, &plan);
/// assert!(predicted.fragmentation() <= arena.fragmentation().fragmentation());
/// ```
pub fn predict_metrics(arena: &TaskArena, moves: &[Move]) -> FragMetrics {
    let mut scratch = arena.clone();
    for mv in moves {
        scratch
            .relocate(mv.id, mv.to)
            .expect("predicted plan must be executable on its own arena");
    }
    scratch.fragmentation()
}

/// Ordered compaction: slides every task as far left (then up) as it can
/// go, in left-to-right task order. Returns the executed move list; the
/// arena is updated.
pub fn compact(arena: &mut TaskArena) -> Vec<Move> {
    let mut order: Vec<(TaskId, Rect)> = arena.tasks().iter().map(|(id, r)| (*id, *r)).collect();
    order.sort_by_key(|(_, r)| (r.origin.col, r.origin.row));
    let mut moves = Vec::new();
    for (id, from) in order {
        let Some(to) = leftmost_position(arena, id, from) else {
            continue;
        };
        if to != from {
            arena
                .relocate(id, to)
                .expect("planned move must be feasible");
            moves.push(Move { id, from, to });
        }
    }
    moves
}

/// The leftmost-topmost feasible position for `id` (ignoring its own
/// current cells), reachable as a direct move.
fn leftmost_position(arena: &TaskArena, id: TaskId, from: Rect) -> Option<Rect> {
    let bounds = arena.arena().bounds();
    let mut best: Option<ClbCoord> = None;
    for c in bounds.origin.col..=(bounds.col_end().checked_sub(from.cols)?) {
        for r in bounds.origin.row..=(bounds.row_end().checked_sub(from.rows)?) {
            let cand = Rect::new(ClbCoord::new(r, c), from.rows, from.cols);
            if free_ignoring(arena, &cand, id) {
                best = Some(cand.origin);
                break;
            }
        }
        if best.is_some() {
            break;
        }
    }
    best.map(|o| Rect::new(o, from.rows, from.cols))
}

/// True if `rect` is free treating task `id`'s own cells as free.
fn free_ignoring(arena: &TaskArena, rect: &Rect, id: TaskId) -> bool {
    if !arena.arena().bounds().contains_rect(rect) {
        return false;
    }
    let own = arena.task_rect(id);
    rect.iter()
        .all(|c| !arena.arena().occupied(c) || own.map(|r| r.contains(c)).unwrap_or(false))
}

/// Plans the cheapest rearrangement (within this planner's repertoire)
/// that frees a contiguous `rows`×`cols` region:
///
/// 1. no moves if the request already fits;
/// 2. otherwise the single-task move whose relocation opens a fitting
///    hole, minimising relocated cells (local repacking);
/// 3. otherwise full ordered compaction, if that suffices.
///
/// Returns the move list (empty = fits as-is) applied to a scratch copy —
/// the caller's arena is *not* modified — or `None` when even compaction
/// cannot help (insufficient total area).
pub fn make_room(arena: &TaskArena, rows: u16, cols: u16) -> Option<Vec<Move>> {
    let fits = |a: &TaskArena| !a.arena().candidate_origins(rows, cols).is_empty();
    if fits(arena) {
        return Some(Vec::new());
    }

    // Local repacking: try every single-task move, cheapest first.
    let mut candidates: Vec<(TaskId, Rect)> =
        arena.tasks().iter().map(|(id, r)| (*id, *r)).collect();
    candidates.sort_by_key(|(_, r)| r.area());
    let bounds = arena.arena().bounds();
    for (id, from) in &candidates {
        let mut best: Option<Move> = None;
        for r in bounds.origin.row..=(bounds.row_end().saturating_sub(from.rows)) {
            for c in bounds.origin.col..=(bounds.col_end().saturating_sub(from.cols)) {
                let to = Rect::new(ClbCoord::new(r, c), from.rows, from.cols);
                if to == *from || !free_ignoring(arena, &to, *id) {
                    continue;
                }
                let mut scratch = arena.clone();
                scratch.relocate(*id, to).expect("checked feasible");
                if fits(&scratch) {
                    let mv = Move {
                        id: *id,
                        from: *from,
                        to,
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => mv.distance() < b.distance(),
                    };
                    if better {
                        best = Some(mv);
                    }
                }
            }
        }
        if let Some(mv) = best {
            return Some(vec![mv]);
        }
    }

    // Full compaction on a scratch copy.
    let mut scratch = arena.clone();
    let moves = compact(&mut scratch);
    if fits(&scratch) {
        Some(moves)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arena_8x8() -> TaskArena {
        TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8))
    }

    #[test]
    fn compact_slides_tasks_left() {
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 5), 4, 2))
            .unwrap();
        a.allocate_at(2, Rect::new(ClbCoord::new(4, 3), 4, 2))
            .unwrap();
        let moves = compact(&mut a);
        assert_eq!(moves.len(), 2);
        assert_eq!(a.task_rect(2), Some(Rect::new(ClbCoord::new(0, 0), 4, 2)));
        assert_eq!(a.task_rect(1), Some(Rect::new(ClbCoord::new(4, 0), 4, 2)));
        // After compaction the free space is one rectangle.
        assert_eq!(a.fragmentation().fragmentation(), 0.0);
    }

    #[test]
    fn plan_compaction_matches_compact_without_mutating() {
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 5), 4, 2))
            .unwrap();
        a.allocate_at(2, Rect::new(ClbCoord::new(4, 3), 4, 2))
            .unwrap();
        let before = a.clone();
        let plan = plan_compaction(&a);
        assert_eq!(a, before, "planning must not mutate the arena");
        let mut replay = a.clone();
        for mv in &plan {
            replay.relocate(mv.id, mv.to).unwrap();
        }
        let executed = compact(&mut a);
        assert_eq!(plan, executed);
        assert_eq!(replay, a);
    }

    #[test]
    fn predict_metrics_flags_useless_compaction() {
        // Free space is already one rectangle (cols 2-3), yet ordered
        // compaction still plans to slide task 2 leftward: the plan is
        // non-empty but cannot improve the fragmentation index.
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 0), 8, 2))
            .unwrap();
        a.allocate_at(2, Rect::new(ClbCoord::new(0, 4), 8, 4))
            .unwrap();
        let before = a.fragmentation();
        assert_eq!(before.fragmentation(), 0.0, "one free rectangle");
        let plan = plan_compaction(&a);
        assert!(!plan.is_empty(), "left-pack still wants to move task 2");
        let predicted = predict_metrics(&a, &plan);
        assert_eq!(
            predicted.fragmentation(),
            before.fragmentation(),
            "the cycle would move {} CLBs for nothing",
            plan_cost(&plan).cells
        );
    }

    #[test]
    fn compact_is_idempotent() {
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(2, 4), 2, 2))
            .unwrap();
        compact(&mut a);
        let second = compact(&mut a);
        assert!(second.is_empty(), "second compaction must be a no-op");
    }

    #[test]
    fn make_room_returns_empty_when_fits() {
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 0), 2, 2))
            .unwrap();
        assert_eq!(make_room(&a, 4, 4), Some(Vec::new()));
    }

    #[test]
    fn make_room_prefers_single_move() {
        let mut a = arena_8x8();
        // A 2x2 task stranded in the middle blocks a 8x4 request.
        a.allocate_at(1, Rect::new(ClbCoord::new(3, 3), 2, 2))
            .unwrap();
        let moves = make_room(&a, 8, 4).unwrap();
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].id, 1);
        // Applying the move must open the region.
        let mut scratch = a.clone();
        scratch.relocate(1, moves[0].to).unwrap();
        assert!(!scratch.arena().candidate_origins(8, 4).is_empty());
    }

    #[test]
    fn make_room_falls_back_to_compaction() {
        let mut a = arena_8x8();
        // Three 8x1 walls spread out: a 8x4 region needs >=2 moves.
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 2), 8, 1))
            .unwrap();
        a.allocate_at(2, Rect::new(ClbCoord::new(0, 4), 8, 1))
            .unwrap();
        a.allocate_at(3, Rect::new(ClbCoord::new(0, 6), 8, 1))
            .unwrap();
        let moves = make_room(&a, 8, 5).unwrap();
        assert!(moves.len() >= 2, "single move cannot open 5 columns");
        // Replay on a scratch copy.
        let mut scratch = a.clone();
        for mv in &moves {
            scratch.relocate(mv.id, mv.to).unwrap();
        }
        assert!(!scratch.arena().candidate_origins(8, 5).is_empty());
    }

    #[test]
    fn make_room_impossible_when_area_insufficient() {
        let mut a = arena_8x8();
        a.allocate_at(1, Rect::new(ClbCoord::new(0, 0), 8, 5))
            .unwrap();
        assert_eq!(make_room(&a, 8, 4), None);
    }

    #[test]
    fn plan_cost_sums() {
        let moves = [
            Move {
                id: 1,
                from: Rect::new(ClbCoord::new(0, 4), 2, 2),
                to: Rect::new(ClbCoord::new(0, 0), 2, 2),
            },
            Move {
                id: 2,
                from: Rect::new(ClbCoord::new(4, 4), 1, 1),
                to: Rect::new(ClbCoord::new(4, 3), 1, 1),
            },
        ];
        let cost = plan_cost(&moves);
        assert_eq!(cost.moves, 2);
        assert_eq!(cost.cells, 5);
        assert_eq!(cost.distance, 5);
        assert!(moves[0].to_string().contains("task 1"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn compaction_preserves_tasks_and_never_overlaps(
            specs in proptest::collection::vec((1u16..4, 1u16..4), 0..10))
        {
            let mut a = arena_8x8();
            let mut placed = 0u64;
            for (i, (h, w)) in specs.iter().enumerate() {
                if a.allocate(i as u64, *h, *w, crate::alloc::Strategy::WorstFit).is_ok() {
                    placed += 1;
                }
            }
            let before: Vec<(TaskId, u32)> =
                a.tasks().iter().map(|(id, r)| (*id, r.area())).collect();
            compact(&mut a);
            let after: Vec<(TaskId, u32)> =
                a.tasks().iter().map(|(id, r)| (*id, r.area())).collect();
            prop_assert_eq!(before, after, "tasks and sizes preserved");
            prop_assert_eq!(a.tasks().len() as u64, placed);
            // No overlaps: total occupied equals sum of areas.
            let total: u32 = a.tasks().values().map(Rect::area).sum();
            prop_assert_eq!(64 - a.arena().free_cells(), total);
            // Compaction never increases fragmentation beyond pre-state.
        }

        #[test]
        fn make_room_plans_are_executable(
            specs in proptest::collection::vec((1u16..4, 1u16..4), 1..8),
            req_h in 2u16..6, req_w in 2u16..6)
        {
            let mut a = arena_8x8();
            for (i, (h, w)) in specs.iter().enumerate() {
                let _ = a.allocate(i as u64, *h, *w, crate::alloc::Strategy::WorstFit);
            }
            if let Some(moves) = make_room(&a, req_h, req_w) {
                let mut scratch = a.clone();
                for mv in &moves {
                    scratch.relocate(mv.id, mv.to).unwrap();
                }
                prop_assert!(!scratch.arena().candidate_origins(req_h, req_w).is_empty());
            }
        }
    }
}
