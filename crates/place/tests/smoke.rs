//! Crate-level smoke tests for free-space management.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_place::alloc::Strategy;
use rtm_place::frag::FragMetrics;
use rtm_place::TaskArena;

#[test]
fn allocate_release_with_every_strategy() {
    for strategy in [Strategy::FirstFit, Strategy::BestFit, Strategy::WorstFit] {
        let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
        let rect = arena.allocate(1, 3, 3, strategy).unwrap();
        assert_eq!(rect.area(), 9);
        assert_eq!(arena.arena().free_cells(), 64 - 9);
        arena.release(1).unwrap();
        assert_eq!(arena.arena().free_cells(), 64);
    }
}

#[test]
fn fragmentation_metrics_track_occupancy() {
    let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 8, 8));
    let empty: FragMetrics = arena.fragmentation();
    assert_eq!(empty.free_cells, 64);
    arena.allocate(1, 2, 2, Strategy::FirstFit).unwrap();
    assert_eq!(arena.fragmentation().free_cells, 60);
}
