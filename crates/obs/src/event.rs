//! The deterministic structured event stream.
//!
//! Every event is stamped with *simulated* time ([`Micros`]) and a shard
//! index — never wall clock — so a stream recorded under the parallel
//! fleet engine is byte-identical to one recorded sequentially. The JSONL
//! (de)serializer is hand-rolled (the workspace is offline, no serde):
//! keys are emitted in one fixed order and the parser reads them back
//! positionally, so `parse(line).to_jsonl() == line` by construction.

use rtm_place::frag::FragMetrics;
use rtm_sched::task::Micros;

/// Shard tag used for fleet-level events (routing rejections, epoch
/// boundaries) that are not attributable to any single shard.
pub const FLEET_SHARD: u32 = u32::MAX;

/// Why an arrival was rejected (or dropped) instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request sat queued past its start deadline.
    DeadlinePassed,
    /// Duplicate trace id already resident, or design synthesis failed.
    DuplicateOrSynthesis,
    /// The device had no free region large enough for the shape.
    NoFreeSlots,
    /// A net could not be routed inside the placed region.
    Unroutable,
    /// The load failed for another device-specific reason.
    LoadOther,
    /// No device in the fleet can ever hold the shape (fleet-level).
    Unplaceable,
}

impl RejectReason {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::DeadlinePassed => "deadline_passed",
            RejectReason::DuplicateOrSynthesis => "duplicate_or_synthesis",
            RejectReason::NoFreeSlots => "no_free_slots",
            RejectReason::Unroutable => "unroutable",
            RejectReason::LoadOther => "load_other",
            RejectReason::Unplaceable => "unplaceable",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "deadline_passed" => RejectReason::DeadlinePassed,
            "duplicate_or_synthesis" => RejectReason::DuplicateOrSynthesis,
            "no_free_slots" => RejectReason::NoFreeSlots,
            "unroutable" => RejectReason::Unroutable,
            "load_other" => RejectReason::LoadOther,
            "unplaceable" => RejectReason::Unplaceable,
            _ => return None,
        })
    }
}

/// What happened. Payloads carry only deterministic quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A trace arrival reached a shard (directly or via routing).
    Arrival {
        /// Trace id of the request.
        id: u64,
        /// Requested region height in CLB rows.
        rows: u16,
        /// Requested region width in CLB columns.
        cols: u16,
    },
    /// The arrival could not start immediately and joined the wait queue.
    Enqueued {
        /// Trace id of the request.
        id: u64,
    },
    /// The request left the wait queue (admission retry or cancellation).
    Dequeued {
        /// Trace id of the request.
        id: u64,
        /// Simulated µs spent queued so far.
        waited: Micros,
    },
    /// Admission was decided: an arena region is reserved and accounted,
    /// but no cells, nets or frames have been written yet.
    Reserved {
        /// Trace id of the request.
        id: u64,
        /// Rearrangement moves the seated room plan will execute.
        moves: usize,
    },
    /// A reserved admission finished implementing: design placed, nets
    /// routed, configuration frames written.
    Executed {
        /// Trace id of the request.
        id: u64,
        /// Configuration frames the load wrote.
        frames: usize,
    },
    /// The request was admitted.
    Admitted {
        /// Trace id of the request.
        id: u64,
        /// Simulated µs between submission and admission.
        waited: Micros,
        /// Rearrangement moves executed to open the room.
        moves: usize,
    },
    /// The request was rejected or its load failed terminally.
    Rejected {
        /// Trace id of the request.
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// A function's design was written to the device.
    Load {
        /// Trace id of the request.
        id: u64,
        /// Configuration frames written (function + rearrangement moves).
        frames: usize,
    },
    /// A resident function departed and its region was released.
    Unload {
        /// Trace id of the request.
        id: u64,
    },
    /// A defragmentation cycle executed on the shard.
    DefragCycle {
        /// Fragmentation metrics before the cycle.
        before: FragMetrics,
        /// Fragmentation metrics after the cycle.
        after: FragMetrics,
        /// Functions relocated by the cycle.
        moves: usize,
    },
    /// A resident function was extracted for cross-device migration.
    MigrationOut {
        /// Trace id of the migrating function.
        id: u64,
    },
    /// A migrating function was readmitted on this shard.
    MigrationIn {
        /// Trace id of the migrating function.
        id: u64,
    },
    /// A failed migration was rolled back onto this (source) shard.
    MigrationRestored {
        /// Trace id of the migrating function.
        id: u64,
    },
    /// A resident was extracted off this shard because a higher-tier
    /// arrival preempted it (tiered admission).
    Evicted {
        /// Trace id of the evicted function.
        id: u64,
        /// QoS tier index of the *victim* (0 batch, 1 standard,
        /// 2 interactive).
        tier: u8,
    },
    /// An evicted bundle found no shard with room and was parked in
    /// the fleet's park queue for idle-window readmission
    /// (fleet-level event).
    Parked {
        /// Trace id of the parked function.
        id: u64,
        /// QoS tier index of the parked function.
        tier: u8,
    },
    /// An evicted bundle was readmitted — on a migration-target shard
    /// at eviction time, or from the park queue in a later idle window.
    Readmitted {
        /// Trace id of the readmitted function.
        id: u64,
        /// QoS tier index of the readmitted function.
        tier: u8,
    },
    /// The fleet engine opened a new epoch at this simulated time.
    EpochBoundary,
}

impl EventKind {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::Enqueued { .. } => "enqueued",
            EventKind::Dequeued { .. } => "dequeued",
            EventKind::Reserved { .. } => "reserved",
            EventKind::Executed { .. } => "executed",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Load { .. } => "load",
            EventKind::Unload { .. } => "unload",
            EventKind::DefragCycle { .. } => "defrag_cycle",
            EventKind::MigrationOut { .. } => "migration_out",
            EventKind::MigrationIn { .. } => "migration_in",
            EventKind::MigrationRestored { .. } => "migration_restored",
            EventKind::Evicted { .. } => "evicted",
            EventKind::Parked { .. } => "parked",
            EventKind::Readmitted { .. } => "readmitted",
            EventKind::EpochBoundary => "epoch_boundary",
        }
    }
}

/// One event: simulated timestamp, shard index, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtmEvent {
    /// Simulated time the event happened at.
    pub at: Micros,
    /// Shard index, or [`FLEET_SHARD`] for fleet-level events.
    pub shard: u32,
    /// The payload.
    pub kind: EventKind,
}

fn frag_json(out: &mut String, m: &FragMetrics) {
    out.push_str(&format!(
        "{{\"free_cells\":{},\"largest_rect\":{},\"total_cells\":{}}}",
        m.free_cells, m.largest_rect, m.total_cells
    ));
}

impl RtmEvent {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"at\":{},\"shard\":{},\"kind\":\"{}\"",
            self.at,
            self.shard,
            self.kind.name()
        );
        match &self.kind {
            EventKind::Arrival { id, rows, cols } => {
                s.push_str(&format!(",\"id\":{id},\"rows\":{rows},\"cols\":{cols}"));
            }
            EventKind::Enqueued { id }
            | EventKind::Unload { id }
            | EventKind::MigrationOut { id }
            | EventKind::MigrationIn { id }
            | EventKind::MigrationRestored { id } => {
                s.push_str(&format!(",\"id\":{id}"));
            }
            EventKind::Dequeued { id, waited } => {
                s.push_str(&format!(",\"id\":{id},\"waited\":{waited}"));
            }
            EventKind::Reserved { id, moves } => {
                s.push_str(&format!(",\"id\":{id},\"moves\":{moves}"));
            }
            EventKind::Executed { id, frames } => {
                s.push_str(&format!(",\"id\":{id},\"frames\":{frames}"));
            }
            EventKind::Admitted { id, waited, moves } => {
                s.push_str(&format!(
                    ",\"id\":{id},\"waited\":{waited},\"moves\":{moves}"
                ));
            }
            EventKind::Rejected { id, reason } => {
                s.push_str(&format!(",\"id\":{id},\"reason\":\"{}\"", reason.name()));
            }
            EventKind::Load { id, frames } => {
                s.push_str(&format!(",\"id\":{id},\"frames\":{frames}"));
            }
            EventKind::DefragCycle {
                before,
                after,
                moves,
            } => {
                s.push_str(",\"before\":");
                frag_json(&mut s, before);
                s.push_str(",\"after\":");
                frag_json(&mut s, after);
                s.push_str(&format!(",\"moves\":{moves}"));
            }
            EventKind::Evicted { id, tier }
            | EventKind::Parked { id, tier }
            | EventKind::Readmitted { id, tier } => {
                s.push_str(&format!(",\"id\":{id},\"tier\":{tier}"));
            }
            EventKind::EpochBoundary => {}
        }
        s.push('}');
        s
    }

    /// Parses one JSON line produced by [`RtmEvent::to_jsonl`]. Returns
    /// `None` on any structural deviation — keys are read back in the
    /// exact order the serializer writes them, so a parsed event
    /// re-serializes to the identical line.
    pub fn from_jsonl(line: &str) -> Option<RtmEvent> {
        let mut c = Cursor(line.trim_end_matches(['\r', '\n']));
        c.lit("{\"at\":")?;
        let at = c.u64()?;
        c.lit(",\"shard\":")?;
        let shard = u32::try_from(c.u64()?).ok()?;
        c.lit(",\"kind\":\"")?;
        let kind_name = c.until_quote()?;
        let kind = match kind_name {
            "arrival" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"rows\":")?;
                let rows = u16::try_from(c.u64()?).ok()?;
                c.lit(",\"cols\":")?;
                let cols = u16::try_from(c.u64()?).ok()?;
                EventKind::Arrival { id, rows, cols }
            }
            "enqueued" | "unload" | "migration_out" | "migration_in" | "migration_restored" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                match kind_name {
                    "enqueued" => EventKind::Enqueued { id },
                    "unload" => EventKind::Unload { id },
                    "migration_out" => EventKind::MigrationOut { id },
                    "migration_in" => EventKind::MigrationIn { id },
                    _ => EventKind::MigrationRestored { id },
                }
            }
            "dequeued" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"waited\":")?;
                let waited = c.u64()?;
                EventKind::Dequeued { id, waited }
            }
            "reserved" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"moves\":")?;
                let moves = usize::try_from(c.u64()?).ok()?;
                EventKind::Reserved { id, moves }
            }
            "executed" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"frames\":")?;
                let frames = usize::try_from(c.u64()?).ok()?;
                EventKind::Executed { id, frames }
            }
            "admitted" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"waited\":")?;
                let waited = c.u64()?;
                c.lit(",\"moves\":")?;
                let moves = usize::try_from(c.u64()?).ok()?;
                EventKind::Admitted { id, waited, moves }
            }
            "rejected" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"reason\":\"")?;
                let reason = RejectReason::from_name(c.until_quote()?)?;
                EventKind::Rejected { id, reason }
            }
            "load" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"frames\":")?;
                let frames = usize::try_from(c.u64()?).ok()?;
                EventKind::Load { id, frames }
            }
            "defrag_cycle" => {
                c.lit(",\"before\":")?;
                let before = c.frag()?;
                c.lit(",\"after\":")?;
                let after = c.frag()?;
                c.lit(",\"moves\":")?;
                let moves = usize::try_from(c.u64()?).ok()?;
                EventKind::DefragCycle {
                    before,
                    after,
                    moves,
                }
            }
            "evicted" | "parked" | "readmitted" => {
                c.lit(",\"id\":")?;
                let id = c.u64()?;
                c.lit(",\"tier\":")?;
                let tier = u8::try_from(c.u64()?).ok()?;
                match kind_name {
                    "evicted" => EventKind::Evicted { id, tier },
                    "parked" => EventKind::Parked { id, tier },
                    _ => EventKind::Readmitted { id, tier },
                }
            }
            "epoch_boundary" => EventKind::EpochBoundary,
            _ => return None,
        };
        c.lit("}")?;
        if !c.0.is_empty() {
            return None;
        }
        Some(RtmEvent { at, shard, kind })
    }
}

/// Serializes a whole stream, one event per line, trailing newline on
/// every line — the `--trace` file format.
pub fn to_jsonl_stream(events: &[RtmEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Positional parser over the fixed-key-order encoding.
struct Cursor<'a>(&'a str);

impl<'a> Cursor<'a> {
    fn lit(&mut self, prefix: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(prefix)?;
        Some(())
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self
            .0
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.0.len());
        if end == 0 {
            return None;
        }
        let v = self.0[..end].parse().ok()?;
        self.0 = &self.0[end..];
        Some(v)
    }

    fn until_quote(&mut self) -> Option<&'a str> {
        let end = self.0.find('"')?;
        let s = &self.0[..end];
        self.0 = &self.0[end + 1..];
        Some(s)
    }

    fn frag(&mut self) -> Option<FragMetrics> {
        self.lit("{\"free_cells\":")?;
        let free_cells = u32::try_from(self.u64()?).ok()?;
        self.lit(",\"largest_rect\":")?;
        let largest_rect = u32::try_from(self.u64()?).ok()?;
        self.lit(",\"total_cells\":")?;
        let total_cells = u32::try_from(self.u64()?).ok()?;
        self.lit("}")?;
        Some(FragMetrics {
            free_cells,
            largest_rect,
            total_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<RtmEvent> {
        let frag_a = FragMetrics {
            free_cells: 40,
            largest_rect: 12,
            total_cells: 96,
        };
        let frag_b = FragMetrics {
            free_cells: 40,
            largest_rect: 40,
            total_cells: 96,
        };
        vec![
            RtmEvent {
                at: 0,
                shard: 0,
                kind: EventKind::Arrival {
                    id: 1,
                    rows: 4,
                    cols: 6,
                },
            },
            RtmEvent {
                at: 5,
                shard: 1,
                kind: EventKind::Enqueued { id: 2 },
            },
            RtmEvent {
                at: 9,
                shard: 1,
                kind: EventKind::Dequeued { id: 2, waited: 4 },
            },
            RtmEvent {
                at: 9,
                shard: 1,
                kind: EventKind::Reserved { id: 2, moves: 3 },
            },
            RtmEvent {
                at: 9,
                shard: 1,
                kind: EventKind::Executed { id: 2, frames: 228 },
            },
            RtmEvent {
                at: 9,
                shard: 1,
                kind: EventKind::Admitted {
                    id: 2,
                    waited: 4,
                    moves: 3,
                },
            },
            RtmEvent {
                at: 10,
                shard: 2,
                kind: EventKind::Rejected {
                    id: 3,
                    reason: RejectReason::NoFreeSlots,
                },
            },
            RtmEvent {
                at: 11,
                shard: 0,
                kind: EventKind::Load { id: 1, frames: 228 },
            },
            RtmEvent {
                at: 90,
                shard: 0,
                kind: EventKind::Unload { id: 1 },
            },
            RtmEvent {
                at: 95,
                shard: 2,
                kind: EventKind::DefragCycle {
                    before: frag_a,
                    after: frag_b,
                    moves: 2,
                },
            },
            RtmEvent {
                at: 100,
                shard: 0,
                kind: EventKind::MigrationOut { id: 4 },
            },
            RtmEvent {
                at: 100,
                shard: 1,
                kind: EventKind::MigrationIn { id: 4 },
            },
            RtmEvent {
                at: 101,
                shard: 0,
                kind: EventKind::MigrationRestored { id: 5 },
            },
            RtmEvent {
                at: 110,
                shard: 1,
                kind: EventKind::Evicted { id: 6, tier: 0 },
            },
            RtmEvent {
                at: 110,
                shard: FLEET_SHARD,
                kind: EventKind::Parked { id: 6, tier: 0 },
            },
            RtmEvent {
                at: 115,
                shard: 2,
                kind: EventKind::Readmitted { id: 6, tier: 0 },
            },
            RtmEvent {
                at: 120,
                shard: FLEET_SHARD,
                kind: EventKind::EpochBoundary,
            },
            RtmEvent {
                at: 121,
                shard: FLEET_SHARD,
                kind: EventKind::Rejected {
                    id: 9,
                    reason: RejectReason::Unplaceable,
                },
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_exactly() {
        for e in sample_events() {
            let line = e.to_jsonl();
            let parsed = RtmEvent::from_jsonl(&line).expect("line parses");
            assert_eq!(parsed, e);
            assert_eq!(parsed.to_jsonl(), line, "round-trip is byte-exact");
        }
    }

    #[test]
    fn stream_round_trips_line_by_line() {
        let events = sample_events();
        let text = to_jsonl_stream(&events);
        let parsed: Vec<RtmEvent> = text
            .lines()
            .map(|l| RtmEvent::from_jsonl(l).expect("parses"))
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"at\":1}",
            "{\"at\":x,\"shard\":0,\"kind\":\"epoch_boundary\"}",
            "{\"at\":1,\"shard\":0,\"kind\":\"nope\"}",
            "{\"at\":1,\"shard\":0,\"kind\":\"load\",\"id\":2,\"frames\":3} trailing",
            "{\"at\":1,\"shard\":0,\"kind\":\"rejected\",\"id\":2,\"reason\":\"bogus\"}",
        ] {
            assert!(RtmEvent::from_jsonl(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn every_reason_round_trips() {
        for r in [
            RejectReason::DeadlinePassed,
            RejectReason::DuplicateOrSynthesis,
            RejectReason::NoFreeSlots,
            RejectReason::Unroutable,
            RejectReason::LoadOther,
            RejectReason::Unplaceable,
        ] {
            assert_eq!(RejectReason::from_name(r.name()), Some(r));
        }
    }
}
