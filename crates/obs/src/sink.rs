//! Event sinks: where the deterministic stream goes.
//!
//! The service and fleet layers thread an `Option<&dyn EventSink>`
//! through their hot paths — `None` (or [`NullSink`]) costs one branch
//! and zero allocations. [`EventBuffer`] is the recording sink: it is
//! `Send`-but-not-`Sync` (a `RefCell` inside), which is exactly the
//! shard-locality contract — each buffer belongs to one shard and moves
//! with it onto that shard's worker thread; buffers are only merged on
//! the main thread between epochs, in shard-index order.

use crate::event::{EventKind, RtmEvent};
use rtm_sched::task::Micros;
use std::cell::RefCell;

/// A destination for deterministic events.
///
/// `emit` takes `&self` so sinks can be threaded through non-mutating
/// planning paths; `Send` so a sink can live inside a shard that moves
/// onto a scoped worker thread.
pub trait EventSink: Send {
    /// Records one event at simulated time `at`. The sink supplies the
    /// shard tag (the emitter does not know which shard it is).
    fn emit(&self, at: Micros, kind: EventKind);
}

/// A sink that drops everything — the disabled-tracing path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _at: Micros, _kind: EventKind) {}
}

/// An in-memory recording sink tagged with its shard index.
///
/// Shard-local by design: interior mutability via `RefCell` keeps the
/// buffer `Send` (it moves with its shard) but not `Sync` (two threads
/// can never share one buffer), which the compiler enforces wherever a
/// shard is sent to a worker.
#[derive(Debug, Default)]
pub struct EventBuffer {
    shard: u32,
    events: RefCell<Vec<RtmEvent>>,
}

impl EventBuffer {
    /// Creates an empty buffer whose events are tagged `shard`.
    pub fn new(shard: u32) -> Self {
        EventBuffer {
            shard,
            events: RefCell::new(Vec::new()),
        }
    }

    /// The shard tag stamped onto every event.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// A position marker for [`EventBuffer::truncate`].
    ///
    /// Speculative emitters (e.g. an `Arrival` recorded before the
    /// admission attempt resolves) take a mark first and roll back to it
    /// when the attempt turns out to be a no-op.
    pub fn mark(&self) -> usize {
        self.len()
    }

    /// Rolls the buffer back to a previously taken [`EventBuffer::mark`].
    pub fn truncate(&self, mark: usize) {
        self.events.borrow_mut().truncate(mark);
    }

    /// Drains and returns everything recorded so far, oldest first.
    pub fn take(&self) -> Vec<RtmEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

impl EventSink for EventBuffer {
    fn emit(&self, at: Micros, kind: EventKind) {
        self.events.borrow_mut().push(RtmEvent {
            at,
            shard: self.shard,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_records_in_order_with_its_tag() {
        let buf = EventBuffer::new(3);
        buf.emit(10, EventKind::Enqueued { id: 1 });
        buf.emit(20, EventKind::Unload { id: 1 });
        let events = buf.take();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            RtmEvent {
                at: 10,
                shard: 3,
                kind: EventKind::Enqueued { id: 1 }
            }
        );
        assert_eq!(
            events[1],
            RtmEvent {
                at: 20,
                shard: 3,
                kind: EventKind::Unload { id: 1 }
            }
        );
        assert!(buf.is_empty(), "take drains");
    }

    #[test]
    fn mark_truncate_rolls_back_speculative_events() {
        let buf = EventBuffer::new(0);
        buf.emit(1, EventKind::Enqueued { id: 1 });
        let mark = buf.mark();
        buf.emit(
            2,
            EventKind::Arrival {
                id: 2,
                rows: 1,
                cols: 1,
            },
        );
        buf.truncate(mark);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.take()[0].kind, EventKind::Enqueued { id: 1 });
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.emit(0, EventKind::EpochBoundary);
    }

    #[test]
    fn buffers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<EventBuffer>();
        assert_send::<NullSink>();
    }
}
