//! Wall-clock phase profiling — the one place in the workspace that is
//! allowed to read `Instant`.
//!
//! Everything here measures *wall* time and therefore lives strictly
//! apart from the deterministic event stream and metrics registry: a
//! profiler is never part of a `ServiceReport`/`FleetReport` (which are
//! `PartialEq`-compared across engines and byte-diffed by the CI perf
//! gate), and its output is printed beside the gated counters, never
//! into them. The rtm-lint determinism rule ratchets this boundary: the
//! `Instant` tokens below carry the single `lint-allow.toml` entry, and
//! every other crate routes wall-clock measurement through [`Stopwatch`]
//! or [`PhaseProfiler`].

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Maximum worker threads the per-thread accumulators track.
pub const MAX_WORKERS: usize = 64;

/// The phases of one `FleetService::run` epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Cross-shard event-horizon scan (min over shards + trace peek).
    Horizon,
    /// Shard-local segments (advance/settle sweeps; the parallel part).
    Segments,
    /// Trace delivery and routing edges.
    Routing,
    /// Deferred admission execution (shard-local ticket drains; the
    /// other parallel part).
    Execute,
    /// Fleet defrag trigger and rebalance-migration edges.
    Triggers,
    /// Fragmentation timeline sampling.
    Sampling,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Horizon,
        Phase::Segments,
        Phase::Routing,
        Phase::Execute,
        Phase::Triggers,
        Phase::Sampling,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Horizon => "horizon",
            Phase::Segments => "segments",
            Phase::Routing => "routing",
            Phase::Execute => "execute",
            Phase::Triggers => "triggers",
            Phase::Sampling => "sampling",
        }
    }

    /// True for the phases that run single-threaded between segments —
    /// the "cross-shard edges" of ROADMAP follow-up (a). `Execute` runs
    /// shard-local ticket drains on the workers, so it sits with
    /// `Segments` on the parallel side of the boundary.
    pub fn is_cross_shard_edge(&self) -> bool {
        !matches!(self, Phase::Segments | Phase::Execute)
    }

    fn index(&self) -> usize {
        match self {
            Phase::Horizon => 0,
            Phase::Segments => 1,
            Phase::Routing => 2,
            Phase::Execute => 3,
            Phase::Triggers => 4,
            Phase::Sampling => 5,
        }
    }
}

/// Per-phase and per-worker wall-clock accumulators for the epoch
/// engine. Atomics so worker threads can record segment time through a
/// shared reference while the main thread times the cross-shard edges.
#[derive(Debug)]
pub struct PhaseProfiler {
    phase_ns: [AtomicU64; 6],
    worker_ns: [AtomicU64; MAX_WORKERS],
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler {
            phase_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl PhaseProfiler {
    /// Creates a zeroed profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `phase`; the elapsed wall time is accumulated when
    /// the returned guard drops.
    pub fn start(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard {
            slot: &self.phase_ns[phase.index()],
            started: Instant::now(),
        }
    }

    /// Starts timing worker `worker`'s share of the current segment
    /// phase; accumulates on drop. Workers at or beyond [`MAX_WORKERS`]
    /// fold into the last slot.
    pub fn worker_timer(&self, worker: usize) -> PhaseGuard<'_> {
        PhaseGuard {
            slot: &self.worker_ns[worker.min(MAX_WORKERS - 1)],
            started: Instant::now(),
        }
    }

    /// Accumulated wall nanoseconds for `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()].load(Ordering::Relaxed)
    }

    /// Accumulated wall nanoseconds recorded by worker `worker`.
    pub fn worker_nanos(&self, worker: usize) -> u64 {
        self.worker_ns[worker.min(MAX_WORKERS - 1)].load(Ordering::Relaxed)
    }

    /// Sum over all phases.
    pub fn total_nanos(&self) -> u64 {
        Phase::ALL.iter().map(|p| self.phase_nanos(*p)).sum()
    }

    /// Sum over the single-threaded cross-shard edge phases (everything
    /// except `Segments`).
    pub fn cross_shard_nanos(&self) -> u64 {
        Phase::ALL
            .iter()
            .filter(|p| p.is_cross_shard_edge())
            .map(|p| self.phase_nanos(*p))
            .sum()
    }

    /// The phase-share table: one line of phase percentages plus the
    /// cross-shard edge share, and one line per worker that recorded
    /// time. Wall clock only — printed beside gated output, never into
    /// it.
    pub fn share_table(&self) -> String {
        let total = self.total_nanos();
        let mut out = String::from("    phases:");
        if total == 0 {
            out.push_str(" (no samples)");
            return out;
        }
        let pct = |ns: u64| 100.0 * ns as f64 / total as f64;
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "{} {} {:.1}%",
                if i == 0 { "" } else { " |" },
                phase.name(),
                pct(self.phase_nanos(*phase))
            );
        }
        let _ = write!(
            out,
            " | cross-shard edges {:.1}% of {:.2}s",
            pct(self.cross_shard_nanos()),
            total as f64 / 1e9
        );
        let workers: Vec<(usize, u64)> = (0..MAX_WORKERS)
            .map(|w| (w, self.worker_nanos(w)))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        if workers.len() > 1 {
            let seg: u64 = workers.iter().map(|&(_, ns)| ns).sum();
            out.push_str("\n    workers:");
            for (w, ns) in workers {
                let _ = write!(out, " w{} {:.1}%", w, 100.0 * ns as f64 / seg as f64);
            }
            out.push_str(" (of summed segment time)");
        }
        out
    }
}

/// Accumulates elapsed wall time into one profiler slot on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    slot: &'a AtomicU64,
    started: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.slot.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A plain wall-clock stopwatch — the workspace-wide replacement for
/// ad-hoc `Instant::now()` timing in benches, stress tests and demos.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed wall milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed wall seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_accumulate_into_their_phase() {
        let prof = PhaseProfiler::new();
        {
            let _g = prof.start(Phase::Horizon);
            std::hint::black_box(0u64);
        }
        {
            let _g = prof.start(Phase::Segments);
            std::hint::black_box(0u64);
        }
        assert!(prof.phase_nanos(Phase::Horizon) > 0);
        assert!(prof.phase_nanos(Phase::Segments) > 0);
        assert_eq!(prof.phase_nanos(Phase::Routing), 0);
        assert_eq!(
            prof.total_nanos(),
            Phase::ALL.iter().map(|p| prof.phase_nanos(*p)).sum::<u64>()
        );
    }

    #[test]
    fn cross_shard_share_excludes_segments_and_execute() {
        let prof = PhaseProfiler::new();
        drop(prof.start(Phase::Routing));
        drop(prof.start(Phase::Segments));
        drop(prof.start(Phase::Execute));
        assert_eq!(
            prof.cross_shard_nanos(),
            prof.total_nanos()
                - prof.phase_nanos(Phase::Segments)
                - prof.phase_nanos(Phase::Execute)
        );
        assert!(!Phase::Execute.is_cross_shard_edge());
        assert!(Phase::Routing.is_cross_shard_edge());
    }

    #[test]
    fn worker_timers_land_in_their_slot() {
        let prof = PhaseProfiler::new();
        drop(prof.worker_timer(0));
        drop(prof.worker_timer(2));
        drop(prof.worker_timer(MAX_WORKERS + 7));
        assert!(prof.worker_nanos(0) > 0);
        assert_eq!(prof.worker_nanos(1), 0);
        assert!(prof.worker_nanos(2) > 0);
        assert!(
            prof.worker_nanos(MAX_WORKERS - 1) > 0,
            "overflow folds into last slot"
        );
    }

    #[test]
    fn share_table_handles_empty_and_filled() {
        let prof = PhaseProfiler::new();
        assert!(prof.share_table().contains("no samples"));
        drop(prof.start(Phase::Horizon));
        let table = prof.share_table();
        assert!(table.contains("horizon"));
        assert!(table.contains("cross-shard edges"));
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_ms() >= 0.0);
    }
}
