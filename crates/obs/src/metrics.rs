//! Named counters and log2-bucketed histograms over deterministic
//! quantities.
//!
//! Everything in here is derived from simulated time and counted work —
//! never wall clock — so registries are `PartialEq`-comparable across
//! engines and safe to fold into the CI-gated reports. Maps are
//! `BTreeMap`s: iteration (and `Display`) order is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values whose highest
/// set bit is `i − 1`, i.e. the range `[2^(i−1), 2^i)`; bucket 31 also
/// absorbs everything from `2^30` up.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; 32],
}

impl Histogram {
    /// The bucket a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(31)
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Sample count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The part of `self` accumulated since `base` was a snapshot of it.
    pub fn delta_since(&self, base: &Histogram) -> Histogram {
        let mut d = Histogram {
            count: self.count - base.count,
            sum: self.sum - base.sum,
            buckets: [0; 32],
        };
        for i in 0..32 {
            d.buckets[i] = self.buckets[i] - base.buckets[i];
        }
        d
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for i in 0..32 {
            self.buckets[i] += other.buckets[i];
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} sum={} mean={:.1}",
            self.count,
            self.sum,
            self.mean()
        )?;
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                write!(
                    f,
                    "{}[≥{}]={}",
                    if first { " buckets: " } else { " " },
                    Histogram::bucket_floor(i),
                    n
                )?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A registry of named counters and histograms.
///
/// Names are `&'static str` by policy: the set of metrics is fixed at
/// compile time, and static names keep the hot-path cost to a `BTreeMap`
/// probe with no allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `by`.
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// The part of `self` accumulated since `base` was a snapshot of it
    /// — the same delta pattern `ServiceReport` uses for `PlanStats`.
    pub fn delta_since(&self, base: &MetricsRegistry) -> MetricsRegistry {
        let mut d = MetricsRegistry::new();
        for (&name, &v) in &self.counters {
            let dv = v - base.counter(name);
            if dv > 0 {
                d.counters.insert(name, dv);
            }
        }
        for (&name, h) in &self.histograms {
            let dh = match base.histograms.get(name) {
                Some(b) => h.delta_since(b),
                None => h.clone(),
            };
            if dh.count() > 0 {
                d.histograms.insert(name, dh);
            }
        }
        d
    }

    /// Folds `other` into `self` (counters add, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            self.add(name, v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "    {name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "    {name}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 31);
        for i in 1..31 {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_floor(i)), i);
            assert_eq!(
                Histogram::bucket_index(Histogram::bucket_floor(i + 1) - 1),
                i
            );
        }
    }

    #[test]
    fn observe_accumulates_count_sum_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 5, 5, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1035);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.bucket(11), 1);
    }

    #[test]
    fn delta_and_merge_are_inverse_of_accumulation() {
        let mut reg = MetricsRegistry::new();
        reg.inc("a");
        reg.observe("w", 7);
        let base = reg.clone();
        reg.add("a", 2);
        reg.inc("b");
        reg.observe("w", 9);
        let delta = reg.delta_since(&base);
        assert_eq!(delta.counter("a"), 2);
        assert_eq!(delta.counter("b"), 1);
        assert_eq!(delta.histogram("w").unwrap().count(), 1);
        assert_eq!(delta.histogram("w").unwrap().sum(), 9);

        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, reg, "base + delta == total");
    }

    #[test]
    fn display_is_deterministic_and_name_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.inc("zeta");
        reg.inc("alpha");
        reg.observe("wait", 3);
        let text = reg.to_string();
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta, "counters print in name order");
        assert!(text.contains("wait: count=1 sum=3"));
    }
}
