//! # rtm-obs — observability for the run-time management stack
//!
//! Three strictly separated parts:
//!
//! 1. **Deterministic event stream** ([`event`], [`sink`]) — structured
//!    [`RtmEvent`]s stamped with *simulated* time and shard index,
//!    recorded through the [`EventSink`] trait. Streams are fully
//!    deterministic: the merged stream of a fleet run is byte-identical
//!    between the sequential and parallel engines.
//! 2. **Metrics registry** ([`metrics`]) — named counters and
//!    log2-bucketed histograms over deterministic quantities (queue
//!    wait in simulated µs, frames per load, offer-chain length),
//!    deltaed into `ServiceReport`/`FleetReport`.
//! 3. **Wall-clock phase profiler** ([`profile`]) — per-phase and
//!    per-worker `Instant` accumulators for the epoch engine, printed
//!    beside gated output and never into it. This module is the only
//!    place in the workspace allowed to read wall clock (ratcheted by
//!    rtm-lint's determinism rule).

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::{to_jsonl_stream, EventKind, RejectReason, RtmEvent, FLEET_SHARD};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{Phase, PhaseProfiler, Stopwatch};
pub use sink::{EventBuffer, EventSink, NullSink};
