//! The configuration-port interpreter: plays packet streams into a device.

use crate::crc::ConfigCrc;
use crate::error::BitstreamError;
use crate::packet::{Op, Packet, PacketReader};
use crate::registers::{Command, Register};
use rtm_fpga::bits::BitVec;
use rtm_fpga::config::{BlockType, Frame, FrameAddress};
use rtm_fpga::part::{Part, FRAMES_CLOCK_COLUMN, FRAMES_PER_CLB_COLUMN, FRAMES_PER_IOB_COLUMN};
use rtm_fpga::Device;

/// Frames-per-column for a block type.
pub fn frames_in_column(block: BlockType) -> u16 {
    match block {
        BlockType::Clb => FRAMES_PER_CLB_COLUMN,
        BlockType::Iob => FRAMES_PER_IOB_COLUMN,
        BlockType::Clock => FRAMES_CLOCK_COLUMN,
    }
}

/// The frame address following `far` in configuration order
/// (CLB columns → IOB columns → clock column), or `None` past the end.
pub fn far_increment(part: Part, far: FrameAddress) -> Option<FrameAddress> {
    let mut next = far;
    next.minor += 1;
    if next.minor < frames_in_column(far.block) {
        return Some(next);
    }
    next.minor = 0;
    next.major += 1;
    let cols = match far.block {
        BlockType::Clb => part.clb_cols(),
        BlockType::Iob => 2,
        BlockType::Clock => 1,
    };
    if next.major < cols {
        return Some(next);
    }
    match far.block {
        BlockType::Clb => Some(FrameAddress::iob(0, 0)),
        BlockType::Iob => Some(FrameAddress::clock(0)),
        BlockType::Clock => None,
    }
}

/// Result of applying a bitstream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApplyReport {
    /// Frames actually written to configuration memory (pad frames
    /// excluded).
    pub frames_written: usize,
    /// Frames whose write changed at least one bit.
    pub frames_changed: usize,
    /// Total configuration bits that changed level.
    pub bits_changed: usize,
    /// Words consumed from the stream.
    pub words: usize,
    /// True if a CRC-register write validated the stream.
    pub crc_checked: bool,
}

/// The packet processor of the configuration logic.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Default)]
pub struct ConfigPort {
    far: Option<FrameAddress>,
    cmd: Option<Command>,
    crc: ConfigCrc,
}

impl ConfigPort {
    /// A freshly reset configuration port.
    pub fn new() -> Self {
        ConfigPort::default()
    }

    /// Applies a word stream (dummy + sync + packets) to `dev`.
    ///
    /// # Errors
    ///
    /// Propagates packet decode errors, [`BitstreamError::FlrMismatch`]
    /// for a wrong frame-length register, [`BitstreamError::CrcMismatch`]
    /// on CRC failure, [`BitstreamError::PartialFrame`] for ragged FDRI
    /// payloads and [`BitstreamError::FarOverflow`] for writes past the
    /// device.
    pub fn apply(
        &mut self,
        words: &[u32],
        dev: &mut Device,
    ) -> Result<ApplyReport, BitstreamError> {
        let mut report = ApplyReport {
            words: words.len(),
            ..ApplyReport::default()
        };
        let mut reader = PacketReader::new(words);
        while let Some(packet) = reader.next_packet()? {
            match packet {
                Packet::Type1 {
                    op: Op::Write,
                    reg,
                    data,
                } => {
                    self.register_write(reg, &data, dev, &mut report)?;
                }
                Packet::Type2 {
                    op: Op::Write,
                    data,
                } => {
                    let reg = reader.last_reg().unwrap_or(Register::Fdri);
                    self.register_write(reg, &data, dev, &mut report)?;
                }
                // Reads and NOPs have no effect on the write path.
                _ => {}
            }
        }
        Ok(report)
    }

    fn register_write(
        &mut self,
        reg: Register,
        data: &[u32],
        dev: &mut Device,
        report: &mut ApplyReport,
    ) -> Result<(), BitstreamError> {
        if reg != Register::Crc {
            for w in data {
                self.crc.feed(reg.addr(), *w);
            }
        }
        match reg {
            Register::Flr => {
                let flr = data.first().copied().unwrap_or(0);
                let expect = dev.part().frame_words() as u32;
                if flr != expect {
                    return Err(BitstreamError::FlrMismatch {
                        stream: flr,
                        part: expect,
                    });
                }
            }
            Register::Far => {
                let far = FrameAddress::from_far(data.first().copied().unwrap_or(0));
                dev.config().validate_addr(far)?;
                self.far = Some(far);
            }
            Register::Cmd => {
                let code = data.first().copied().unwrap_or(0);
                self.cmd = Command::from_code(code);
                if self.cmd == Some(Command::RCrc) {
                    self.crc.reset();
                }
            }
            Register::Fdri => {
                self.frame_data_write(data, dev, report)?;
            }
            Register::Crc => {
                let expected = data.first().copied().unwrap_or(0);
                if !self.crc.check(expected) {
                    return Err(BitstreamError::CrcMismatch {
                        computed: self.crc.value(),
                        expected,
                    });
                }
                report.crc_checked = true;
                self.crc.reset();
            }
            // CTL/MASK/COR/IDCODE/LOUT/STAT/FDRO: stateless in the model.
            _ => {}
        }
        Ok(())
    }

    fn frame_data_write(
        &mut self,
        data: &[u32],
        dev: &mut Device,
        report: &mut ApplyReport,
    ) -> Result<(), BitstreamError> {
        let fw = dev.part().frame_words();
        if !data.len().is_multiple_of(fw) {
            return Err(BitstreamError::PartialFrame {
                leftover: data.len() % fw,
            });
        }
        let n_frames = data.len() / fw;
        if n_frames == 0 {
            return Ok(());
        }
        // The last frame flushes the pipeline and is not written.
        let payload_bits = dev.part().frame_payload_bits();
        for i in 0..n_frames.saturating_sub(1) {
            let far = self.far.ok_or(BitstreamError::FarOverflow)?;
            let words = &data[i * fw..(i + 1) * fw];
            let bits = BitVec::from_config_words(words, payload_bits);
            let effect = dev.write_frame(far, Frame::from_bits(bits))?;
            report.frames_written += 1;
            if !effect.changed_bits.is_empty() {
                report.frames_changed += 1;
                report.bits_changed += effect.changed_bits.len();
            }
            self.far = far_increment(dev.part(), far);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DUMMY_WORD, SYNC_WORD};
    use rtm_fpga::geom::ClbCoord;

    fn frame_words_of(dev: &Device, addr: FrameAddress) -> Vec<u32> {
        dev.read_frame(addr).unwrap().as_bits().to_config_words()
    }

    fn build_write(dev: &Device, far: FrameAddress, frames: &[Vec<u32>]) -> Vec<u32> {
        let mut words = vec![DUMMY_WORD, SYNC_WORD];
        Packet::write1(Register::Cmd, Command::RCrc.code()).encode(&mut words);
        Packet::write1(Register::Flr, dev.part().frame_words() as u32).encode(&mut words);
        Packet::write1(Register::Far, far.to_far()).encode(&mut words);
        Packet::write1(Register::Cmd, Command::WCfg.code()).encode(&mut words);
        let mut payload = Vec::new();
        for f in frames {
            payload.extend_from_slice(f);
        }
        // pad frame
        payload.extend(std::iter::repeat_n(0, dev.part().frame_words()));
        Packet::write(Register::Fdri, payload).encode(&mut words);
        words
    }

    #[test]
    fn fdri_writes_frames_with_auto_increment() {
        let part = Part::Xcv50;
        let mut src = Device::new(part);
        let coord = ClbCoord::new(2, 5);
        let mut clb = rtm_fpga::clb::Clb::default();
        clb.cells[0].lut = rtm_fpga::lut::Lut::from_bits(0x8001);
        src.set_clb(coord, clb).unwrap();

        // Copy minors 0..6 of column 5 in one FDRI burst.
        let frames: Vec<Vec<u32>> = (0..6)
            .map(|m| frame_words_of(&src, FrameAddress::clb(5, m)))
            .collect();
        let words = build_write(&src, FrameAddress::clb(5, 0), &frames);

        let mut dst = Device::new(part);
        let report = ConfigPort::new().apply(&words, &mut dst).unwrap();
        assert_eq!(report.frames_written, 6);
        assert_eq!(dst.clb(coord).unwrap(), &clb);
    }

    #[test]
    fn flr_mismatch_rejected() {
        let mut dev = Device::new(Part::Xcv50);
        let mut words = vec![SYNC_WORD];
        Packet::write1(Register::Flr, 99).encode(&mut words);
        let err = ConfigPort::new().apply(&words, &mut dev).unwrap_err();
        assert!(matches!(err, BitstreamError::FlrMismatch { .. }));
    }

    #[test]
    fn crc_validates_stream() {
        let part = Part::Xcv50;
        let dev0 = Device::new(part);
        let frames = vec![frame_words_of(&dev0, FrameAddress::clb(0, 0))];
        let mut words = build_write(&dev0, FrameAddress::clb(0, 0), &frames);
        // Compute the CRC the port will see and append a CRC write.
        let mut crc = ConfigCrc::new();
        {
            let mut reader = PacketReader::new(&words);
            while let Some(p) = reader.next_packet().unwrap() {
                if let Packet::Type1 {
                    op: Op::Write,
                    reg,
                    data,
                } = p
                {
                    if reg == Register::Cmd && data.first() == Some(&Command::RCrc.code()) {
                        crc.reset();
                        continue;
                    }
                    if reg != Register::Crc {
                        for w in &data {
                            crc.feed(reg.addr(), *w);
                        }
                    }
                }
            }
        }
        Packet::write1(Register::Crc, crc.value()).encode(&mut words);
        let mut dev = Device::new(part);
        let report = ConfigPort::new().apply(&words, &mut dev).unwrap();
        assert!(report.crc_checked);

        // Corrupt a payload word: CRC must now fail.
        let n = words.len();
        words[n - 3] ^= 1;
        let mut dev2 = Device::new(part);
        let err = ConfigPort::new().apply(&words, &mut dev2).unwrap_err();
        assert!(matches!(err, BitstreamError::CrcMismatch { .. }));
    }

    #[test]
    fn ragged_fdri_rejected() {
        let mut dev = Device::new(Part::Xcv50);
        let mut words = vec![SYNC_WORD];
        Packet::write1(Register::Far, FrameAddress::clb(0, 0).to_far()).encode(&mut words);
        Packet::write(Register::Fdri, vec![0; 5]).encode(&mut words);
        let err = ConfigPort::new().apply(&words, &mut dev).unwrap_err();
        assert!(matches!(err, BitstreamError::PartialFrame { .. }));
    }

    #[test]
    fn far_increment_walks_whole_device() {
        let part = Part::Xcv50;
        let mut far = FrameAddress::clb(0, 0);
        let mut count = 1u32;
        while let Some(next) = far_increment(part, far) {
            far = next;
            count += 1;
        }
        assert_eq!(count, part.total_frames());
        assert_eq!(far, FrameAddress::clock(FRAMES_CLOCK_COLUMN - 1));
    }

    #[test]
    fn far_crosses_block_boundaries() {
        let part = Part::Xcv50;
        let last_clb = FrameAddress::clb(part.clb_cols() - 1, FRAMES_PER_CLB_COLUMN - 1);
        assert_eq!(far_increment(part, last_clb), Some(FrameAddress::iob(0, 0)));
        let last_iob = FrameAddress::iob(1, FRAMES_PER_IOB_COLUMN - 1);
        assert_eq!(far_increment(part, last_iob), Some(FrameAddress::clock(0)));
        let last = FrameAddress::clock(FRAMES_CLOCK_COLUMN - 1);
        assert_eq!(far_increment(part, last), None);
    }
}
