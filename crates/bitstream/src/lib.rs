//! # rtm-bitstream
//!
//! Configuration bitstreams for the Virtex-class device model: packets and
//! registers, CRC, a configuration-port interpreter, partial-bitstream
//! generation by frame diffing, readback, and a JBits-style high-level API.
//!
//! The paper's tool (§4) "is responsible by the creation of the partial
//! configuration files and carries out the partial and dynamic
//! reconfiguration of the FPGA" — this crate is that machinery. The
//! relocation engine edits a device image through [`jbits::JBits`], then
//! [`partial::PartialBitstream`] captures the minimal set of configuration
//! frames that changed, and [`port::ConfigPort`] plays the resulting packet
//! stream into a device (in hardware this happens through the Boundary
//! Scan interface modelled in `rtm-jtag`).
//!
//! ## Example
//!
//! ```
//! use rtm_fpga::{Device, part::Part, geom::ClbCoord};
//! use rtm_bitstream::jbits::JBits;
//! use rtm_bitstream::port::ConfigPort;
//!
//! # fn main() -> Result<(), rtm_bitstream::BitstreamError> {
//! let mut jb = JBits::new(Device::new(Part::Xcv200));
//! jb.set_lut(ClbCoord::new(1, 2), 0, 0xF0F0)?;
//! let partial = jb.flush()?;          // minimal partial bitstream
//!
//! // Play it into a second (blank) device: they converge.
//! let mut target = Device::new(Part::Xcv200);
//! let report = ConfigPort::new().apply(partial.words(), &mut target)?;
//! assert_eq!(report.frames_written, partial.frame_count());
//! assert_eq!(target.clb(ClbCoord::new(1, 2)).unwrap().cells[0].lut.bits(), 0xF0F0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod jbits;
pub mod packet;
pub mod partial;
pub mod port;
pub mod readback;
pub mod registers;

pub use error::BitstreamError;
pub use partial::PartialBitstream;
