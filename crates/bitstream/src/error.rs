//! Error type for bitstream operations.

use rtm_fpga::FpgaError;
use std::fmt;

/// Errors raised while building, parsing or applying bitstreams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The stream did not begin with the synchronisation word.
    MissingSync,
    /// A packet header could not be decoded.
    BadPacket {
        /// Word offset of the offending header.
        offset: usize,
        /// The raw header word.
        word: u32,
    },
    /// A packet addressed an unknown configuration register.
    BadRegister {
        /// The raw register address.
        addr: u32,
    },
    /// The stream ended inside a packet payload.
    Truncated {
        /// Words still expected when the stream ended.
        missing: usize,
    },
    /// The CRC check failed at an AutoCRC/CRC-register write.
    CrcMismatch {
        /// CRC computed over the received data.
        computed: u32,
        /// CRC carried by the stream.
        expected: u32,
    },
    /// The frame-length register value does not match the part.
    FlrMismatch {
        /// FLR value in the stream.
        stream: u32,
        /// Frame words required by the part.
        part: u32,
    },
    /// FDRI data was not a whole number of frames.
    PartialFrame {
        /// Leftover words.
        leftover: usize,
    },
    /// Frame address ran past the end of the device during auto-increment.
    FarOverflow,
    /// An underlying device-model error.
    Fpga(FpgaError),
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::MissingSync => write!(f, "missing synchronisation word"),
            BitstreamError::BadPacket { offset, word } => {
                write!(f, "undecodable packet header {word:#010X} at word {offset}")
            }
            BitstreamError::BadRegister { addr } => {
                write!(f, "unknown configuration register {addr:#X}")
            }
            BitstreamError::Truncated { missing } => {
                write!(f, "stream truncated, {missing} payload words missing")
            }
            BitstreamError::CrcMismatch { computed, expected } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#X}, stream carries {expected:#X}"
                )
            }
            BitstreamError::FlrMismatch { stream, part } => {
                write!(
                    f,
                    "frame length register {stream} does not match part ({part})"
                )
            }
            BitstreamError::PartialFrame { leftover } => {
                write!(
                    f,
                    "fdri payload not a whole number of frames ({leftover} words left)"
                )
            }
            BitstreamError::FarOverflow => write!(f, "frame address overflow"),
            BitstreamError::Fpga(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for BitstreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitstreamError::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FpgaError> for BitstreamError {
    fn from(e: FpgaError) -> Self {
        BitstreamError::Fpga(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let variants = [
            BitstreamError::MissingSync,
            BitstreamError::BadPacket {
                offset: 3,
                word: 0xDEAD_BEEF,
            },
            BitstreamError::BadRegister { addr: 0x3F },
            BitstreamError::Truncated { missing: 4 },
            BitstreamError::CrcMismatch {
                computed: 1,
                expected: 2,
            },
            BitstreamError::FlrMismatch {
                stream: 10,
                part: 17,
            },
            BitstreamError::PartialFrame { leftover: 3 },
            BitstreamError::FarOverflow,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn fpga_error_converts_and_sources() {
        use std::error::Error;
        let e: BitstreamError = FpgaError::BadFrameAddress { detail: "x".into() }.into();
        assert!(e.source().is_some());
    }
}
