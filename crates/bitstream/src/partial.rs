//! Partial-bitstream generation: the minimal frame set between two
//! configurations.
//!
//! "The partial configuration files that implement the rearrangements
//! defined by the relocation procedure are generated automatically
//! (without designer intervention)" — paper §4. The generator diffs two
//! configuration memories, groups the changed frames into maximal runs of
//! consecutive frame addresses, and emits one FDRI burst per run (plus the
//! pipeline pad frame each burst needs, which is where the real interface
//! overhead comes from).

use crate::crc::ConfigCrc;
use crate::error::BitstreamError;
use crate::packet::{Packet, DUMMY_WORD, SYNC_WORD};
use crate::port::far_increment;
use crate::registers::{Command, Register};
use rtm_fpga::config::{ConfigMemory, FrameAddress};
use rtm_fpga::part::Part;

/// A generated partial configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialBitstream {
    part: Part,
    words: Vec<u32>,
    frames: Vec<FrameAddress>,
    bursts: usize,
}

impl PartialBitstream {
    /// Builds the partial bitstream that transforms configuration `from`
    /// into configuration `to`.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Fpga`] if either memory rejects a frame
    /// read (cannot happen for memories of the same part).
    pub fn diff(from: &ConfigMemory, to: &ConfigMemory) -> Result<Self, BitstreamError> {
        let part = to.part();
        let changed = to.diff_frames(from);
        let fw = part.frame_words();

        let mut words = vec![DUMMY_WORD, SYNC_WORD];
        let mut crc = ConfigCrc::new();
        let mut feed = |reg: Register, data: &[u32], words: &mut Vec<u32>| {
            for w in data {
                crc.feed(reg.addr(), *w);
            }
            Packet::write(reg, data.to_vec()).encode(words);
        };

        Packet::write1(Register::Cmd, Command::RCrc.code()).encode(&mut words);
        feed(Register::Flr, &[fw as u32], &mut words);

        // Group changed frames into runs of consecutive addresses.
        let mut bursts = 0usize;
        let mut i = 0;
        while i < changed.len() {
            let start = changed[i];
            let mut end = i;
            while end + 1 < changed.len()
                && far_increment(part, changed[end]) == Some(changed[end + 1])
            {
                end += 1;
            }
            feed(Register::Far, &[start.to_far()], &mut words);
            feed(Register::Cmd, &[Command::WCfg.code()], &mut words);
            let mut payload = Vec::with_capacity((end - i + 2) * fw);
            for addr in &changed[i..=end] {
                payload.extend(to.read_frame(*addr)?.as_bits().to_config_words());
            }
            // Pipeline pad frame.
            payload.extend(std::iter::repeat_n(0, fw));
            feed(Register::Fdri, &payload, &mut words);
            bursts += 1;
            i = end + 1;
        }

        feed(Register::Cmd, &[Command::LFrm.code()], &mut words);
        let crc_value = crc.value();
        Packet::write1(Register::Crc, crc_value).encode(&mut words);

        Ok(PartialBitstream {
            part,
            words,
            frames: changed,
            bursts,
        })
    }

    /// The part this bitstream targets.
    pub fn part(&self) -> Part {
        self.part
    }

    /// The raw word stream (dummy + sync + packets).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Addresses of the frames this bitstream writes.
    pub fn frames(&self) -> &[FrameAddress] {
        &self.frames
    }

    /// Number of configuration frames written.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of FDRI bursts (each costs one pipeline pad frame).
    pub fn burst_count(&self) -> usize {
        self.bursts
    }

    /// Stream length in bits as shifted through a serial interface.
    pub fn len_bits(&self) -> u64 {
        self.words.len() as u64 * 32
    }

    /// True if the two configurations were already identical.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::ConfigPort;
    use rtm_fpga::clb::Clb;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::lut::Lut;
    use rtm_fpga::Device;

    fn configured_device() -> Device {
        let mut dev = Device::new(Part::Xcv50);
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::from_bits(0xDEAD);
        clb.cells[3].lut = Lut::from_bits(0xBEEF);
        dev.set_clb(ClbCoord::new(4, 4), clb).unwrap();
        dev.set_clb(ClbCoord::new(10, 20), clb).unwrap();
        dev
    }

    #[test]
    fn diff_of_identical_memories_is_empty() {
        let dev = configured_device();
        let p = PartialBitstream::diff(dev.config(), dev.config()).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.frame_count(), 0);
        assert_eq!(p.burst_count(), 0);
    }

    #[test]
    fn applying_diff_converges_devices() {
        let src = configured_device();
        let mut dst = Device::new(Part::Xcv50);
        let p = PartialBitstream::diff(dst.config(), src.config()).unwrap();
        assert!(!p.is_empty());
        let report = ConfigPort::new().apply(p.words(), &mut dst).unwrap();
        assert!(report.crc_checked);
        assert_eq!(report.frames_written, p.frame_count());
        assert!(dst.config().diff_frames(src.config()).is_empty());
        assert_eq!(
            dst.clb(ClbCoord::new(4, 4)).unwrap(),
            src.clb(ClbCoord::new(4, 4)).unwrap()
        );
    }

    #[test]
    fn consecutive_frames_share_a_burst() {
        let mut a = Device::new(Part::Xcv50);
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::from_bits(0xFFFF);
        clb.cells[1].lut = Lut::from_bits(0xFFFF);
        clb.cells[2].lut = Lut::from_bits(0xFFFF);
        clb.cells[3].lut = Lut::from_bits(0xFFFF);
        a.set_clb(ClbCoord::new(0, 7), clb).unwrap();
        let blank = Device::new(Part::Xcv50);
        let p = PartialBitstream::diff(blank.config(), a.config()).unwrap();
        // With all four LUTs written the changed bits span minors 0..=4 of
        // column 7 contiguously: a single FDRI burst.
        assert_eq!(p.burst_count(), 1);
        assert!(p.frame_count() >= 5);
    }

    #[test]
    fn scattered_frames_use_multiple_bursts() {
        let src = configured_device(); // columns 4 and 20
        let blank = Device::new(Part::Xcv50);
        let p = PartialBitstream::diff(blank.config(), src.config()).unwrap();
        // Two columns (4 and 20), and within each column the configured
        // cells (0 and 3) touch non-adjacent minors: four runs in total.
        assert_eq!(p.burst_count(), 4);
    }

    #[test]
    fn reverse_diff_restores_original() {
        let src = configured_device();
        let blank = Device::new(Part::Xcv50);
        // Forward then backward.
        let fwd = PartialBitstream::diff(blank.config(), src.config()).unwrap();
        let mut dev = Device::new(Part::Xcv50);
        ConfigPort::new().apply(fwd.words(), &mut dev).unwrap();
        let back = PartialBitstream::diff(dev.config(), blank.config()).unwrap();
        ConfigPort::new().apply(back.words(), &mut dev).unwrap();
        assert!(dev.config().diff_frames(blank.config()).is_empty());
    }

    #[test]
    fn len_bits_counts_whole_stream() {
        let src = configured_device();
        let blank = Device::new(Part::Xcv50);
        let p = PartialBitstream::diff(blank.config(), src.config()).unwrap();
        assert_eq!(p.len_bits(), p.words().len() as u64 * 32);
        assert!(p.len_bits() > 0);
    }
}
