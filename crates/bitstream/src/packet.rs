//! Configuration packets: the wire format of a bitstream.
//!
//! A bitstream is a sequence of 32-bit words: dummy padding, a sync word,
//! then type-1 packets (register writes/reads with an 11-bit word count)
//! optionally followed by type-2 packets (large payloads for FDRI/FDRO).

use crate::error::BitstreamError;
use crate::registers::Register;
use std::fmt;

/// The synchronisation word that arms the packet processor.
pub const SYNC_WORD: u32 = 0xAA99_5566;
/// Dummy padding word.
pub const DUMMY_WORD: u32 = 0xFFFF_FFFF;

/// Packet opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// No-op header.
    Nop,
    /// Register write.
    Write,
    /// Register read (readback).
    Read,
}

/// A decoded configuration packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Type-1: op on `reg` with inline payload (≤ 2047 words).
    Type1 {
        /// Opcode.
        op: Op,
        /// Target register.
        reg: Register,
        /// Payload words (empty for reads; the count requested is
        /// `word_count`).
        data: Vec<u32>,
    },
    /// Type-2: continuation payload for the register addressed by the
    /// preceding type-1 header.
    Type2 {
        /// Opcode.
        op: Op,
        /// Payload words.
        data: Vec<u32>,
    },
}

impl Packet {
    /// Builds a type-1 register write.
    pub fn write(reg: Register, data: Vec<u32>) -> Packet {
        Packet::Type1 {
            op: Op::Write,
            reg,
            data,
        }
    }

    /// Builds a type-1 single-word register write.
    pub fn write1(reg: Register, word: u32) -> Packet {
        Packet::write(reg, vec![word])
    }

    /// Encodes the packet to words (header + payload).
    ///
    /// Payloads longer than 2047 words are emitted as a zero-count type-1
    /// header followed by a type-2 packet, as on real devices.
    pub fn encode(&self, out: &mut Vec<u32>) {
        match self {
            Packet::Type1 { op, reg, data } => {
                if data.len() <= 0x7FF {
                    out.push(type1_header(*op, *reg, data.len() as u32));
                    out.extend_from_slice(data);
                } else {
                    out.push(type1_header(*op, *reg, 0));
                    out.push(type2_header(*op, data.len() as u32));
                    out.extend_from_slice(data);
                }
            }
            Packet::Type2 { op, data } => {
                out.push(type2_header(*op, data.len() as u32));
                out.extend_from_slice(data);
            }
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Type1 { op, reg, data } => {
                write!(f, "T1 {op:?} {reg} [{} words]", data.len())
            }
            Packet::Type2 { op, data } => write!(f, "T2 {op:?} [{} words]", data.len()),
        }
    }
}

fn op_bits(op: Op) -> u32 {
    match op {
        Op::Nop => 0,
        Op::Read => 1,
        Op::Write => 2,
    }
}

fn op_from_bits(bits: u32) -> Op {
    match bits {
        1 => Op::Read,
        2 => Op::Write,
        _ => Op::Nop,
    }
}

fn type1_header(op: Op, reg: Register, count: u32) -> u32 {
    (0b001 << 29) | (op_bits(op) << 27) | (reg.addr() << 13) | (count & 0x7FF)
}

fn type2_header(op: Op, count: u32) -> u32 {
    (0b010 << 29) | (op_bits(op) << 27) | (count & 0x07FF_FFFF)
}

/// Streaming packet decoder.
///
/// Call [`PacketReader::next_packet`] until it returns `None`.
#[derive(Debug)]
pub struct PacketReader<'a> {
    words: &'a [u32],
    pos: usize,
    synced: bool,
    last_reg: Option<Register>,
}

impl<'a> PacketReader<'a> {
    /// A reader over a raw word stream (dummy words + sync + packets).
    pub fn new(words: &'a [u32]) -> Self {
        PacketReader {
            words,
            pos: 0,
            synced: false,
            last_reg: None,
        }
    }

    /// Current word offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The register addressed by the most recent type-1 header — type-2
    /// payloads implicitly target it.
    pub fn last_reg(&self) -> Option<Register> {
        self.last_reg
    }

    /// Decodes the next packet.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::MissingSync`] if no sync word precedes
    /// the first packet, [`BitstreamError::BadPacket`] for undecodable
    /// headers, [`BitstreamError::BadRegister`] for unknown registers and
    /// [`BitstreamError::Truncated`] if the payload runs past the end.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, BitstreamError> {
        if !self.synced {
            while self.pos < self.words.len() {
                let w = self.words[self.pos];
                self.pos += 1;
                if w == SYNC_WORD {
                    self.synced = true;
                    break;
                }
                if w != DUMMY_WORD {
                    return Err(BitstreamError::MissingSync);
                }
            }
            if !self.synced {
                return if self.pos >= self.words.len() && self.words.is_empty() {
                    Ok(None)
                } else {
                    Err(BitstreamError::MissingSync)
                };
            }
        }
        if self.pos >= self.words.len() {
            return Ok(None);
        }
        let header = self.words[self.pos];
        let offset = self.pos;
        self.pos += 1;
        let ptype = header >> 29;
        match ptype {
            0b001 => {
                let op = op_from_bits((header >> 27) & 0b11);
                let reg_addr = (header >> 13) & 0x3FFF;
                let reg = Register::from_addr(reg_addr)
                    .ok_or(BitstreamError::BadRegister { addr: reg_addr })?;
                let count = (header & 0x7FF) as usize;
                let data = self.take(count, op)?;
                self.last_reg = Some(reg);
                Ok(Some(Packet::Type1 { op, reg, data }))
            }
            0b010 => {
                let op = op_from_bits((header >> 27) & 0b11);
                let count = (header & 0x07FF_FFFF) as usize;
                let data = self.take(count, op)?;
                Ok(Some(Packet::Type2 { op, data }))
            }
            _ => Err(BitstreamError::BadPacket {
                offset,
                word: header,
            }),
        }
    }

    fn take(&mut self, count: usize, op: Op) -> Result<Vec<u32>, BitstreamError> {
        // Read packets carry no inline payload on the write channel.
        if op == Op::Read {
            return Ok(Vec::new());
        }
        if self.pos + count > self.words.len() {
            return Err(BitstreamError::Truncated {
                missing: self.pos + count - self.words.len(),
            });
        }
        let data = self.words[self.pos..self.pos + count].to_vec();
        self.pos += count;
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(packets: &[Packet]) -> Vec<u32> {
        let mut words = vec![DUMMY_WORD, SYNC_WORD];
        for p in packets {
            p.encode(&mut words);
        }
        words
    }

    #[test]
    fn encode_decode_type1() {
        let p = Packet::write(Register::Cmd, vec![7]);
        let words = stream(std::slice::from_ref(&p));
        let mut rd = PacketReader::new(&words);
        assert_eq!(rd.next_packet().unwrap(), Some(p));
        assert_eq!(rd.next_packet().unwrap(), None);
    }

    #[test]
    fn large_payload_uses_type2() {
        let data: Vec<u32> = (0..3000).collect();
        let p = Packet::write(Register::Fdri, data.clone());
        let words = stream(&[p]);
        let mut rd = PacketReader::new(&words);
        let first = rd.next_packet().unwrap().unwrap();
        assert!(matches!(first, Packet::Type1 { ref data, .. } if data.is_empty()));
        assert_eq!(rd.last_reg(), Some(Register::Fdri));
        let second = rd.next_packet().unwrap().unwrap();
        assert!(
            matches!(second, Packet::Type2 { ref data, .. } if data == &(0..3000).collect::<Vec<u32>>())
        );
    }

    #[test]
    fn missing_sync_detected() {
        let words = vec![0x1234_5678];
        let mut rd = PacketReader::new(&words);
        assert_eq!(rd.next_packet(), Err(BitstreamError::MissingSync));
    }

    #[test]
    fn dummies_before_sync_accepted() {
        let words = vec![DUMMY_WORD, DUMMY_WORD, SYNC_WORD];
        let mut rd = PacketReader::new(&words);
        assert_eq!(rd.next_packet().unwrap(), None);
    }

    #[test]
    fn truncated_payload_detected() {
        let mut words = vec![SYNC_WORD];
        words.push(super::type1_header(Op::Write, Register::Fdri, 5));
        words.push(1);
        let mut rd = PacketReader::new(&words);
        assert_eq!(
            rd.next_packet(),
            Err(BitstreamError::Truncated { missing: 4 })
        );
    }

    #[test]
    fn unknown_register_detected() {
        let words = vec![SYNC_WORD, (0b001 << 29) | (2 << 27) | (10 << 13)];
        let mut rd = PacketReader::new(&words);
        assert!(matches!(
            rd.next_packet(),
            Err(BitstreamError::BadRegister { addr: 10 })
        ));
    }

    #[test]
    fn read_packets_have_no_payload() {
        let words = vec![
            SYNC_WORD,
            super::type1_header(Op::Read, Register::Fdro, 100),
        ];
        let mut rd = PacketReader::new(&words);
        let p = rd.next_packet().unwrap().unwrap();
        assert!(
            matches!(p, Packet::Type1 { op: Op::Read, reg: Register::Fdro, ref data } if data.is_empty())
        );
    }

    #[test]
    fn empty_stream_yields_none() {
        let mut rd = PacketReader::new(&[]);
        assert_eq!(rd.next_packet().unwrap(), None);
    }
}
