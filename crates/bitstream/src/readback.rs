//! Configuration readback: retrieving frames from a running device.
//!
//! The relocation procedure reads the original CLB's configuration (and
//! captured state) before copying it to the replica location; the tool
//! also reads back full configurations to keep its recovery copy honest.

use crate::error::BitstreamError;
use crate::packet::{Packet, DUMMY_WORD, SYNC_WORD};
use crate::port::far_increment;
use crate::registers::{Command, Register};
use rtm_fpga::config::{Frame, FrameAddress};
use rtm_fpga::Device;

/// The result of a readback operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Readback {
    /// Address of the first frame read.
    pub start: FrameAddress,
    /// The frames, in configuration order.
    pub frames: Vec<Frame>,
    /// Words shifted out of the device (includes the pipeline pad frame),
    /// used by the interface timing model.
    pub words_shifted: usize,
    /// Words shifted *into* the device to command the readback.
    pub command_words: usize,
}

/// Builds the command stream that requests `count` frames starting at
/// `start` (FAR write, RCFG command, FDRO read header).
pub fn build_readback_stream(
    part: rtm_fpga::part::Part,
    start: FrameAddress,
    count: usize,
) -> Vec<u32> {
    let mut words = vec![DUMMY_WORD, SYNC_WORD];
    Packet::write1(Register::Far, start.to_far()).encode(&mut words);
    Packet::write1(Register::Cmd, Command::RCfg.code()).encode(&mut words);
    // FDRO read header: count+1 frames (pipeline pad) worth of words.
    let total_words = (count + 1) * part.frame_words();
    let mut hdr = Vec::new();
    Packet::Type1 {
        op: crate::packet::Op::Read,
        reg: Register::Fdro,
        data: Vec::new(),
    }
    .encode(&mut hdr);
    // Patch in the word count (type-1 headers carry up to 2047 words;
    // larger counts use a type-2 header, matching Packet::encode).
    if total_words <= 0x7FF {
        hdr[0] |= total_words as u32;
        words.extend(hdr);
    } else {
        words.extend(hdr);
        words.push((0b010 << 29) | (1 << 27) | total_words as u32);
    }
    words
}

/// Reads `count` frames starting at `start` from `dev`.
///
/// # Errors
///
/// Returns [`BitstreamError::FarOverflow`] if the range runs past the end
/// of the device, or a device error for invalid addresses.
pub fn readback(
    dev: &Device,
    start: FrameAddress,
    count: usize,
) -> Result<Readback, BitstreamError> {
    let mut frames = Vec::with_capacity(count);
    let mut far = Some(start);
    for _ in 0..count {
        let addr = far.ok_or(BitstreamError::FarOverflow)?;
        frames.push(dev.read_frame(addr)?);
        far = far_increment(dev.part(), addr);
    }
    let command_words = build_readback_stream(dev.part(), start, count).len();
    // The device shifts out one pipeline pad frame before real data.
    let words_shifted = (count + 1) * dev.part().frame_words();
    Ok(Readback {
        start,
        frames,
        words_shifted,
        command_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::clb::Clb;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::lut::Lut;
    use rtm_fpga::part::Part;

    #[test]
    fn readback_returns_live_frames() {
        let mut dev = Device::new(Part::Xcv50);
        let mut clb = Clb::default();
        clb.cells[1].lut = Lut::from_bits(0x00FF);
        dev.set_clb(ClbCoord::new(3, 6), clb).unwrap();
        let rb = readback(&dev, FrameAddress::clb(6, 0), 6).unwrap();
        assert_eq!(rb.frames.len(), 6);
        // Reconstructing a device from the frames recovers the CLB.
        let mut dev2 = Device::new(Part::Xcv50);
        for (i, f) in rb.frames.iter().enumerate() {
            dev2.write_frame(FrameAddress::clb(6, i as u16), f.clone())
                .unwrap();
        }
        assert_eq!(dev2.clb(ClbCoord::new(3, 6)).unwrap(), &clb);
    }

    #[test]
    fn readback_counts_pipeline_overhead() {
        let dev = Device::new(Part::Xcv50);
        let rb = readback(&dev, FrameAddress::clb(0, 0), 4).unwrap();
        assert_eq!(rb.words_shifted, 5 * Part::Xcv50.frame_words());
        assert!(rb.command_words > 2);
    }

    #[test]
    fn readback_overflow_detected() {
        let dev = Device::new(Part::Xcv50);
        let last = FrameAddress::clock(7);
        let err = readback(&dev, last, 2).unwrap_err();
        assert!(matches!(err, BitstreamError::FarOverflow));
    }

    #[test]
    fn command_stream_has_sync_and_headers() {
        let words = build_readback_stream(Part::Xcv50, FrameAddress::clb(0, 0), 4);
        assert!(words.contains(&SYNC_WORD));
        assert!(words.len() >= 5);
    }

    #[test]
    fn large_readback_uses_type2() {
        // Enough frames that the word count exceeds a type-1 header.
        let words = build_readback_stream(Part::Xcv50, FrameAddress::clb(0, 0), 300);
        let has_type2 = words.iter().any(|w| w >> 29 == 0b010);
        assert!(has_type2);
    }
}
