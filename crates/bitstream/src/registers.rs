//! Configuration registers and commands of the Virtex configuration logic.

use std::fmt;

/// A configuration register addressable by type-1 packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Register {
    /// CRC check register.
    Crc,
    /// Frame address register.
    Far,
    /// Frame data register, input (write frames).
    Fdri,
    /// Frame data register, output (readback).
    Fdro,
    /// Command register.
    Cmd,
    /// Control register.
    Ctl,
    /// Write mask for CTL.
    Mask,
    /// Status register (read-only).
    Stat,
    /// Legacy output register (daisy chains).
    Lout,
    /// Configuration option register.
    Cor,
    /// Frame length register — must match the part's frame word count.
    Flr,
    /// Device identification register.
    Idcode,
}

impl Register {
    /// The packet address field for this register.
    pub fn addr(self) -> u32 {
        match self {
            Register::Crc => 0,
            Register::Far => 1,
            Register::Fdri => 2,
            Register::Fdro => 3,
            Register::Cmd => 4,
            Register::Ctl => 5,
            Register::Mask => 6,
            Register::Stat => 7,
            Register::Lout => 8,
            Register::Cor => 9,
            Register::Flr => 11,
            Register::Idcode => 12,
        }
    }

    /// Decodes a packet address field.
    pub fn from_addr(addr: u32) -> Option<Register> {
        Some(match addr {
            0 => Register::Crc,
            1 => Register::Far,
            2 => Register::Fdri,
            3 => Register::Fdro,
            4 => Register::Cmd,
            5 => Register::Ctl,
            6 => Register::Mask,
            7 => Register::Stat,
            8 => Register::Lout,
            9 => Register::Cor,
            11 => Register::Flr,
            12 => Register::Idcode,
            _ => return None,
        })
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Register::Crc => "CRC",
            Register::Far => "FAR",
            Register::Fdri => "FDRI",
            Register::Fdro => "FDRO",
            Register::Cmd => "CMD",
            Register::Ctl => "CTL",
            Register::Mask => "MASK",
            Register::Stat => "STAT",
            Register::Lout => "LOUT",
            Register::Cor => "COR",
            Register::Flr => "FLR",
            Register::Idcode => "IDCODE",
        };
        f.write_str(s)
    }
}

/// A command written to the CMD register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// No operation.
    Null,
    /// Write configuration: FDRI data goes to frames at FAR.
    WCfg,
    /// Read configuration: FDRO sources frames at FAR.
    RCfg,
    /// Begin start-up sequence.
    Start,
    /// Reset CRC register.
    RCrc,
    /// Assert global set/reset.
    AGhigh,
    /// Switch CCLK frequency.
    Switch,
    /// Last frame write flush.
    LFrm,
}

impl Command {
    /// The CMD register encoding.
    pub fn code(self) -> u32 {
        match self {
            Command::Null => 0,
            Command::WCfg => 1,
            Command::RCfg => 4,
            Command::Start => 5,
            Command::RCrc => 7,
            Command::AGhigh => 8,
            Command::Switch => 9,
            Command::LFrm => 3,
        }
    }

    /// Decodes a CMD register value.
    pub fn from_code(code: u32) -> Option<Command> {
        Some(match code {
            0 => Command::Null,
            1 => Command::WCfg,
            3 => Command::LFrm,
            4 => Command::RCfg,
            5 => Command::Start,
            7 => Command::RCrc,
            8 => Command::AGhigh,
            9 => Command::Switch,
            _ => return None,
        })
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Command::Null => "NULL",
            Command::WCfg => "WCFG",
            Command::RCfg => "RCFG",
            Command::Start => "START",
            Command::RCrc => "RCRC",
            Command::AGhigh => "AGHIGH",
            Command::Switch => "SWITCH",
            Command::LFrm => "LFRM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_addr_roundtrip() {
        for r in [
            Register::Crc,
            Register::Far,
            Register::Fdri,
            Register::Fdro,
            Register::Cmd,
            Register::Ctl,
            Register::Mask,
            Register::Stat,
            Register::Lout,
            Register::Cor,
            Register::Flr,
            Register::Idcode,
        ] {
            assert_eq!(Register::from_addr(r.addr()), Some(r));
        }
        assert_eq!(Register::from_addr(10), None);
        assert_eq!(Register::from_addr(99), None);
    }

    #[test]
    fn command_code_roundtrip() {
        for c in [
            Command::Null,
            Command::WCfg,
            Command::RCfg,
            Command::Start,
            Command::RCrc,
            Command::AGhigh,
            Command::Switch,
            Command::LFrm,
        ] {
            assert_eq!(Command::from_code(c.code()), Some(c));
        }
        assert_eq!(Command::from_code(2), None);
    }
}
