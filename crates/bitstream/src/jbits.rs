//! A JBits-style high-level API: typed edits on a device image with
//! incremental partial-bitstream extraction.
//!
//! The paper's tool is "based on the JBits software — a set of Java
//! classes that provide an API to access the Xilinx FPGA bitstream" (§4).
//! [`JBits`] plays the same role here: the relocation engine performs
//! typed edits (LUT contents, cell modes, PIPs, state) and periodically
//! calls [`JBits::flush`] to obtain the partial configuration file that
//! realises the accumulated edits.

use crate::error::BitstreamError;
use crate::partial::PartialBitstream;
use rtm_fpga::cell::LogicCell;
use rtm_fpga::clb::Clb;
use rtm_fpga::config::ConfigMemory;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::routing::Pip;
use rtm_fpga::Device;

/// Typed bitstream editor with change tracking.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct JBits {
    dev: Device,
    baseline: ConfigMemory,
}

impl JBits {
    /// Wraps a device image; the current configuration becomes the flush
    /// baseline.
    pub fn new(dev: Device) -> Self {
        let baseline = dev.config().snapshot();
        JBits { dev, baseline }
    }

    /// Read access to the underlying device.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable access for callers that need raw device operations; such
    /// edits are still captured by [`JBits::flush`] (everything goes
    /// through configuration bits).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.dev
    }

    /// Consumes the editor, returning the device.
    pub fn into_device(self) -> Device {
        self.dev
    }

    /// Sets the truth table of one LUT.
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 4`.
    pub fn set_lut(
        &mut self,
        coord: ClbCoord,
        cell: usize,
        bits: u16,
    ) -> Result<(), BitstreamError> {
        let mut config = self.dev.clb(coord)?.cells[cell];
        config.lut.set_bits(bits);
        self.dev.set_cell(coord, cell, config)?;
        Ok(())
    }

    /// Reads the truth table of one LUT.
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    pub fn lut(&self, coord: ClbCoord, cell: usize) -> Result<u16, BitstreamError> {
        Ok(self.dev.clb(coord)?.cells[cell].lut.bits())
    }

    /// Replaces a full logic-cell configuration.
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    pub fn set_cell(
        &mut self,
        coord: ClbCoord,
        cell: usize,
        config: LogicCell,
    ) -> Result<(), BitstreamError> {
        self.dev.set_cell(coord, cell, config)?;
        Ok(())
    }

    /// Replaces a full CLB configuration.
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    pub fn set_clb(&mut self, coord: ClbCoord, clb: Clb) -> Result<(), BitstreamError> {
        self.dev.set_clb(coord, clb)?;
        Ok(())
    }

    /// Copies the internal configuration of one CLB to another location
    /// (phase 1, step 1 of the relocation procedure). State bits are
    /// *not* copied — state transfer is the relocation engine's job.
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    pub fn copy_clb(&mut self, src: ClbCoord, dst: ClbCoord) -> Result<(), BitstreamError> {
        let clb = *self.dev.clb(src)?;
        self.dev.set_clb(dst, clb)?;
        Ok(())
    }

    /// Activates a PIP.
    ///
    /// # Errors
    ///
    /// Returns a device error for invalid PIPs.
    pub fn add_pip(&mut self, pip: Pip) -> Result<(), BitstreamError> {
        self.dev.add_pip(pip)?;
        Ok(())
    }

    /// Deactivates a PIP.
    ///
    /// # Errors
    ///
    /// Returns a device error if the PIP is not active.
    pub fn remove_pip(&mut self, pip: &Pip) -> Result<(), BitstreamError> {
        self.dev.remove_pip(pip)?;
        Ok(())
    }

    /// Sets a storage-element value through the configuration memory (the
    /// state-capture write of the gated-clock relocation).
    ///
    /// # Errors
    ///
    /// Returns a device error for out-of-bounds coordinates.
    pub fn set_state(
        &mut self,
        coord: ClbCoord,
        cell: usize,
        value: bool,
    ) -> Result<(), BitstreamError> {
        self.dev.set_cell_state(coord, cell, value)?;
        Ok(())
    }

    /// Number of frames that differ from the baseline (the size of the
    /// partial configuration [`JBits::flush`] would emit).
    pub fn pending_frames(&self) -> usize {
        self.dev.config().diff_frames(&self.baseline).len()
    }

    /// Extracts the partial bitstream for all edits since the last flush
    /// (or construction) and advances the baseline.
    ///
    /// # Errors
    ///
    /// Propagates frame-read errors (cannot occur for a well-formed
    /// device).
    pub fn flush(&mut self) -> Result<PartialBitstream, BitstreamError> {
        let partial = PartialBitstream::diff(&self.baseline, self.dev.config())?;
        self.baseline = self.dev.config().snapshot();
        Ok(partial)
    }

    /// Discards pending edits by restoring the baseline image (system
    /// recovery, paper §4: "the program always keeps a complete copy of
    /// the current configuration, enabling system recovery in case of
    /// failure").
    ///
    /// # Errors
    ///
    /// Propagates frame-write errors (cannot occur for a well-formed
    /// device).
    pub fn rollback(&mut self) -> Result<(), BitstreamError> {
        let to_restore = self.baseline.clone();
        for addr in self.dev.config().diff_frames(&to_restore) {
            let frame = to_restore.read_frame(addr)?;
            self.dev.write_frame(addr, frame)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::ConfigPort;
    use rtm_fpga::part::Part;
    use rtm_fpga::routing::{Dir, Wire};

    fn jb() -> JBits {
        JBits::new(Device::new(Part::Xcv50))
    }

    #[test]
    fn lut_edit_tracked_and_flushed() {
        let mut jb = jb();
        jb.set_lut(ClbCoord::new(1, 1), 0, 0xAAAA).unwrap();
        assert_eq!(jb.lut(ClbCoord::new(1, 1), 0).unwrap(), 0xAAAA);
        assert!(jb.pending_frames() > 0);
        let p = jb.flush().unwrap();
        assert!(!p.is_empty());
        assert_eq!(jb.pending_frames(), 0, "flush advances baseline");
    }

    #[test]
    fn flush_applies_to_twin_device() {
        let mut jb = jb();
        jb.set_lut(ClbCoord::new(2, 3), 1, 0x5555).unwrap();
        jb.add_pip(Pip::new(
            ClbCoord::new(2, 3),
            Wire::CellOut(1),
            Wire::Out(Dir::East, 1),
        ))
        .unwrap();
        jb.set_state(ClbCoord::new(2, 3), 1, true).unwrap();
        let p = jb.flush().unwrap();

        let mut twin = Device::new(Part::Xcv50);
        ConfigPort::new().apply(p.words(), &mut twin).unwrap();
        assert_eq!(
            twin.clb(ClbCoord::new(2, 3)).unwrap().cells[1].lut.bits(),
            0x5555
        );
        assert!(twin.has_pip(&Pip::new(
            ClbCoord::new(2, 3),
            Wire::CellOut(1),
            Wire::Out(Dir::East, 1)
        )));
        assert!(twin.cell_state(ClbCoord::new(2, 3), 1).unwrap());
    }

    #[test]
    fn copy_clb_copies_config_not_state() {
        let mut jb = jb();
        let src = ClbCoord::new(0, 0);
        let dst = ClbCoord::new(0, 1);
        jb.set_lut(src, 2, 0xF00D).unwrap();
        jb.set_state(src, 2, true).unwrap();
        jb.copy_clb(src, dst).unwrap();
        assert_eq!(jb.device().clb(dst).unwrap().cells[2].lut.bits(), 0xF00D);
        assert!(
            !jb.device().cell_state(dst, 2).unwrap(),
            "state must not be copied"
        );
    }

    #[test]
    fn rollback_restores_baseline() {
        let mut jb = jb();
        jb.set_lut(ClbCoord::new(4, 4), 0, 0x1234).unwrap();
        jb.flush().unwrap();
        jb.set_lut(ClbCoord::new(4, 4), 0, 0xFFFF).unwrap();
        jb.rollback().unwrap();
        assert_eq!(jb.lut(ClbCoord::new(4, 4), 0).unwrap(), 0x1234);
        assert_eq!(jb.pending_frames(), 0);
    }

    #[test]
    fn empty_flush_for_no_edits() {
        let mut jb = jb();
        let p = jb.flush().unwrap();
        assert!(p.is_empty());
    }
}
