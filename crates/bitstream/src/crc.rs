//! CRC used by the configuration logic to validate register writes.
//!
//! The model uses a 16-bit CCITT polynomial over (register, word) pairs,
//! matching the structure (if not the exact polynomial taps) of the Virtex
//! configuration CRC: every word written to FDRI/FAR/CMD feeds the
//! accumulator, and a write to the CRC register compares.

/// CRC-16-CCITT polynomial.
const POLY: u16 = 0x1021;

/// Running configuration CRC accumulator.
///
/// ```
/// use rtm_bitstream::crc::ConfigCrc;
/// let mut crc = ConfigCrc::new();
/// crc.feed(4, 0x1234_5678);
/// let v = crc.value();
/// assert!(crc.check(v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigCrc {
    acc: u16,
}

impl ConfigCrc {
    /// A reset accumulator (the RCRC command).
    pub fn new() -> Self {
        ConfigCrc { acc: 0 }
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        self.acc = 0;
    }

    /// Feeds one register write (register address + data word).
    pub fn feed(&mut self, reg_addr: u32, word: u32) {
        for byte in word.to_be_bytes() {
            self.feed_byte(byte);
        }
        self.feed_byte((reg_addr & 0xFF) as u8);
    }

    fn feed_byte(&mut self, byte: u8) {
        self.acc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if self.acc & 0x8000 != 0 {
                self.acc = (self.acc << 1) ^ POLY;
            } else {
                self.acc <<= 1;
            }
        }
    }

    /// The current accumulator value (as carried in a CRC-register write).
    pub fn value(&self) -> u32 {
        self.acc as u32
    }

    /// True if `expected` matches the accumulator.
    pub fn check(&self, expected: u32) -> bool {
        self.value() == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_zero() {
        let crc = ConfigCrc::new();
        assert_eq!(crc.value(), 0);
    }

    #[test]
    fn order_sensitive() {
        let mut a = ConfigCrc::new();
        a.feed(2, 0x1111_1111);
        a.feed(2, 0x2222_2222);
        let mut b = ConfigCrc::new();
        b.feed(2, 0x2222_2222);
        b.feed(2, 0x1111_1111);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn register_address_matters() {
        let mut a = ConfigCrc::new();
        a.feed(1, 0xABCD_0123);
        let mut b = ConfigCrc::new();
        b.feed(2, 0xABCD_0123);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn reset_restores_initial() {
        let mut crc = ConfigCrc::new();
        crc.feed(4, 7);
        assert_ne!(crc.value(), 0);
        crc.reset();
        assert_eq!(crc.value(), 0);
    }

    #[test]
    fn deterministic() {
        let mut a = ConfigCrc::new();
        let mut b = ConfigCrc::new();
        for i in 0..100u32 {
            a.feed(2, i.wrapping_mul(0x9E37_79B9));
            b.feed(2, i.wrapping_mul(0x9E37_79B9));
        }
        assert_eq!(a.value(), b.value());
    }
}
