//! Crate-level smoke tests for partial-bitstream diffing.

use rtm_bitstream::PartialBitstream;
use rtm_fpga::cell::LogicCell;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::lut::Lut;
use rtm_fpga::part::Part;
use rtm_fpga::Device;

#[test]
fn identical_configs_diff_to_nothing() {
    let a = Device::new(Part::Xcv50);
    let b = Device::new(Part::Xcv50);
    let p = PartialBitstream::diff(a.config(), b.config()).unwrap();
    assert!(p.is_empty());
    assert_eq!(p.frame_count(), 0);
}

#[test]
fn one_cell_change_yields_a_small_partial() {
    let blank = Device::new(Part::Xcv50);
    let mut dev = Device::new(Part::Xcv50);
    let cfg = LogicCell {
        lut: Lut::constant(true),
        ..LogicCell::default()
    };
    dev.set_cell(ClbCoord::new(2, 2), 0, cfg).unwrap();
    let p = PartialBitstream::diff(blank.config(), dev.config()).unwrap();
    assert!(!p.is_empty());
    assert!(p.frame_count() > 0);
    assert!(p.len_bits() > 0);
    // Partial reconfiguration is the point: far fewer frames than a
    // full-device bitstream.
    assert!(
        p.frame_count() < 100,
        "diff touched {} frames",
        p.frame_count()
    );
}
