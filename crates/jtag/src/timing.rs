//! Configuration-interface timing: turning cycle counts into wall time.
//!
//! The paper's headline cost — 22.6 ms per gated-clock CLB relocation —
//! is a property of the *interface*: the Boundary Scan port shifts one bit
//! per TCK at 20 MHz. The same frame traffic through a SelectMAP-style
//! 8-bit parallel port is ~20× faster; [`ConfigInterface`] models both so
//! the benches can sweep them (DESIGN.md ablation 5).

use std::fmt;

/// A configuration interface with its clock rate and per-clock payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigInterface {
    /// IEEE 1149.1 Boundary Scan: 1 bit per TCK.
    BoundaryScan {
        /// Test clock frequency in Hz (the paper uses 20 MHz).
        tck_hz: u64,
    },
    /// SelectMAP-style parallel port: 8 bits per CCLK.
    SelectMap {
        /// Configuration clock frequency in Hz.
        cclk_hz: u64,
    },
}

impl ConfigInterface {
    /// Boundary Scan at `tck_hz`.
    pub fn boundary_scan(tck_hz: u64) -> Self {
        ConfigInterface::BoundaryScan { tck_hz }
    }

    /// The paper's configuration: Boundary Scan at 20 MHz.
    pub fn paper_default() -> Self {
        ConfigInterface::BoundaryScan { tck_hz: 20_000_000 }
    }

    /// SelectMAP at `cclk_hz`.
    pub fn select_map(cclk_hz: u64) -> Self {
        ConfigInterface::SelectMap { cclk_hz }
    }

    /// Bits transferred per interface clock.
    pub fn bits_per_clock(&self) -> u64 {
        match self {
            ConfigInterface::BoundaryScan { .. } => 1,
            ConfigInterface::SelectMap { .. } => 8,
        }
    }

    /// Interface clock in Hz.
    pub fn clock_hz(&self) -> u64 {
        match self {
            ConfigInterface::BoundaryScan { tck_hz } => *tck_hz,
            ConfigInterface::SelectMap { cclk_hz } => *cclk_hz,
        }
    }

    /// Clock cycles needed to move `bits` payload bits.
    pub fn cycles_for_bits(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bits_per_clock())
    }

    /// Wall-clock seconds for `cycles` interface clocks.
    pub fn transfer_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz() as f64
    }

    /// Wall-clock seconds to move `bits` payload bits.
    pub fn seconds_for_bits(&self, bits: u64) -> f64 {
        self.transfer_seconds(self.cycles_for_bits(bits))
    }
}

impl fmt::Display for ConfigInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigInterface::BoundaryScan { tck_hz } => {
                write!(f, "BoundaryScan@{:.1}MHz", *tck_hz as f64 / 1e6)
            }
            ConfigInterface::SelectMap { cclk_hz } => {
                write!(f, "SelectMAP@{:.1}MHz", *cclk_hz as f64 / 1e6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_20mhz_boundary_scan() {
        let i = ConfigInterface::paper_default();
        assert_eq!(i.clock_hz(), 20_000_000);
        assert_eq!(i.bits_per_clock(), 1);
    }

    #[test]
    fn boundary_scan_bit_per_cycle() {
        let i = ConfigInterface::boundary_scan(20_000_000);
        assert_eq!(i.cycles_for_bits(1000), 1000);
        let t = i.seconds_for_bits(20_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn selectmap_is_8x_denser() {
        let bs = ConfigInterface::boundary_scan(20_000_000);
        let sm = ConfigInterface::select_map(20_000_000);
        assert_eq!(sm.cycles_for_bits(1600), bs.cycles_for_bits(1600) / 8);
    }

    #[test]
    fn ceil_division_on_partial_bytes() {
        let sm = ConfigInterface::select_map(1);
        assert_eq!(sm.cycles_for_bits(9), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ConfigInterface::paper_default().to_string(),
            "BoundaryScan@20.0MHz"
        );
    }
}
