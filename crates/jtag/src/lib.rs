//! # rtm-jtag
//!
//! IEEE 1149.1 (Boundary Scan / JTAG) model: the 16-state TAP controller,
//! instruction and data scans, the Virtex configuration instructions
//! (CFG_IN / CFG_OUT), and a cycle-exact timing model.
//!
//! The paper performs every reconfiguration through this interface: "the
//! average relocation time of each CLB implementing synchronous
//! gated-clock circuits is about 22.6 ms, when the Boundary Scan
//! infrastructure is used to perform the reconfiguration, at a test clock
//! frequency of 20 MHz" (§2). The timing model here — TCK cycles counted
//! by an explicitly stepped TAP state machine — is what the `rtm-core`
//! cost model multiplies out to reproduce that number.
//!
//! ## Example
//!
//! ```
//! use rtm_jtag::{JtagPort, Instruction, timing::ConfigInterface};
//! use rtm_fpga::{Device, part::Part};
//!
//! # fn main() -> Result<(), rtm_jtag::JtagError> {
//! let mut port = JtagPort::new(Part::Xcv200);
//! let idcode = port.read_idcode()?;
//! assert_eq!(idcode, Part::Xcv200.idcode());
//!
//! // Cycle accounting feeds the timing model.
//! let iface = ConfigInterface::boundary_scan(20_000_000);
//! let secs = iface.transfer_seconds(port.tck_cycles());
//! assert!(secs > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chain;
pub mod error;
pub mod instruction;
pub mod tap;
pub mod timing;

pub use chain::JtagPort;
pub use error::JtagError;
pub use instruction::Instruction;
pub use tap::{TapController, TapState};
