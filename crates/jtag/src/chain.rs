//! The JTAG port: instruction/data scans against a device, with exact
//! TCK cycle accounting for the timing model.

use crate::error::JtagError;
use crate::instruction::{Instruction, IR_LENGTH};
use crate::tap::{TapController, TapState};
use rtm_bitstream::port::{ApplyReport, ConfigPort};
use rtm_bitstream::readback::{build_readback_stream, readback, Readback};
use rtm_fpga::config::FrameAddress;
use rtm_fpga::part::Part;
use rtm_fpga::Device;

/// A single-device Boundary Scan chain with configuration access.
///
/// Every operation walks the real TAP state machine edge by edge, so
/// [`JtagPort::tck_cycles`] is the exact cycle count a hardware cable
/// would spend — the basis of the paper's 22.6 ms figure.
#[derive(Debug)]
pub struct JtagPort {
    part: Part,
    tap: TapController,
    ir: Option<Instruction>,
}

impl JtagPort {
    /// A port attached to a single device of type `part`, with the TAP
    /// reset and parked in Run-Test/Idle.
    pub fn new(part: Part) -> Self {
        let mut tap = TapController::new();
        tap.reset();
        tap.step(false); // -> Run-Test/Idle
        JtagPort {
            part,
            tap,
            ir: None,
        }
    }

    /// The attached part.
    pub fn part(&self) -> Part {
        self.part
    }

    /// Total TCK cycles consumed since construction.
    pub fn tck_cycles(&self) -> u64 {
        self.tap.tck_cycles()
    }

    /// Resets the cycle counter by rebuilding the port (parked in RTI).
    pub fn reset_accounting(&mut self) {
        *self = JtagPort::new(self.part);
    }

    /// The currently loaded instruction.
    pub fn instruction(&self) -> Option<Instruction> {
        self.ir
    }

    /// Shifts an instruction into the IR.
    pub fn load_instruction(&mut self, instr: Instruction) {
        self.tap.goto(TapState::ShiftIr);
        // IR_LENGTH bits: the last one is clocked on the Exit1 transition.
        for _ in 0..IR_LENGTH - 1 {
            self.tap.step(false);
        }
        self.tap.step(true); // last bit + Exit1-IR
        self.tap.goto(TapState::RunTestIdle);
        self.ir = Some(instr);
    }

    /// Shifts `bits` data bits through the selected DR and returns to
    /// Run-Test/Idle. Returns the TCK cycles the scan consumed.
    ///
    /// # Errors
    ///
    /// Returns [`JtagError::NoInstruction`] if no instruction is loaded.
    pub fn scan_dr(&mut self, bits: usize) -> Result<u64, JtagError> {
        if self.ir.is_none() {
            return Err(JtagError::NoInstruction);
        }
        let before = self.tap.tck_cycles();
        self.tap.goto(TapState::ShiftDr);
        if bits > 0 {
            for _ in 0..bits - 1 {
                self.tap.step(false);
            }
            self.tap.step(true); // last bit + Exit1-DR
        } else {
            self.tap.step(true);
        }
        self.tap.goto(TapState::RunTestIdle);
        Ok(self.tap.tck_cycles() - before)
    }

    /// Reads the 32-bit IDCODE register.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed part; the `Result` mirrors hardware
    /// drivers.
    pub fn read_idcode(&mut self) -> Result<u32, JtagError> {
        self.load_instruction(Instruction::Idcode);
        self.scan_dr(32)?;
        Ok(self.part.idcode())
    }

    /// Plays a configuration word stream into `dev` through CFG_IN,
    /// walking the TAP for every bit shifted.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the packet processor.
    pub fn configure(&mut self, words: &[u32], dev: &mut Device) -> Result<ApplyReport, JtagError> {
        self.load_instruction(Instruction::CfgIn);
        self.scan_dr(words.len() * 32)?;
        let report = ConfigPort::new().apply(words, dev)?;
        Ok(report)
    }

    /// Reads `count` frames starting at `start` through CFG_IN (command)
    /// and CFG_OUT (data), accounting both scans.
    ///
    /// # Errors
    ///
    /// Propagates readback errors (overflow, bad addresses).
    pub fn read_frames(
        &mut self,
        dev: &Device,
        start: FrameAddress,
        count: usize,
    ) -> Result<Readback, JtagError> {
        let cmd = build_readback_stream(dev.part(), start, count);
        self.load_instruction(Instruction::CfgIn);
        self.scan_dr(cmd.len() * 32)?;
        let rb = readback(dev, start, count)?;
        self.load_instruction(Instruction::CfgOut);
        self.scan_dr(rb.words_shifted * 32)?;
        Ok(rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_bitstream::PartialBitstream;
    use rtm_fpga::clb::Clb;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::lut::Lut;

    #[test]
    fn idcode_roundtrip() {
        let mut port = JtagPort::new(Part::Xcv200);
        assert_eq!(port.read_idcode().unwrap(), Part::Xcv200.idcode());
        assert!(port.tck_cycles() > 32);
    }

    #[test]
    fn scan_requires_instruction() {
        let mut port = JtagPort::new(Part::Xcv50);
        assert_eq!(port.scan_dr(8), Err(JtagError::NoInstruction));
    }

    #[test]
    fn dr_scan_cycle_cost_is_linear_in_bits() {
        let mut port = JtagPort::new(Part::Xcv50);
        port.load_instruction(Instruction::Bypass);
        let c100 = port.scan_dr(100).unwrap();
        let c1100 = port.scan_dr(1100).unwrap();
        assert_eq!(c1100 - c100, 1000, "each extra bit costs one TCK");
    }

    #[test]
    fn configure_applies_and_counts_cycles() {
        let mut src = Device::new(Part::Xcv50);
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::from_bits(0x0FF0);
        src.set_clb(ClbCoord::new(1, 1), clb).unwrap();
        let blank = Device::new(Part::Xcv50);
        let p = PartialBitstream::diff(blank.config(), src.config()).unwrap();

        let mut port = JtagPort::new(Part::Xcv50);
        let before = port.tck_cycles();
        let mut dst = Device::new(Part::Xcv50);
        let report = port.configure(p.words(), &mut dst).unwrap();
        assert_eq!(report.frames_written, p.frame_count());
        let cycles = port.tck_cycles() - before;
        assert!(
            cycles >= p.len_bits(),
            "must cost at least one TCK per stream bit ({cycles} vs {})",
            p.len_bits()
        );
        assert_eq!(dst.clb(ClbCoord::new(1, 1)).unwrap(), &clb);
    }

    #[test]
    fn readback_counts_in_and_out_scans() {
        let dev = Device::new(Part::Xcv50);
        let mut port = JtagPort::new(Part::Xcv50);
        let before = port.tck_cycles();
        let rb = port.read_frames(&dev, FrameAddress::clb(0, 0), 4).unwrap();
        let cycles = port.tck_cycles() - before;
        assert!(cycles as usize >= rb.words_shifted * 32 + rb.command_words * 32);
    }

    #[test]
    fn reset_accounting_zeroes_counter() {
        let mut port = JtagPort::new(Part::Xcv50);
        port.read_idcode().unwrap();
        port.reset_accounting();
        // Fresh port costs only the initial reset+idle walk.
        assert!(port.tck_cycles() <= 6);
    }
}
