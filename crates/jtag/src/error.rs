//! Error type for Boundary Scan operations.

use rtm_bitstream::BitstreamError;
use std::fmt;

/// Errors raised by the Boundary Scan model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JtagError {
    /// An operation required the TAP to be in Run-Test/Idle.
    NotIdle {
        /// The state the TAP was actually in.
        state: String,
    },
    /// A data scan was attempted with no instruction loaded.
    NoInstruction,
    /// The loaded instruction does not support the attempted operation.
    WrongInstruction {
        /// The loaded instruction.
        loaded: String,
        /// The instruction the operation requires.
        required: String,
    },
    /// An underlying bitstream/configuration error.
    Bitstream(BitstreamError),
}

impl fmt::Display for JtagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JtagError::NotIdle { state } => {
                write!(f, "tap not in run-test/idle (in {state})")
            }
            JtagError::NoInstruction => write!(f, "no instruction loaded"),
            JtagError::WrongInstruction { loaded, required } => {
                write!(f, "instruction {loaded} loaded, {required} required")
            }
            JtagError::Bitstream(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl std::error::Error for JtagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JtagError::Bitstream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BitstreamError> for JtagError {
    fn from(e: BitstreamError) -> Self {
        JtagError::Bitstream(e)
    }
}

impl From<rtm_fpga::FpgaError> for JtagError {
    fn from(e: rtm_fpga::FpgaError) -> Self {
        JtagError::Bitstream(BitstreamError::Fpga(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            JtagError::NotIdle {
                state: "ShiftDr".into(),
            },
            JtagError::NoInstruction,
            JtagError::WrongInstruction {
                loaded: "IDCODE".into(),
                required: "CFG_IN".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
