//! Virtex JTAG instruction register encodings.

use std::fmt;

/// Length of the Virtex instruction register, in bits.
pub const IR_LENGTH: usize = 5;

/// JTAG instructions relevant to configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Shift the 32-bit device identification register.
    Idcode,
    /// Shift configuration data *into* the packet processor.
    CfgIn,
    /// Shift configuration/readback data *out of* the device.
    CfgOut,
    /// Start-up sequencing after configuration.
    Jstart,
    /// One-bit bypass register.
    Bypass,
    /// Sample/preload of the boundary register.
    SamplePreload,
}

impl Instruction {
    /// The 5-bit IR encoding (Virtex values).
    pub fn code(self) -> u8 {
        match self {
            Instruction::Idcode => 0b01001,
            Instruction::CfgIn => 0b00101,
            Instruction::CfgOut => 0b00100,
            Instruction::Jstart => 0b01100,
            Instruction::Bypass => 0b11111,
            Instruction::SamplePreload => 0b00001,
        }
    }

    /// Decodes an IR value.
    pub fn from_code(code: u8) -> Option<Instruction> {
        Some(match code {
            0b01001 => Instruction::Idcode,
            0b00101 => Instruction::CfgIn,
            0b00100 => Instruction::CfgOut,
            0b01100 => Instruction::Jstart,
            0b11111 => Instruction::Bypass,
            0b00001 => Instruction::SamplePreload,
            _ => return None,
        })
    }

    /// Length of the data register this instruction selects, in bits;
    /// `None` for variable-length registers (CFG_IN / CFG_OUT).
    pub fn dr_length(self) -> Option<usize> {
        match self {
            Instruction::Idcode => Some(32),
            Instruction::Bypass => Some(1),
            Instruction::Jstart => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Instruction::Idcode => "IDCODE",
            Instruction::CfgIn => "CFG_IN",
            Instruction::CfgOut => "CFG_OUT",
            Instruction::Jstart => "JSTART",
            Instruction::Bypass => "BYPASS",
            Instruction::SamplePreload => "SAMPLE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for i in [
            Instruction::Idcode,
            Instruction::CfgIn,
            Instruction::CfgOut,
            Instruction::Jstart,
            Instruction::Bypass,
            Instruction::SamplePreload,
        ] {
            assert_eq!(Instruction::from_code(i.code()), Some(i));
            assert!(i.code() < 1 << IR_LENGTH);
        }
        assert_eq!(Instruction::from_code(0b11110), None);
    }

    #[test]
    fn dr_lengths() {
        assert_eq!(Instruction::Idcode.dr_length(), Some(32));
        assert_eq!(Instruction::Bypass.dr_length(), Some(1));
        assert_eq!(Instruction::CfgIn.dr_length(), None);
    }
}
