//! The IEEE 1149.1 TAP controller: the 16-state state machine every
//! Boundary Scan operation walks through, with TCK cycle accounting.

use std::fmt;

/// The sixteen TAP controller states of IEEE 1149.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapState {
    /// Test-Logic-Reset: entered by five TMS=1 clocks from anywhere.
    TestLogicReset,
    /// Run-Test/Idle.
    RunTestIdle,
    /// Select-DR-Scan.
    SelectDrScan,
    /// Capture-DR.
    CaptureDr,
    /// Shift-DR.
    ShiftDr,
    /// Exit1-DR.
    Exit1Dr,
    /// Pause-DR.
    PauseDr,
    /// Exit2-DR.
    Exit2Dr,
    /// Update-DR.
    UpdateDr,
    /// Select-IR-Scan.
    SelectIrScan,
    /// Capture-IR.
    CaptureIr,
    /// Shift-IR.
    ShiftIr,
    /// Exit1-IR.
    Exit1Ir,
    /// Pause-IR.
    PauseIr,
    /// Exit2-IR.
    Exit2Ir,
    /// Update-IR.
    UpdateIr,
}

impl TapState {
    /// The state entered on a rising TCK edge with the given TMS level.
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, true) => TestLogicReset,
            (TestLogicReset, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (RunTestIdle, false) => RunTestIdle,
            (SelectDrScan, true) => SelectIrScan,
            (SelectDrScan, false) => CaptureDr,
            (CaptureDr, true) => Exit1Dr,
            (CaptureDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (Exit1Dr, true) => UpdateDr,
            (Exit1Dr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (PauseDr, false) => PauseDr,
            (Exit2Dr, true) => UpdateDr,
            (Exit2Dr, false) => ShiftDr,
            (UpdateDr, true) => SelectDrScan,
            (UpdateDr, false) => RunTestIdle,
            (SelectIrScan, true) => TestLogicReset,
            (SelectIrScan, false) => CaptureIr,
            (CaptureIr, true) => Exit1Ir,
            (CaptureIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (Exit1Ir, true) => UpdateIr,
            (Exit1Ir, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (PauseIr, false) => PauseIr,
            (Exit2Ir, true) => UpdateIr,
            (Exit2Ir, false) => ShiftIr,
            (UpdateIr, true) => SelectDrScan,
            (UpdateIr, false) => RunTestIdle,
        }
    }
}

impl fmt::Display for TapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A TAP controller instance with TCK accounting.
///
/// ```
/// use rtm_jtag::{TapController, TapState};
/// let mut tap = TapController::new();
/// assert_eq!(tap.state(), TapState::TestLogicReset);
/// tap.step(false); // -> Run-Test/Idle
/// assert_eq!(tap.state(), TapState::RunTestIdle);
/// assert_eq!(tap.tck_cycles(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapController {
    state: TapState,
    tck: u64,
}

impl Default for TapController {
    fn default() -> Self {
        TapController::new()
    }
}

impl TapController {
    /// A controller in Test-Logic-Reset (power-up state).
    pub fn new() -> Self {
        TapController {
            state: TapState::TestLogicReset,
            tck: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// TCK cycles consumed so far.
    pub fn tck_cycles(&self) -> u64 {
        self.tck
    }

    /// Applies one TCK rising edge with the given TMS level.
    pub fn step(&mut self, tms: bool) -> TapState {
        self.state = self.state.next(tms);
        self.tck += 1;
        self.state
    }

    /// Drives the TAP to Test-Logic-Reset (five TMS=1 clocks).
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.step(true);
        }
        debug_assert_eq!(self.state, TapState::TestLogicReset);
    }

    /// Walks the shortest TMS path from the current state to `target`,
    /// returning the number of cycles used.
    ///
    /// # Panics
    ///
    /// Panics if `target` is unreachable within 16 steps (cannot happen:
    /// the TAP graph has diameter < 16).
    pub fn goto(&mut self, target: TapState) -> u64 {
        let before = self.tck;
        // BFS over the 16-state graph for the shortest TMS sequence.
        if self.state == target {
            return 0;
        }
        let path = shortest_path(self.state, target);
        for tms in path {
            self.step(tms);
        }
        self.tck - before
    }
}

fn shortest_path(from: TapState, to: TapState) -> Vec<bool> {
    use std::collections::{HashMap, VecDeque};
    let mut prev: HashMap<TapState, (TapState, bool)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(s) = queue.pop_front() {
        if s == to {
            break;
        }
        for tms in [false, true] {
            let n = s.next(tms);
            if n != from && !prev.contains_key(&n) {
                prev.insert(n, (s, tms));
                queue.push_back(n);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, tms) = prev[&cur];
        path.push(tms);
        cur = p;
    }
    path.reverse();
    assert!(path.len() < 16, "tap path unexpectedly long");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use TapState::*;

    #[test]
    fn five_tms_ones_reset_from_anywhere() {
        // From every reachable state, five TMS=1 edges land in TLR.
        let all = [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ];
        for start in all {
            let mut s = start;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TestLogicReset, "from {start}");
        }
    }

    #[test]
    fn canonical_ir_scan_path() {
        let mut tap = TapController::new();
        tap.step(false); // RTI
        for (tms, expect) in [
            (true, SelectDrScan),
            (true, SelectIrScan),
            (false, CaptureIr),
            (false, ShiftIr),
        ] {
            assert_eq!(tap.step(tms), expect);
        }
        // Shift a few bits, exit, update, back to idle.
        tap.step(false);
        tap.step(false);
        assert_eq!(tap.state(), ShiftIr);
        assert_eq!(tap.step(true), Exit1Ir);
        assert_eq!(tap.step(true), UpdateIr);
        assert_eq!(tap.step(false), RunTestIdle);
    }

    #[test]
    fn goto_reaches_every_state() {
        let all = [
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
            TestLogicReset,
        ];
        for target in all {
            let mut tap = TapController::new();
            tap.goto(target);
            assert_eq!(tap.state(), target);
        }
    }

    #[test]
    fn goto_is_cycle_minimal_for_known_paths() {
        let mut tap = TapController::new();
        tap.goto(RunTestIdle);
        let c = tap.tck_cycles();
        assert_eq!(c, 1, "TLR -> RTI is one TMS=0 edge");
        let used = tap.goto(ShiftDr);
        assert_eq!(used, 3, "RTI -> SelectDR -> CaptureDR -> ShiftDR");
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let mut tap = TapController::new();
        tap.reset();
        assert_eq!(tap.tck_cycles(), 5);
        tap.step(false);
        assert_eq!(tap.tck_cycles(), 6);
    }
}
