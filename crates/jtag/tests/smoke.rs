//! Crate-level smoke tests for the Boundary Scan port.

use rtm_fpga::part::Part;
use rtm_jtag::chain::JtagPort;
use rtm_jtag::tap::{TapController, TapState};

#[test]
fn tap_walks_to_shift_dr_and_back() {
    let mut tap = TapController::new();
    assert_eq!(tap.state(), TapState::TestLogicReset);
    tap.goto(TapState::ShiftDr);
    assert_eq!(tap.state(), TapState::ShiftDr);
    tap.reset();
    assert_eq!(tap.state(), TapState::TestLogicReset);
}

#[test]
fn idcode_reads_and_costs_tck_cycles() {
    let mut port = JtagPort::new(Part::Xcv50);
    let idcode = port.read_idcode().unwrap();
    assert_ne!(idcode, 0);
    assert_ne!(idcode, u32::MAX);
    assert!(port.tck_cycles() > 0, "boundary scan cannot be free");
}
