//! Schedule-invariance net for the parallel fleet engine: for random
//! heterogeneous fleets, scenarios and thread counts, the parallel
//! engine's [`FleetReport`] must be **equal in every field** to the
//! sequential engine's — all counters, per-shard reports, admission
//! logs and the fragmentation timeline. Equality of the whole report
//! (via `PartialEq`) is the strongest statement available: if any
//! thread schedule could leak into an outcome, some field would
//! eventually differ under this net.
//!
//! Why this must hold (the determinism argument, abridged from
//! `rtm_fleet::engine`): shard-local segments (`advance_to`, `settle`)
//! touch only their own shard's state and report, and every
//! cross-shard edge — routing, migration, the fleet defrag trigger,
//! report aggregation — executes sequentially in shard-index order
//! between segments. The thread schedule decides only *when* each
//! shard's segment runs inside an epoch, never *what* it computes.
//!
//! ## CI sizing
//!
//! The CI box is single-core and its debug builds run this workload
//! ~14x slower than release, so the suite scales itself: the debug
//! workspace pass (`cargo test --workspace`) samples one
//! oversubscribed thread count per equality, while `ci.sh` runs the
//! full `{1, 2, 4, 8}` pin in a dedicated release invocation
//! (`cargo test --release -p rtm-fleet --test parallel_determinism`).

use proptest::prelude::*;
use rtm_fleet::rebalance::{RebalancePolicy, UtilizationLevelling, WorstShardDrain};
use rtm_fleet::routing::{standard_policies, FragAware, LeastUtilized, RoundRobin, RoutingPolicy};
use rtm_fleet::{EngineKind, FleetConfig, FleetReport, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

const MENU: [Part; 3] = [Part::Xcv50, Part::Xcv100, Part::Xcv200];

/// Thread counts every equality below is checked under. `1` is the
/// degenerate parallel engine (same executor, no concurrency), the
/// rest oversubscribe small fleets on purpose so work stealing
/// actually interleaves. Debug keeps one oversubscribed count (see
/// the module docs on CI sizing).
fn thread_counts() -> &'static [usize] {
    if cfg!(debug_assertions) {
        &[2]
    } else {
        &[1, 2, 4, 8]
    }
}

/// Random-net routing menu. Best-fit is deliberately absent: its
/// contended runs cost 10-30s each (it re-plans rearrangement on
/// every congested offer), which the deterministic anchor below pins
/// far cheaper than the random net could.
fn policy_by_index(i: usize) -> Box<dyn RoutingPolicy> {
    match i % 3 {
        0 => Box::new(RoundRobin::default()),
        1 => Box::new(LeastUtilized),
        _ => Box::new(FragAware::default()),
    }
}

fn rebalancer_by_index(i: usize) -> Option<Box<dyn RebalancePolicy>> {
    match i % 3 {
        0 => None,
        1 => Some(Box::new(WorstShardDrain::default())),
        _ => Some(Box::new(UtilizationLevelling::default())),
    }
}

/// One full fleet run under `engine`, fresh fleet each time so every
/// engine faces identical initial state. The deterministic event
/// stream is recorded alongside the report and returned serialized:
/// byte equality of the JSONL text is the strongest stream statement
/// available, covering order, timestamps, shard tags and payloads.
fn run_with_engine(
    parts: &[Part],
    policy_sel: usize,
    rebalancer_sel: usize,
    trace: &Trace,
    engine: EngineKind,
) -> (FleetReport, String) {
    let mut config =
        FleetConfig::heterogeneous(parts, ServiceConfig::default()).with_engine(engine);
    if rebalancer_by_index(rebalancer_sel).is_some() {
        config = config.with_rebalance_threshold(0.4);
    }
    let mut fleet = FleetService::new(config, policy_by_index(policy_sel));
    if let Some(r) = rebalancer_by_index(rebalancer_sel) {
        fleet = fleet.with_rebalancer(r);
    }
    fleet.enable_events();
    let report = fleet.run(trace).expect("determinism-net run stays up");
    let stream = rtm_obs::to_jsonl_stream(&fleet.take_events());
    (report, stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 1 } else { 3 }))]
    /// The net itself: random fleet shapes × scenarios × policies ×
    /// rebalancers (migration runs included), every thread count equal
    /// to sequential.
    #[test]
    fn parallel_reports_equal_sequential_over_random_fleets(
        parts_idx in proptest::collection::vec(0usize..3, 2..5),
        scenario_sel in 0usize..3,
        policy_sel in 0usize..3,
        rebalancer_sel in 0usize..3,
        seed in 1u64..500,
    ) {
        let parts: Vec<Part> = parts_idx.iter().map(|&i| MENU[i]).collect();
        let scenario = Scenario::ALL[scenario_sel];
        // copies == devices: full nominal load without the pathological
        // overload tail (the anchors cover overload deterministically).
        let trace = scenario.fleet_trace(Part::Xcv50, parts.len() as u64, seed, 150_000);

        let (sequential, seq_stream) =
            run_with_engine(&parts, policy_sel, rebalancer_sel, &trace, EngineKind::Sequential);
        for &threads in thread_counts() {
            let (parallel, par_stream) = run_with_engine(
                &parts,
                policy_sel,
                rebalancer_sel,
                &trace,
                EngineKind::Parallel { threads },
            );
            prop_assert_eq!(
                &sequential, &parallel,
                "parallel({}) diverged from sequential", threads
            );
            // The event stream is the finer-grained statement: not just
            // end-of-run counters but every intermediate event, in
            // order, byte for byte.
            prop_assert_eq!(
                &seq_stream, &par_stream,
                "event stream diverged under parallel({})", threads
            );
        }
        prop_assert!(!seq_stream.is_empty(), "traced runs must record events");

        // The sum identities hold on the (now provably shared) outcome.
        prop_assert_eq!(
            sequential.admitted()
                + sequential.rejected_deadline()
                + sequential.failures()
                + sequential.cancelled()
                + sequential.queued_at_end()
                + sequential.unplaceable,
            sequential.submitted + sequential.load_failovers,
            "{}", sequential
        );
        prop_assert_eq!(sequential.migrations_in(), sequential.migrations, "{}", sequential);
        prop_assert_eq!(sequential.migrations_out(), sequential.migrations, "{}", sequential);
    }
}

/// The deterministic anchor the proptest samples around: the docs'
/// contended fleet (two XCV50s + an XCV100, adversarial x4) under
/// every standard policy — any regression here reproduces without a
/// seed. This is also where best-fit's expensive contended behaviour
/// is pinned (debug samples the two cheap ends of the menu).
#[test]
fn contended_fleet_is_schedule_invariant_under_every_policy() {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 4, 42, 170_000);
    let policy_count = standard_policies().len();
    let sampled: Vec<usize> = if cfg!(debug_assertions) {
        vec![0, policy_count - 1]
    } else {
        (0..policy_count).collect()
    };

    for i in sampled {
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
        let mut fleet = FleetService::new(config, standard_policies().remove(i));
        let sequential = fleet.run(&trace).unwrap();
        assert!(sequential.admitted() > 0, "contended run must admit");

        for &threads in thread_counts() {
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
                .with_parallel_engine(threads);
            let mut fleet = FleetService::new(config, standard_policies().remove(i));
            let parallel = fleet.run(&trace).unwrap();
            assert_eq!(
                sequential, parallel,
                "policy #{i} diverged under parallel({threads})"
            );
        }
    }
}

/// Migration runs cross shard boundaries mid-epoch — the riskiest path
/// for a parallelism bug — so they get their own deterministic anchor:
/// round-robin + worst-shard-drain on a heterogeneous fleet, with
/// migrations actually observed.
#[test]
fn rebalancing_migrations_are_schedule_invariant() {
    let parts = [Part::Xcv50, Part::Xcv100, Part::Xcv200, Part::Xcv100];
    let trace = Scenario::Bursty.fleet_trace(Part::Xcv50, 4, 250, 150_000);

    let run = |engine: EngineKind| {
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
            .with_rebalance_threshold(0.4)
            .with_engine(engine);
        let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()))
            .with_rebalancer(Box::<WorstShardDrain>::default());
        fleet.run(&trace).unwrap()
    };

    let sequential = run(EngineKind::Sequential);
    assert!(
        sequential.migrations > 0,
        "anchor must actually migrate: {sequential}"
    );
    for &threads in thread_counts() {
        let parallel = run(EngineKind::Parallel { threads });
        assert_eq!(
            sequential, parallel,
            "migration run diverged under parallel({threads})"
        );
    }
}

/// `Parallel { threads: 0 }` (auto sizing) must behave like every
/// pinned thread count — the worker count is a pure throughput knob.
#[test]
fn auto_thread_count_equals_pinned() {
    let parts = [Part::Xcv50, Part::Xcv100];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 3, 7, 150_000);

    let run = |engine: EngineKind| {
        let config =
            FleetConfig::heterogeneous(&parts, ServiceConfig::default()).with_engine(engine);
        let mut fleet = FleetService::new(config, Box::new(FragAware::default()));
        fleet.run(&trace).unwrap()
    };

    let auto = run(EngineKind::Parallel { threads: 0 });
    assert_eq!(auto, run(EngineKind::Sequential));
    if !cfg!(debug_assertions) {
        assert_eq!(auto, run(EngineKind::Parallel { threads: 3 }));
    }
}
