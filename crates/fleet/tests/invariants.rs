//! Fleet invariants: routing can never admit a request no device can
//! hold, and the aggregated [`FleetReport`] accounts every request
//! exactly once.

use proptest::prelude::*;
use rtm_fleet::routing::{BestFitContiguous, FragAware, RoundRobin, RoutingPolicy};
use rtm_fleet::{EngineKind, FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{QosTier, ServiceConfig};
use std::collections::BTreeMap;

/// Every per-request fleet total must balance: what came in either got
/// admitted, rejected (deadline / failure / unplaceable), cancelled by
/// the trace, or is still queued. A device-specific load failure that
/// failed over to another shard accounts the request on *each* shard
/// it touched; `load_failovers` counts exactly those extra
/// accountings, so both identities stay exact.
fn assert_conservation(report: &rtm_fleet::FleetReport) {
    assert_eq!(
        report.admitted()
            + report.rejected_deadline()
            + report.failures()
            + report.cancelled()
            + report.queued_at_end()
            + report.unplaceable,
        report.submitted + report.load_failovers,
        "{report}"
    );
    assert_eq!(
        report.shard_submitted() + report.unplaceable,
        report.submitted + report.load_failovers,
        "{report}"
    );
    // The autopsy counters are subsets of the failure total.
    assert!(
        report.failures_no_slots() + report.failures_unroutable() <= report.failures(),
        "{report}"
    );
    for s in &report.shards {
        assert_eq!(s.routed, s.report.submitted, "routed == hosted: {report}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn routing_never_admits_what_no_device_can_hold(
        parts_idx in proptest::collection::vec(0usize..2, 1..4),
        specs in proptest::collection::vec((2u16..=26, 2u16..=36, 1u64..5), 1..8),
    ) {
        let menu = [Part::Xcv50, Part::Xcv100];
        let parts: Vec<Part> = parts_idx.iter().map(|&i| menu[i]).collect();

        let mut trace = Trace::new("prop");
        let mut dims: BTreeMap<u64, (u16, u16)> = BTreeMap::new();
        for (k, (rows, cols, dur)) in specs.iter().enumerate() {
            let id = k as u64;
            dims.insert(id, (*rows, *cols));
            trace.push(
                id * 100_000,
                TraceEvent::Arrival(Arrival {
                    id,
                    rows: *rows,
                    cols: *cols,
                    duration: Some(dur * 200_000),
                    deadline: None,
                    tier: QosTier::Standard,
                }),
            );
        }
        let fits_somewhere = |r: u16, c: u16| {
            parts.iter().any(|p| r <= p.clb_rows() && c <= p.clb_cols())
        };
        let expected_unplaceable = dims
            .values()
            .filter(|(r, c)| !fits_somewhere(*r, *c))
            .count();

        let policies: [fn() -> Box<dyn RoutingPolicy>; 2] = [
            || Box::new(RoundRobin::default()),
            || Box::new(FragAware::default()),
        ];
        for policy in policies {
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
            let mut fleet = FleetService::new(config, policy());
            let report = fleet.run(&trace).unwrap();

            // The same history through the parallel engine: identical
            // outcome, so every check below covers both engines.
            let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
                .with_parallel_engine(2);
            let mut fleet = FleetService::new(config, policy());
            let parallel = fleet.run(&trace).unwrap();
            prop_assert_eq!(&report, &parallel, "engines diverged");

            prop_assert_eq!(report.unplaceable, expected_unplaceable, "{}", report);
            // The heart of the invariant: every admission landed on a
            // device whose part actually holds the request's shape.
            for (i, shard) in report.shards.iter().enumerate() {
                for adm in &shard.report.admissions {
                    let (r, c) = dims[&adm.trace_id];
                    prop_assert!(
                        r <= parts[i].clb_rows() && c <= parts[i].clb_cols(),
                        "shard {} ({}) admitted a {}x{} request",
                        i, parts[i], r, c
                    );
                }
            }
            assert_conservation(&report);
        }
    }
}

/// The satellite's sum check on a real contended run: three adversarial
/// copies over three devices, every fleet total the exact sum of its
/// per-device counters — under both stepping engines, which must agree
/// exactly.
#[test]
fn fleet_totals_equal_shard_sums_on_a_real_run() {
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 3, 40, 170_000);
    let run = |engine: EngineKind| {
        let config = FleetConfig::homogeneous(3, ServiceConfig::default()).with_engine(engine);
        let mut fleet = FleetService::new(config, Box::new(BestFitContiguous));
        fleet.run(&trace).unwrap()
    };
    let report = run(EngineKind::Sequential);
    assert_eq!(
        report,
        run(EngineKind::Parallel { threads: 2 }),
        "engines diverged on the contended run"
    );

    assert_eq!(report.submitted, trace.arrivals());
    assert_conservation(&report);
    // Spot-check the getters against hand-computed sums.
    assert_eq!(
        report.admitted(),
        report
            .shards
            .iter()
            .map(|s| s.report.admitted)
            .sum::<usize>()
    );
    assert_eq!(
        report.cells_moved(),
        report
            .shards
            .iter()
            .map(|s| s.report.cells_moved)
            .sum::<u64>()
    );
    assert_eq!(
        report.frames_written(),
        report
            .shards
            .iter()
            .map(|s| s.report.frames_written)
            .sum::<u64>()
    );
    assert!(report.admitted() > 0, "{report}");
    // The timeline is time-ordered and covers the run.
    assert!(report.timeline.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(!report.timeline.is_empty());
}
