//! The migration invariant net, spread over the whole fleet stack:
//! random heterogeneous fleets driven through random
//! load/migrate/depart histories must preserve — after *every* step,
//! completed, failed or refused —
//!
//! * function table ⇄ arena sync on every shard (no orphan state, in
//!   particular after any failed migration),
//! * readback equivalence modulo the relocation offset for every
//!   completed migration (cell-config and state bits of every tile of
//!   the function's region),
//! * frame-exact checkpoint restores for every failed migration,
//! * the extended sum identities: fleet-wide
//!   `Σ migrations_in == Σ migrations_out`, per shard
//!   `resident_at_end == admitted − departures + migrations_in −
//!   migrations_out`, and the original conservation identities
//!   untouched.

use proptest::prelude::*;
use rtm_fleet::rebalance::{queue_starved, UtilizationLevelling, WorstShardDrain};
use rtm_fleet::routing::{RoundRobin, RoutingPolicy};
use rtm_fleet::{FleetConfig, FleetService, RebalancePolicy};
use rtm_fpga::config::layout::{tile_bit_location, PIP_BITS_BASE};
use rtm_fpga::geom::Rect;
use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Scenario};
use rtm_service::{
    AdmissionBid, OfferOutcome, QosTier, RuntimeService, ServiceConfig, ServiceReport,
};

const MENU: [Part; 2] = [Part::Xcv50, Part::Xcv100];

/// Readback equivalence modulo the relocation offset: every
/// cell-config and state bit of every tile of the migrated function's
/// region reads the same on the target (translated) as it did on the
/// source before the migration. PIP bits are excluded — nets are
/// re-routed inside the new region and may detour around foreign
/// reservations.
fn assert_readback_equivalent(
    pre: &rtm_fpga::config::ConfigMemory,
    old_region: Rect,
    target: &RuntimeService,
    new_region: Rect,
) {
    let dr = new_region.origin.row as i32 - old_region.origin.row as i32;
    let dc = new_region.origin.col as i32 - old_region.origin.col as i32;
    for old_tile in old_region.iter() {
        let new_tile = old_tile.offset(dr, dc).expect("translated tile on device");
        for k in 0..PIP_BITS_BASE {
            let (a_addr, a_bit) = tile_bit_location(old_tile, k);
            let (b_addr, b_bit) = tile_bit_location(new_tile, k);
            assert_eq!(
                pre.get_bit(a_addr, a_bit).unwrap(),
                target
                    .manager()
                    .device()
                    .config()
                    .get_bit(b_addr, b_bit)
                    .unwrap(),
                "bit {k} of {old_tile} != bit {k} of {new_tile}"
            );
        }
    }
}

fn all_consistent(shards: &[RuntimeService]) -> bool {
    shards.iter().all(|s| s.manager().bookkeeping_consistent())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Direct stepping-API histories: arrivals, explicit migrations
    /// (including a forced duplicate-id failure exercising the restore
    /// path), departures and clock advances, interleaved at random.
    #[test]
    fn migration_histories_preserve_every_invariant(
        parts_idx in proptest::collection::vec(0usize..2, 2..4),
        ops in proptest::collection::vec((0u8..10, 0u16..8, 0u16..8, 0usize..8), 8..20),
    ) {
        let parts: Vec<Part> = parts_idx.iter().map(|&i| MENU[i]).collect();
        let n = parts.len();
        let mut shards: Vec<RuntimeService> = parts
            .iter()
            .map(|p| RuntimeService::new(ServiceConfig::default().with_part(*p)))
            .collect();
        let mut reports: Vec<ServiceReport> =
            (0..n).map(|i| ServiceReport::new(format!("mig#{i}"))).collect();
        let mut next_id = 0u64;
        let mut now = 0u64;
        let mut forced_failure = false;

        for (kind, a, b, sel) in ops {
            now += 20_000;
            match kind {
                // Arrivals (more likely than anything else): daemons
                // with no duration keep the devices loaded.
                0..=4 => {
                    let s = sel % n;
                    let arrival = Arrival {
                        id: next_id,
                        rows: 2 + a % 8,
                        cols: 2 + b % 8,
                        duration: None,
                        deadline: None,
                        tier: QosTier::Standard,
                    };
                    next_id += 1;
                    let _ = shards[s]
                        .admit(now, AdmissionBid::direct(arrival), &mut reports[s])
                        .unwrap();
                }
                // Migrations: pick any resident anywhere, send it to
                // the next shard over (mirroring the fleet's execute
                // path, minus the idle-window gate so the heavy
                // machinery runs as often as possible).
                5..=7 => {
                    let Some(src) = (0..n).map(|i| (i + sel) % n)
                        .find(|&i| shards[i].resident_count() > 0) else { continue };
                    let dst = (src + 1 + b as usize % (n - 1)) % n;
                    if dst == src { continue; }
                    let residents = shards[src].resident_functions();
                    let (tid, fid, old_region) = residents[sel % residents.len()];
                    let Some(plan) =
                        shards[src].manager().plan_migration(fid, shards[dst].manager())
                    else { continue };
                    let bundle = shards[src].migrate_out(tid, &mut reports[src]).unwrap();
                    let room = Some(plan.room().clone());
                    let inbound = shards[dst].migrate_in(now, &bundle, room, &mut reports[dst]);
                    match inbound {
                        Ok(()) => {
                            let new_region = shards[dst]
                                .resident_functions()
                                .into_iter()
                                .find(|(id, _, _)| *id == tid)
                                .expect("migrated function resident on target")
                                .2;
                            assert_readback_equivalent(
                                bundle.extracted().pre_config(),
                                old_region,
                                &shards[dst],
                                new_region,
                            );
                        }
                        Err(_) => {
                            shards[src].restore_migrated(&bundle, &mut reports[src]).unwrap();
                            prop_assert!(shards[src]
                                .manager()
                                .device()
                                .config()
                                .diff_frames(bundle.extracted().pre_config())
                                .is_empty(), "restore must be frame-exact");
                        }
                    }
                }
                // A forced failed migration (duplicate id on the
                // target): the readmission is refused after the
                // extraction, driving the checkpoint-restore path.
                8 if n > 1 && !forced_failure => {
                    let Some(src) = (0..n).find(|&i| shards[i].resident_count() > 0)
                    else { continue };
                    let dst = (src + 1) % n;
                    let (tid, _, _) = shards[src].resident_functions()[0];
                    // Twin the id on the target (possible because the
                    // shards are driven directly, without the fleet's
                    // owner routing).
                    let twin = Arrival {
                        id: tid, rows: 2, cols: 2, duration: None, deadline: None,
                        tier: QosTier::Standard,
                    };
                    if shards[dst]
                        .admit(now, AdmissionBid::direct(twin), &mut reports[dst])
                        .unwrap()
                        != OfferOutcome::Admitted { continue; }
                    forced_failure = true;
                    let restored_before = reports[src].migrations_restored;
                    let bundle = shards[src].migrate_out(tid, &mut reports[src]).unwrap();
                    let err = shards[dst].migrate_in(now, &bundle, None, &mut reports[dst]);
                    prop_assert!(err.is_err(), "duplicate ids must be refused");
                    shards[src].restore_migrated(&bundle, &mut reports[src]).unwrap();
                    prop_assert!(shards[src]
                        .manager()
                        .device()
                        .config()
                        .diff_frames(bundle.extracted().pre_config())
                        .is_empty(), "failed migration restores frame-exactly");
                    prop_assert_eq!(reports[src].migrations_restored, restored_before + 1);
                }
                // Departures of a random resident.
                _ => {
                    let Some(s) = (0..n).map(|i| (i + sel) % n)
                        .find(|&i| shards[i].resident_count() > 0) else { continue };
                    let (tid, _, _) = shards[s].resident_functions()[sel % shards[s].resident_count()];
                    shards[s].depart(tid, &mut reports[s]).unwrap();
                }
            }
            // The net: after *every* op, every shard's function table,
            // arena and device agree.
            prop_assert!(all_consistent(&shards), "orphan state after op");
        }

        // Extended sum identities, exactly.
        for (s, rep) in shards.iter_mut().zip(&mut reports) {
            s.finish(rep);
        }
        let (mut total_in, mut total_out) = (0usize, 0usize);
        for rep in &reports {
            total_in += rep.migrations_in;
            total_out += rep.migrations_out;
            prop_assert_eq!(
                rep.resident_at_end as i64,
                rep.admitted as i64 - rep.departures as i64
                    + rep.migrations_in as i64 - rep.migrations_out as i64,
                "per-shard residency identity: {}", rep
            );
        }
        prop_assert_eq!(total_in, total_out, "fleet-wide in/out identity");
    }

    /// The same identities through the real fleet loop: random
    /// heterogeneous fleets with a rebalancer installed, replaying
    /// scenario traces — every original conservation identity must
    /// still hold exactly, extended by the migration counters.
    #[test]
    fn fleet_runs_with_rebalancing_keep_the_extended_identities(
        parts_idx in proptest::collection::vec(0usize..2, 2..4),
        scenario_sel in 0usize..3,
        rebalancer_sel in 0usize..2,
        seed in 1u64..500,
    ) {
        let parts: Vec<Part> = parts_idx.iter().map(|&i| MENU[i]).collect();
        let scenario = Scenario::ALL[scenario_sel];
        let trace = scenario.fleet_trace(Part::Xcv50, parts.len() as u64 + 1, seed, 150_000);
        let rebalancer: Box<dyn RebalancePolicy> = if rebalancer_sel == 0 {
            Box::new(WorstShardDrain::default())
        } else {
            Box::new(UtilizationLevelling::default())
        };
        let policy: Box<dyn RoutingPolicy> = Box::new(RoundRobin::default());
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
            .with_rebalance_threshold(0.35);
        let mut fleet = FleetService::new(config, policy).with_rebalancer(rebalancer);
        let report = fleet.run(&trace).unwrap();

        // The same history through the parallel engine: migrations are
        // the riskiest cross-shard edge, so this net also pins the
        // engines' equality before checking the identities (which then
        // hold for both).
        let rebalancer: Box<dyn RebalancePolicy> = if rebalancer_sel == 0 {
            Box::new(WorstShardDrain::default())
        } else {
            Box::new(UtilizationLevelling::default())
        };
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
            .with_rebalance_threshold(0.35)
            .with_parallel_engine(2);
        let mut parallel_fleet = FleetService::new(config, Box::new(RoundRobin::default()))
            .with_rebalancer(rebalancer);
        let parallel = parallel_fleet.run(&trace).unwrap();
        prop_assert_eq!(&report, &parallel, "engines diverged on a migration run");

        // Original conservation identities, untouched by migration.
        prop_assert_eq!(
            report.admitted()
                + report.rejected_deadline()
                + report.failures()
                + report.cancelled()
                + report.queued_at_end()
                + report.unplaceable,
            report.submitted + report.load_failovers,
            "{}", report
        );
        prop_assert_eq!(
            report.shard_submitted() + report.unplaceable,
            report.submitted + report.load_failovers,
            "{}", report
        );
        // Extended identities.
        prop_assert_eq!(report.migrations_in(), report.migrations, "{}", report);
        prop_assert_eq!(report.migrations_out(), report.migrations, "{}", report);
        prop_assert_eq!(report.migrations_restored(), report.migrations_failed, "{}", report);
        for s in &report.shards {
            prop_assert_eq!(s.routed, s.report.submitted, "{}", report);
            prop_assert_eq!(
                s.report.resident_at_end as i64,
                s.report.admitted as i64 - s.report.departures as i64
                    + s.report.migrations_in as i64 - s.report.migrations_out as i64,
                "per-shard residency identity: {}", report
            );
        }
        // Everything the fleet ended with is really resident, and the
        // device bookkeeping survived the whole run.
        prop_assert!(all_consistent(fleet.shards()));
        prop_assert!(!queue_starved(&fleet.shards()[0]) || report.queued_at_end() > 0);
    }
}
