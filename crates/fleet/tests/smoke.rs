//! End-to-end smoke tests of the fleet sharding layer.

use rtm_fleet::routing::{BestFitContiguous, RoundRobin};
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Trace, TraceEvent};
use rtm_service::{QosTier, ServiceConfig};

fn arrival(id: u64, rows: u16, cols: u16, duration: Option<u64>) -> TraceEvent {
    TraceEvent::Arrival(Arrival {
        id,
        rows,
        cols,
        duration,
        deadline: None,
        tier: QosTier::Standard,
    })
}

#[test]
fn round_robin_spreads_and_departures_find_their_shard() {
    let config = FleetConfig::homogeneous(2, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));

    let mut trace = Trace::new("spread");
    for id in 0..4u64 {
        trace.push(id * 10_000, arrival(id, 6, 6, None));
    }
    // Depart one function per shard; the fleet must deliver each to
    // the shard that owns the id.
    trace.push(100_000, TraceEvent::Departure { id: 0 });
    trace.push(110_000, TraceEvent::Departure { id: 1 });

    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.submitted, 4);
    assert_eq!(report.admitted(), 4);
    assert_eq!(report.departures(), 2);
    assert_eq!(report.retries, 0, "everything fitted first try");
    assert_eq!(fleet.shards()[0].resident_count(), 1);
    assert_eq!(fleet.shards()[1].resident_count(), 1);
    for s in &report.shards {
        assert_eq!(s.routed, s.report.submitted, "routed == hosted");
    }

    // State persists: a second trace departs a survivor from the first.
    let mut second = Trace::new("second");
    second.push(0, TraceEvent::Departure { id: 2 });
    let report = fleet.run(&second).unwrap();
    assert_eq!(report.departures(), 1);
    assert_eq!(
        fleet.shards()[0].resident_count() + fleet.shards()[1].resident_count(),
        1
    );
}

#[test]
fn unplaceable_requests_reject_instead_of_queueing() {
    let config = FleetConfig::homogeneous(2, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));
    let mut trace = Trace::new("oversize");
    // 20 rows exceed every XCV50 in the fleet.
    trace.push(0, arrival(0, 20, 10, None));
    trace.push(10_000, arrival(1, 4, 4, None));
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.unplaceable, 1);
    assert_eq!(report.admitted(), 1, "the placeable one is unaffected");
    assert_eq!(
        report.queued_at_end(),
        0,
        "never queued on a hopeless device"
    );
    assert_eq!(
        report.shard_submitted() + report.unplaceable,
        report.submitted
    );
}

#[test]
fn cross_device_retry_rescues_a_full_first_choice() {
    let config = FleetConfig::homogeneous(2, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));
    let mut trace = Trace::new("retry");
    // Rotation sends id 0 to shard 0 (fills it) and id 1 to shard 1
    // (small). Id 2 rotates back to shard 0, which is full — the fleet
    // must retry shard 1 instead of queueing.
    trace.push(0, arrival(0, 16, 24, None));
    trace.push(10_000, arrival(1, 4, 4, None));
    trace.push(20_000, arrival(2, 8, 8, None));
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.admitted(), 3, "{report}");
    assert_eq!(report.retries, 1, "{report}");
    assert_eq!(report.queued_at_end(), 0);
    assert_eq!(fleet.shards()[1].resident_count(), 2);
}

#[test]
fn oversized_duplicate_is_rejected_not_queued() {
    // A duplicate id is normally judged by its owning shard — but if
    // its shape cannot even fit that device, queueing it there would
    // block the queue head forever. It must be rejected outright.
    let config = FleetConfig::heterogeneous(&[Part::Xcv50, Part::Xcv100], ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));
    let mut trace = Trace::new("dup-oversize");
    trace.push(0, arrival(7, 4, 4, None)); // resident on the XCV50
    trace.push(10_000, arrival(7, 20, 30, None)); // fits only the XCV100
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.unplaceable, 1, "{report}");
    assert_eq!(report.queued_at_end(), 0, "{report}");
    assert_eq!(report.admitted(), 1);
    assert_eq!(fleet.shards()[0].resident_count(), 1, "original intact");
    assert_eq!(fleet.shards()[1].resident_count(), 0, "no twin admitted");
}

#[test]
fn router_tracking_is_pruned_to_live_work() {
    let config = FleetConfig::homogeneous(2, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));
    let mut trace = Trace::new("churn");
    // Two functions expire inside the run, one daemon survives, one
    // departs explicitly.
    trace.push(0, arrival(0, 4, 4, Some(50_000)));
    trace.push(0, arrival(1, 4, 4, Some(50_000)));
    trace.push(10_000, arrival(2, 4, 4, None));
    trace.push(20_000, arrival(3, 4, 4, None));
    trace.push(100_000, TraceEvent::Departure { id: 3 });
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.admitted(), 4);
    assert_eq!(report.departures(), 3);
    assert_eq!(
        fleet.tracked_ids(),
        1,
        "only the surviving daemon is tracked"
    );
}

#[test]
fn big_requests_route_to_the_big_device() {
    let config = FleetConfig::heterogeneous(
        &[Part::Xcv50, Part::Xcv50, Part::Xcv200],
        ServiceConfig::default(),
    );
    let mut fleet = FleetService::new(config, Box::new(BestFitContiguous));
    let mut trace = Trace::new("sized");
    trace.push(0, arrival(0, 24, 30, None)); // only the XCV200 holds this
    trace.push(10_000, arrival(1, 4, 4, Some(500_000))); // tightest hole: an XCV50
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.admitted(), 2, "{report}");
    assert_eq!(fleet.shards()[2].resident_count(), 1);
    assert_eq!(
        fleet.shards()[0].resident_count() + fleet.shards()[1].resident_count(),
        0,
        "the 4x4 expired inside the run"
    );
    assert_eq!(report.departures(), 1);
}

#[test]
fn fleet_trigger_defrags_when_shard_thresholds_are_off() {
    // Per-shard triggers disabled; only the fleet-level trigger (mean
    // index > 0.3) may fire.
    let shard = ServiceConfig::default().with_frag_threshold(2.0);
    let config = FleetConfig::homogeneous(1, shard).with_fleet_threshold(0.3);
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));

    // The comb: four full-height strips, the outer pair departs.
    let mut trace = Trace::new("comb");
    for i in 0..4u64 {
        trace.push(i * 10_000, arrival(i, 16, 6, None));
    }
    trace.push(100_000, TraceEvent::Departure { id: 0 });
    trace.push(110_000, TraceEvent::Departure { id: 2 });

    let report = fleet.run(&trace).unwrap();
    assert!(report.fleet_defrags >= 1, "{report}");
    assert_eq!(
        report.defrag_cycles(),
        report.fleet_defrags,
        "shard thresholds were off, every cycle was fleet-triggered"
    );
    assert!(report.peak_worst_frag() > 0.3, "{report}");
    let final_frag = report.shards[0].report.final_frag.unwrap().fragmentation();
    assert_eq!(final_frag, 0.0, "the forced cycle compacted the comb");
}
