//! Event/counter identity net: on random fleets, the deterministic
//! event stream and the report counters must describe the same run —
//! for every shard, Σ(events of a kind) equals the corresponding
//! [`ServiceReport`] counter, and the fleet-tagged events match the
//! [`FleetReport`] fleet-level counters. Any emission site that drifts
//! from its counter (an event without its increment, an increment
//! without its event, a speculative emission not truncated on the
//! no-room path) breaks one of these sums.

use proptest::prelude::*;
use rtm_fleet::rebalance::{RebalancePolicy, UtilizationLevelling, WorstShardDrain};
use rtm_fleet::routing::{FragAware, LeastUtilized, RoundRobin, RoutingPolicy};
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_obs::{EventKind, RejectReason, RtmEvent, FLEET_SHARD};
use rtm_service::trace::Scenario;
use rtm_service::ServiceConfig;

const MENU: [Part; 3] = [Part::Xcv50, Part::Xcv100, Part::Xcv200];

fn policy_by_index(i: usize) -> Box<dyn RoutingPolicy> {
    match i % 3 {
        0 => Box::new(RoundRobin::default()),
        1 => Box::new(LeastUtilized),
        _ => Box::new(FragAware::default()),
    }
}

fn rebalancer_by_index(i: usize) -> Option<Box<dyn RebalancePolicy>> {
    match i % 3 {
        0 => None,
        1 => Some(Box::new(WorstShardDrain::default())),
        _ => Some(Box::new(UtilizationLevelling::default())),
    }
}

/// Events of shard `tag` matching `pred`.
fn count(events: &[RtmEvent], tag: u32, pred: impl Fn(&EventKind) -> bool) -> usize {
    events
        .iter()
        .filter(|e| e.shard == tag && pred(&e.kind))
        .count()
}

fn is_failure_reject(k: &EventKind) -> bool {
    matches!(
        k,
        EventKind::Rejected {
            reason: RejectReason::DuplicateOrSynthesis
                | RejectReason::NoFreeSlots
                | RejectReason::Unroutable
                | RejectReason::LoadOther,
            ..
        }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 2 } else { 8 }))]
    #[test]
    fn event_counts_equal_report_counters(
        parts_idx in proptest::collection::vec(0usize..3, 2..5),
        scenario_sel in 0usize..3,
        policy_sel in 0usize..3,
        rebalancer_sel in 0usize..3,
        seed in 1u64..500,
    ) {
        let parts: Vec<Part> = parts_idx.iter().map(|&i| MENU[i]).collect();
        let scenario = Scenario::ALL[scenario_sel];
        let trace = scenario.fleet_trace(Part::Xcv50, parts.len() as u64, seed, 150_000);

        let mut config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
        if rebalancer_by_index(rebalancer_sel).is_some() {
            config = config.with_rebalance_threshold(0.4);
        }
        let mut fleet = FleetService::new(config, policy_by_index(policy_sel));
        if let Some(r) = rebalancer_by_index(rebalancer_sel) {
            fleet = fleet.with_rebalancer(r);
        }
        fleet.enable_events();
        let report = fleet.run(&trace).expect("identity-net run stays up");
        let events = fleet.take_events();

        // Per-shard identities: the stream restricted to one shard tag
        // is a complete account of that shard's report.
        for (i, outcome) in report.shards.iter().enumerate() {
            let tag = i as u32;
            let r = &outcome.report;
            let ctx = format!("shard {i}: {r}");
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Arrival { .. })),
                r.submitted, "arrival != submitted; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Admitted { .. })),
                r.admitted, "admitted events != admitted; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Load { .. })),
                r.admitted, "load events != admitted; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Unload { .. })),
                r.departures, "unload != departures; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::DefragCycle { .. })),
                r.defrag_cycles, "defrag events != cycles; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, is_failure_reject),
                r.failures, "failure rejections != failures; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Rejected {
                    reason: RejectReason::NoFreeSlots, ..
                })),
                r.failures_no_slots, "no-slot rejections; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Rejected {
                    reason: RejectReason::Unroutable, ..
                })),
                r.failures_unroutable, "unroutable rejections; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Rejected {
                    reason: RejectReason::DeadlinePassed, ..
                })),
                r.rejected_deadline, "deadline rejections; {}", ctx
            );
            // Queue conservation: everything enqueued either left the
            // queue (admission retry, deadline reject, cancellation) or
            // is still waiting at the end.
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::Enqueued { .. }))
                    - count(&events, tag, |k| matches!(k, EventKind::Dequeued { .. })),
                r.queued_at_end, "enqueued - dequeued != queued_at_end; {}", ctx
            );
            // Every extraction either completed (migrations_out) or was
            // rolled back (migrations_restored) — nothing vanishes.
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::MigrationOut { .. })),
                r.migrations_out + r.migrations_restored, "extractions; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::MigrationIn { .. })),
                r.migrations_in, "migration in; {}", ctx
            );
            prop_assert_eq!(
                count(&events, tag, |k| matches!(k, EventKind::MigrationRestored { .. })),
                r.migrations_restored, "restores; {}", ctx
            );
            // Metric identities: one histogram sample per admission.
            let m = &r.metrics;
            prop_assert_eq!(
                m.histogram("queue_wait_us").map(|h| h.count()).unwrap_or(0) as usize,
                r.admitted, "queue_wait_us samples != admitted; {}", ctx
            );
            prop_assert_eq!(
                m.histogram("frames_per_load").map(|h| h.count()).unwrap_or(0) as usize,
                r.admitted, "frames_per_load samples != admitted; {}", ctx
            );
        }

        // Fleet-level identities (the FLEET_SHARD tag).
        prop_assert_eq!(
            count(&events, FLEET_SHARD, |k| matches!(k, EventKind::Rejected {
                reason: RejectReason::Unplaceable, ..
            })),
            report.unplaceable, "unplaceable rejections; {}", report
        );
        prop_assert_eq!(
            count(&events, FLEET_SHARD, |k| matches!(k, EventKind::EpochBoundary))
                as u64,
            report.metrics.counter("epochs"), "epoch boundaries; {}", report
        );
        prop_assert!(
            report.metrics.counter("epochs") > 0,
            "a run that processed events has epochs"
        );
    }
}
