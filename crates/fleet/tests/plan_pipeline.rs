//! Pins the plan-reuse admission pipeline's headline claim: a
//! frag-aware fleet admission costs at most **one** `make_room`
//! planning pass beyond its routing previews — down from three (the
//! winning device's preview, then `try_admit`'s feasibility plan, then
//! `load`'s internal re-plan all computed the same rearrangement
//! before this pipeline existed).

use rtm_fleet::routing::FragAware;
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

fn adversarial_fleet_trace(seed: u64) -> Trace {
    // The same canonical workload the fleet_loop example/bench and the
    // CI perf baseline replay.
    Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 4, seed, 170_000)
}

#[test]
fn frag_aware_admissions_plan_at_most_once() {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = adversarial_fleet_trace(42);
    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(FragAware::default()));
    let report = fleet.run(&trace).unwrap();
    let stats = report.plan_stats();

    // The pipeline must not cost admissions: the informed policy still
    // admits everything the adversarial trace offers (pinned at 40/40
    // before this refactor).
    assert_eq!(
        report.admitted(),
        report.submitted,
        "frag-aware still admits the full adversarial load\n{report}"
    );

    // Headline: planning beyond the routing previews is bounded by one
    // pass per successful admission. Before plan reuse, every
    // offer-path admission re-planned twice on the winning device
    // (feasibility + load), putting this at ~2x admitted.
    let non_preview_passes = stats.make_room_calls - stats.previews;
    assert!(
        non_preview_passes <= report.admitted() as u64,
        "at most one non-preview make_room pass per successful \
         admission, got {non_preview_passes} for {} admissions\n{stats}",
        report.admitted(),
    );

    // Every load executed a pre-computed plan: the offer path reuses
    // the routing preview's plan, the queue path reuses its own
    // feasibility plan. Nothing plans inside `load` anymore.
    assert!(
        stats.plans_reused >= report.admitted() as u64,
        "every admission rode a reused plan\n{stats}"
    );

    // The routing previews were handed over intact: no plan computed at
    // rank time was stale by offer time in this single-threaded event
    // loop.
    assert_eq!(stats.plans_invalidated, 0, "{stats}");

    // The two-stage filter's summary cache did real work: arrivals far
    // outnumber mutations on the steady phases, so most stage-1 reads
    // are hits.
    assert!(stats.summary_hits > 0, "{stats}");
}

/// The same pipeline on a bigger, homogeneous fleet: per-arrival
/// preview cost is bounded by top_k, not fleet size.
#[test]
fn preview_cost_is_capped_by_top_k_on_a_big_fleet() {
    let trace = Scenario::SteadyChurn.fleet_trace(Part::Xcv50, 6, 60, 120_000);
    let top_k = 4usize;
    let config = FleetConfig::homogeneous(12, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::new(FragAware { top_k }));
    let report = fleet.run(&trace).unwrap();
    let stats = report.plan_stats();

    // Previews are issued per routed arrival, capped at top_k each —
    // never one per device per arrival (the pre-refactor behaviour
    // would have been 12 per arrival here).
    assert!(
        stats.previews <= (report.submitted * top_k) as u64,
        "previews bounded by top_k per arrival\n{stats}"
    );
    assert!(report.admitted() > 0, "{report}");
    assert_eq!(stats.plans_invalidated, 0, "{stats}");
}
