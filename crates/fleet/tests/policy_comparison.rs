//! Pins the fleet-level claim the `fleet_loop` example demonstrates:
//! on the adversarial-fragmenter scenario, informed routing admits
//! strictly more than state-blind round-robin. Uses exactly the
//! example's configuration (two XCV50s + one XCV100, four staggered
//! scenario copies) so the printed comparison stays honest.

use rtm_fleet::routing::{FragAware, LeastUtilized, RoundRobin};
use rtm_fleet::{FleetConfig, FleetService, WorstShardDrain};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

fn fleet_trace(seed: u64) -> Trace {
    // The example's exact workload, via the one shared definition.
    Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 4, seed, 170_000)
}

#[test]
fn least_utilized_beats_round_robin_on_adversarial() {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = fleet_trace(42);

    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut rr_fleet = FleetService::new(config.clone(), Box::new(RoundRobin::default()));
    let rr = rr_fleet.run(&trace).unwrap();

    let mut lu_fleet = FleetService::new(config, Box::new(LeastUtilized));
    let lu = lu_fleet.run(&trace).unwrap();

    assert_eq!(rr.submitted, lu.submitted, "identical offered load");
    assert!(
        lu.admitted() > rr.admitted(),
        "least-utilized must beat round-robin on the adversarial trace \
         (rr {}/{}, lu {}/{})\n{rr}\n{lu}",
        rr.admitted(),
        rr.submitted,
        lu.admitted(),
        lu.submitted,
    );
    assert!(lu.admission_rate() > rr.admission_rate());
    // Round-robin's loss is starvation, not magic: the requests it
    // failed to admit are still waiting on comb-fragmented devices (or
    // timed out) at the end of the run.
    assert!(rr.queued_at_end() + rr.rejected_deadline() > 0, "{rr}");
}

/// The rebalancing claim, pinned by counters: state-blind round-robin
/// *plus* idle-window migration recovers the adversarial-fragmenter
/// admissions gap — matching what the informed frag-aware router admits
/// (40/40 on the x4 example workload) even though every routing
/// decision stays blind. Aged comb placements are repaired by moving
/// functions between devices, which admission-time routing and
/// per-device compaction can never do.
#[test]
fn round_robin_with_rebalancing_recovers_the_admissions_gap() {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = fleet_trace(42);

    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut plain = FleetService::new(config.clone(), Box::new(RoundRobin::default()));
    let plain = plain.run(&trace).unwrap();

    let mut frag_aware = FleetService::new(config.clone(), Box::new(FragAware::default()));
    let frag_aware = frag_aware.run(&trace).unwrap();

    let rebalancing = config.with_rebalance_threshold(0.4);
    let mut fleet = FleetService::new(rebalancing, Box::new(RoundRobin::default()))
        .with_rebalancer(Box::new(WorstShardDrain::default()));
    let report = fleet.run(&trace).unwrap();

    assert_eq!(report.submitted, plain.submitted, "identical offered load");
    assert!(
        report.migrations > 0,
        "the trigger must actually migrate\n{report}"
    );
    assert_eq!(report.migrations_in(), report.migrations_out(), "{report}");
    assert!(
        report.admitted() > plain.admitted(),
        "rebalancing must recover round-robin's gap \
         (plain {}/{}, rebalancing {}/{})\n{report}",
        plain.admitted(),
        plain.submitted,
        report.admitted(),
        report.submitted,
    );
    assert!(
        report.admitted() >= frag_aware.admitted(),
        "round-robin + rebalancing admits at least what frag-aware does \
         (frag-aware {}/{}, rebalancing {}/{})\n{report}",
        frag_aware.admitted(),
        frag_aware.submitted,
        report.admitted(),
        report.submitted,
    );
}

/// The acceptance pin at fleet scale: adversarial-fragmenter ×17 over
/// N = 16 XCV50s, round-robin + rebalancing admits at least what
/// frag-aware routing admits (170/170 in the CI baseline) — and the
/// repair is visible in the counters: migrations happened, and *zero*
/// admission-time rearrangement moves remain (plain round-robin pays 5
/// and frag-aware 11 on this workload; idle-window migration repairs
/// the combs before the big requests arrive, so every load is
/// immediate).
#[test]
fn round_robin_with_rebalancing_matches_frag_aware_at_n16() {
    let parts = vec![Part::Xcv50; 16];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 17, 42, 170_000);

    let config =
        FleetConfig::heterogeneous(&parts, ServiceConfig::default()).with_rebalance_threshold(0.4);
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()))
        .with_rebalancer(Box::new(WorstShardDrain::default()));
    let report = fleet.run(&trace).unwrap();

    assert_eq!(report.submitted, 170);
    assert!(
        report.admitted() >= 170,
        "round-robin + rebalancing matches frag-aware's N=16 count \
         (admitted {}/{})\n{report}",
        report.admitted(),
        report.submitted,
    );
    assert!(report.migrations > 0, "{report}");
    assert_eq!(report.migrations_in(), report.migrations_out(), "{report}");
    assert_eq!(
        report.function_moves(),
        0,
        "idle-window repair leaves no admission-time rearrangement\n{report}"
    );
}
