//! Pins the fleet-level claim the `fleet_loop` example demonstrates:
//! on the adversarial-fragmenter scenario, informed routing admits
//! strictly more than state-blind round-robin. Uses exactly the
//! example's configuration (two XCV50s + one XCV100, four staggered
//! scenario copies) so the printed comparison stays honest.

use rtm_fleet::routing::{LeastUtilized, RoundRobin};
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

fn fleet_trace(seed: u64) -> Trace {
    // The example's exact workload, via the one shared definition.
    Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 4, seed, 170_000)
}

#[test]
fn least_utilized_beats_round_robin_on_adversarial() {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = fleet_trace(42);

    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut rr_fleet = FleetService::new(config.clone(), Box::new(RoundRobin::default()));
    let rr = rr_fleet.run(&trace).unwrap();

    let mut lu_fleet = FleetService::new(config, Box::new(LeastUtilized));
    let lu = lu_fleet.run(&trace).unwrap();

    assert_eq!(rr.submitted, lu.submitted, "identical offered load");
    assert!(
        lu.admitted() > rr.admitted(),
        "least-utilized must beat round-robin on the adversarial trace \
         (rr {}/{}, lu {}/{})\n{rr}\n{lu}",
        rr.admitted(),
        rr.submitted,
        lu.admitted(),
        lu.submitted,
    );
    assert!(lu.admission_rate() > rr.admission_rate());
    // Round-robin's loss is starvation, not magic: the requests it
    // failed to admit are still waiting on comb-fragmented devices (or
    // timed out) at the end of the run.
    assert!(rr.queued_at_end() + rr.rejected_deadline() > 0, "{rr}");
}
