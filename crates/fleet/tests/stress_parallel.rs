//! Fleet-scale soak: the N = 1024 adversarial-fragmenter sweep through
//! both stepping engines. `#[ignore]`d by default (minutes of wall on
//! small boxes) and opted into by `ci.sh` when `RTM_STRESS=1`:
//!
//! ```sh
//! RTM_STRESS=1 ./ci.sh          # or directly:
//! cargo test --release -p rtm-fleet --test stress_parallel -- --ignored --nocapture
//! ```
//!
//! Asserts the run *completes*, that the conservation identities hold
//! at three orders of magnitude above the unit suites, that the
//! parallel report equals the sequential one verbatim, and that the
//! deferred-execution legs (reserve on the edge, execute in the
//! segment) reproduce the immediate reports on both engines. Wall
//! clock, the speedup ratio and per-mode arrivals/s are printed, never
//! gated — on a multi-core box
//! (4+ cores) expect the parallel engine to finish the shard-local
//! work about `min(cores, shards-with-work)` times faster; on the
//! single-core CI runner the ratio dips below 1 (the parallel run
//! also pays the measurement's allocator cold start — see the run
//! order note below).

use rtm_fleet::routing::RoundRobin;
use rtm_fleet::{EngineKind, FleetConfig, FleetReport, FleetService};
use rtm_fpga::part::Part;
use rtm_obs::Stopwatch;
use rtm_service::trace::Scenario;
use rtm_service::ServiceConfig;

fn assert_conservation(report: &FleetReport) {
    assert_eq!(
        report.admitted()
            + report.rejected_deadline()
            + report.failures()
            + report.cancelled()
            + report.queued_at_end()
            + report.unplaceable,
        report.submitted + report.load_failovers,
        "{report}"
    );
    assert_eq!(
        report.shard_submitted() + report.unplaceable,
        report.submitted + report.load_failovers,
        "{report}"
    );
    assert_eq!(report.migrations_in(), report.migrations, "{report}");
    assert_eq!(report.migrations_out(), report.migrations, "{report}");
    for s in &report.shards {
        assert_eq!(s.routed, s.report.submitted, "routed == hosted: {report}");
        assert_eq!(
            s.report.resident_at_end as i64,
            s.report.admitted as i64 - s.report.departures as i64 + s.report.migrations_in as i64
                - s.report.migrations_out as i64,
            "per-shard residency identity: {report}"
        );
    }
}

#[test]
#[ignore = "N = 1024 soak: minutes of wall; ci.sh opts in via RTM_STRESS=1"]
fn n1024_sweep_completes_identically_on_both_engines() {
    const N: usize = 1024;
    let parts = vec![Part::Xcv50; N];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, N as u64 + 1, 42, 170_000);

    let run = |engine: EngineKind, deferred: bool| {
        let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default())
            .with_engine(engine)
            .with_deferred_execution(deferred);
        let mut fleet = FleetService::new(config, Box::<RoundRobin>::default());
        // Phase profiler on the soak: where do the epochs actually go at
        // N = 1024? The share table below feeds the ROADMAP reference
        // numbers (printed, never gated — wall clock stays out of reports).
        fleet.enable_profiler();
        let sw = Stopwatch::start();
        let report = fleet.run(&trace).expect("soak run stays up");
        let wall = sw.elapsed_secs();
        let mode = if deferred { "deferred" } else { "immediate" };
        if let Some(p) = fleet.profiler() {
            println!("{} ({mode}) phase shares at N = {N}:", engine.name());
            println!("{}", p.share_table());
        }
        (report, wall)
    };

    // Parallel runs FIRST on purpose: the first run at this scale pays
    // the allocator/page-fault cold start (worth ~2x wall on its own),
    // so this order makes the printed speedup conservative — a >= 2x
    // readout is real parallelism, not warmup.
    let (parallel, par_wall) = run(EngineKind::Parallel { threads: 0 }, false);
    let (sequential, seq_wall) = run(EngineKind::Sequential, false);
    // Deferred legs: reserve on the edge, execute in the segment. Both
    // must reproduce the immediate reports verbatim — at this scale the
    // gate covers millions of ticket resolutions per run.
    let (par_def, par_def_wall) = run(EngineKind::Parallel { threads: 0 }, true);
    let (seq_def, seq_def_wall) = run(EngineKind::Sequential, true);

    assert_eq!(sequential.submitted, trace.arrivals());
    assert!(
        sequential.admitted() > 0,
        "soak must actually admit: {sequential}"
    );
    assert_conservation(&sequential);
    assert_eq!(
        sequential, parallel,
        "engines diverged at N = {N} — schedule leaked into an outcome"
    );
    assert_eq!(
        sequential, seq_def,
        "deferred execution changed the sequential outcome at N = {N}"
    );
    assert_eq!(
        sequential, par_def,
        "deferred execution changed the parallel outcome at N = {N}"
    );

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = seq_wall / par_wall.max(1e-9);
    println!(
        "N={N}: {} arrivals, {} admitted; sequential {seq_wall:.2}s, \
         parallel(auto, {cores} cores) {par_wall:.2}s — {speedup:.2}x \
         [printed, not gated; expect >= 2x on 4+ cores]",
        sequential.submitted,
        sequential.admitted(),
    );
    let arrivals = sequential.submitted as f64;
    println!(
        "N={N} deferred: sequential {seq_def_wall:.2}s ({:.0} arrivals/s), \
         parallel(auto) {par_def_wall:.2}s ({:.0} arrivals/s) \
         [immediate: seq {:.0}, par {:.0} arrivals/s]",
        arrivals / seq_def_wall.max(1e-9),
        arrivals / par_def_wall.max(1e-9),
        arrivals / seq_wall.max(1e-9),
        arrivals / par_wall.max(1e-9),
    );
}
