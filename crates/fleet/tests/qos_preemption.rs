//! The QoS-tier preemption net:
//!
//! * the headline claim — on the tiered multi-tenant mix, preemptive
//!   eviction strictly improves the interactive admission rate over
//!   the same fleet without it;
//! * the eviction sum identities (`evicted out = migrated + parked`,
//!   `parked = readmitted + expired + still parked`, and the per-shard
//!   residency identity extended by the eviction flows);
//! * per-tier counters and the whole report byte-identical across the
//!   engine × execution-mode × thread-count grid;
//! * monotonicity: adding lower-tier load never reduces the high-tier
//!   admission count (preemption makes interactive service independent
//!   of batch pressure);
//! * evict-then-readmit round-trips flip-flop state frame-exactly,
//!   pinned by the same readback oracle as the migration net.

use proptest::prelude::*;
use rtm_fleet::routing::{BestFitContiguous, RoundRobin};
use rtm_fleet::{EngineKind, FleetConfig, FleetService};
use rtm_fpga::config::layout::{tile_bit_location, PIP_BITS_BASE};
use rtm_fpga::geom::Rect;
use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{AdmissionBid, QosTier, RuntimeService, ServiceConfig, ServiceReport};

fn tiered_fleet(preemption: bool, engine: EngineKind, deferred: bool) -> FleetService {
    let config = FleetConfig::homogeneous(3, ServiceConfig::default())
        .with_preemption(preemption)
        .with_engine(engine)
        .with_deferred_execution(deferred);
    FleetService::new(config, Box::new(BestFitContiguous))
}

/// The acceptance gate: on the tiered mix, turning preemption on
/// strictly improves interactive admissions, and the improvement is
/// attributable (preemptions and evictions actually happened).
#[test]
fn preemption_strictly_improves_interactive_admission() {
    let trace = Scenario::TieredMix.fleet_trace(Part::Xcv50, 3, 7, 150_000);

    let baseline = tiered_fleet(false, EngineKind::Sequential, false)
        .run(&trace)
        .unwrap();
    let preempting = tiered_fleet(true, EngineKind::Sequential, false)
        .run(&trace)
        .unwrap();

    let without = baseline.tiers().admitted_for(QosTier::Interactive);
    let with = preempting.tiers().admitted_for(QosTier::Interactive);
    assert!(
        with > without,
        "preemption must strictly improve interactive admission: \
         {with} vs {without}\nwith: {preempting}\nwithout: {baseline}"
    );
    assert!(preempting.preemptions > 0, "{preempting}");
    assert!(preempting.evictions_out() > 0, "{preempting}");
    assert_eq!(baseline.preemptions, 0, "preemption off is preemption off");
    assert_eq!(baseline.evictions_out(), 0, "{baseline}");

    // The eviction flow identities, exactly.
    assert_eq!(
        preempting.evictions_out(),
        preempting.evictions_migrated + preempting.evictions_parked,
        "{preempting}"
    );
    assert_eq!(
        preempting.evictions_parked,
        preempting.parked_readmitted + preempting.parked_expired + preempting.parked_at_end,
        "{preempting}"
    );
    assert_eq!(
        preempting.evictions_in(),
        preempting.evictions_migrated + preempting.parked_readmitted,
        "{preempting}"
    );
    // Per-shard residency extended by the eviction flows.
    for s in &preempting.shards {
        assert_eq!(
            s.report.resident_at_end as i64,
            s.report.admitted as i64 - s.report.departures as i64 + s.report.migrations_in as i64
                - s.report.migrations_out as i64
                + s.report.evictions_in as i64
                - s.report.evictions_out as i64,
            "per-shard residency identity with evictions: {preempting}"
        );
    }
}

/// The determinism gate: the tiered run — preemption, evictions,
/// parking, readmission and all — produces byte-identical reports
/// (per-tier counters included, they are report fields) across both
/// engines, both execution modes and several thread counts.
#[test]
fn tiered_reports_identical_across_engine_mode_grid() {
    let trace = Scenario::TieredMix.fleet_trace(Part::Xcv50, 3, 7, 150_000);
    let reference = tiered_fleet(true, EngineKind::Sequential, false)
        .run(&trace)
        .unwrap();
    assert!(reference.preemptions > 0, "grid must exercise preemption");

    for deferred in [false, true] {
        for engine in [
            EngineKind::Sequential,
            EngineKind::Parallel { threads: 2 },
            EngineKind::Parallel { threads: 4 },
        ] {
            let report = tiered_fleet(true, engine, deferred).run(&trace).unwrap();
            assert_eq!(
                reference, report,
                "tiered run diverged under {engine:?}, deferred={deferred}"
            );
        }
    }
}

/// Readback equivalence modulo the relocation offset — the migration
/// net's oracle, applied to the eviction path: every cell-config and
/// state bit of the evicted function's region reads the same after
/// readmission (PIP bits excluded; nets re-route inside the new
/// region).
fn assert_readback_equivalent(
    pre: &rtm_fpga::config::ConfigMemory,
    old_region: Rect,
    target: &RuntimeService,
    new_region: Rect,
) {
    let dr = new_region.origin.row as i32 - old_region.origin.row as i32;
    let dc = new_region.origin.col as i32 - old_region.origin.col as i32;
    for old_tile in old_region.iter() {
        let new_tile = old_tile.offset(dr, dc).expect("translated tile on device");
        for k in 0..PIP_BITS_BASE {
            let (a_addr, a_bit) = tile_bit_location(old_tile, k);
            let (b_addr, b_bit) = tile_bit_location(new_tile, k);
            assert_eq!(
                pre.get_bit(a_addr, a_bit).unwrap(),
                target
                    .manager()
                    .device()
                    .config()
                    .get_bit(b_addr, b_bit)
                    .unwrap(),
                "bit {k} of {old_tile} != bit {k} of {new_tile}"
            );
        }
    }
}

fn interactive(id: u64, at: u64, rows: u16, cols: u16) -> (u64, TraceEvent) {
    (
        at,
        TraceEvent::Arrival(Arrival {
            id,
            rows,
            cols,
            duration: Some(400_000),
            deadline: None,
            tier: QosTier::Interactive,
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Monotonicity: with preemption on, injecting arbitrary batch
    /// load under an interactive workload never reduces the number of
    /// interactive admissions — the whole point of the tier system is
    /// that background pressure cannot crowd out the high tier.
    #[test]
    fn batch_load_never_reduces_interactive_admissions(
        shapes in proptest::collection::vec((2u16..10, 2u16..10), 2..6),
        batch in proptest::collection::vec((2u16..16, 2u16..12, 0u64..400_000), 0..8),
    ) {
        // The interactive-only base: arrivals spaced out on an
        // otherwise idle fleet.
        let mut base = Trace::new("interactive-only");
        for (i, &(r, c)) in shapes.iter().enumerate() {
            let (at, ev) = interactive(1_000 + i as u64, 500_000 + i as u64 * 100_000, r, c);
            base.push(at, ev);
        }
        // The augmented run: the same interactive arrivals, with
        // long-running batch residents landing first.
        let mut augmented = Trace::new("interactive-plus-batch");
        for e in base.events() {
            augmented.push(e.at, e.event);
        }
        for (i, &(r, c, jitter)) in batch.iter().enumerate() {
            augmented.push(
                jitter,
                TraceEvent::Arrival(Arrival {
                    id: i as u64,
                    rows: r,
                    cols: c,
                    duration: Some(6_000_000),
                    deadline: None,
                    tier: QosTier::Batch,
                }),
            );
        }

        let config = FleetConfig::homogeneous(2, ServiceConfig::default())
            .with_preemption(true);
        let lone = FleetService::new(config.clone(), Box::new(RoundRobin::default()))
            .run(&base)
            .unwrap();
        let crowded = FleetService::new(config, Box::new(RoundRobin::default()))
            .run(&augmented)
            .unwrap();

        prop_assert!(
            crowded.tiers().admitted_for(QosTier::Interactive)
                >= lone.tiers().admitted_for(QosTier::Interactive),
            "batch load reduced interactive admissions:\nlone: {lone}\ncrowded: {crowded}"
        );
    }

    /// Evict-then-readmit round-trips flip-flop state frame-exactly:
    /// the extraction bundle produced by `evict_out` readmits through
    /// `evict_in` (on a sibling or back onto the freed source) with
    /// every cell-config and state bit intact, and the eviction
    /// counters land on the reports.
    #[test]
    fn evict_then_readmit_round_trips_state(
        rows in 2u16..10,
        cols in 2u16..10,
        cross_shard in any::<bool>(),
    ) {
        let mut src = RuntimeService::new(ServiceConfig::default());
        let mut dst = RuntimeService::new(ServiceConfig::default());
        let mut rep_src = ServiceReport::new("evict-src");
        let mut rep_dst = ServiceReport::new("evict-dst");

        let a = Arrival {
            id: 42,
            rows,
            cols,
            duration: None,
            deadline: None,
            tier: QosTier::Batch,
        };
        src.admit(0, AdmissionBid::direct(a), &mut rep_src).unwrap();
        let (_, _, old_region) = src.resident_functions()[0];

        let bundle = src.evict_out(42, &mut rep_src).unwrap();
        prop_assert_eq!(rep_src.evictions_out, 1);
        prop_assert_eq!(src.resident_count(), 0);
        prop_assert!(src.manager().bookkeeping_consistent());

        let (target, rep) = if cross_shard {
            (&mut dst, &mut rep_dst)
        } else {
            (&mut src, &mut rep_src)
        };
        target.evict_in(10_000, &bundle, None, rep).unwrap();
        prop_assert_eq!(rep.evictions_in, 1);
        prop_assert!(target.holds(42));
        prop_assert!(target.manager().bookkeeping_consistent());

        let new_region = target
            .resident_functions()
            .into_iter()
            .find(|(id, _, _)| *id == 42)
            .expect("readmitted function resident")
            .2;
        assert_readback_equivalent(
            bundle.extracted().pre_config(),
            old_region,
            target,
            new_region,
        );
    }
}
