//! The perf-baseline oracle, pinned in code: the exact counters of the
//! checked-in `BENCH_fleet.json` rows, reproduced through the library
//! API. `ci.sh` already byte-diffs the regenerated JSON against the
//! checked-in file — but that gate only catches drift *relative to the
//! file*, so a regenerated baseline would silently absorb a behaviour
//! change. This oracle pins the pre-refactor numbers in source: the
//! epoch-based engine (and any future rework of the stepping loop)
//! must keep the sequential path's counters **exactly** as they were
//! when the fleet loop was a single inline match.
//!
//! Debug pins the two cheap ends of the three-device policy sweep; the
//! full sweep plus the rebalancing row runs in release, and the N = 16
//! / N = 64 scale rows are `#[ignore]`d (minutes of single-core debug
//! wall) and run by `ci.sh` in release via `RTM_STRESS=1`.

use rtm_fleet::rebalance::WorstShardDrain;
use rtm_fleet::routing::{standard_policies, FragAware, RoundRobin};
use rtm_fleet::{FleetConfig, FleetReport, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::Scenario;
use rtm_service::ServiceConfig;

/// One pinned `BENCH_fleet.json` row: the counters that move when the
/// stepping loop changes behaviour. (The JSON gate pins every field;
/// this oracle pins the load-bearing ones with named literals so a
/// diff here reads as a behaviour change, not a file regen.)
struct Expected {
    devices: usize,
    policy: &'static str,
    submitted: usize,
    admitted: usize,
    retries: usize,
    queued_at_end: usize,
    defrag_cycles: usize,
    function_moves: usize,
    cells_moved: u64,
    frames_written: u64,
    migrations: usize,
    migrations_refused: usize,
    make_room_calls: u64,
    previews: u64,
    plans_reused: u64,
    summary_hits: u64,
    summary_misses: u64,
}

fn assert_row(report: &FleetReport, want: &Expected) {
    let s = report.plan_stats();
    assert_eq!(report.shards.len(), want.devices, "{report}");
    assert_eq!(report.policy, want.policy, "{report}");
    assert_eq!(report.submitted, want.submitted, "{report}");
    assert_eq!(report.admitted(), want.admitted, "admitted: {report}");
    assert_eq!(report.retries, want.retries, "retries: {report}");
    assert_eq!(
        report.queued_at_end(),
        want.queued_at_end,
        "queued: {report}"
    );
    assert_eq!(
        report.defrag_cycles(),
        want.defrag_cycles,
        "defrag_cycles: {report}"
    );
    assert_eq!(
        report.function_moves(),
        want.function_moves,
        "function_moves: {report}"
    );
    assert_eq!(
        report.cells_moved(),
        want.cells_moved,
        "cells_moved: {report}"
    );
    assert_eq!(
        report.frames_written(),
        want.frames_written,
        "frames_written: {report}"
    );
    assert_eq!(report.migrations, want.migrations, "migrations: {report}");
    assert_eq!(
        report.migrations_refused, want.migrations_refused,
        "migrations_refused: {report}"
    );
    assert_eq!(
        s.make_room_calls, want.make_room_calls,
        "make_room_calls: {report}"
    );
    assert_eq!(s.previews, want.previews, "previews: {report}");
    assert_eq!(s.plans_reused, want.plans_reused, "plans_reused: {report}");
    assert_eq!(s.summary_hits, want.summary_hits, "summary_hits: {report}");
    assert_eq!(
        s.summary_misses, want.summary_misses,
        "summary_misses: {report}"
    );
}

/// The baseline suite's three-device fleet and trace, byte for byte.
fn small_fleet_report(policy_index: usize, rebalance: bool) -> FleetReport {
    let parts = [Part::Xcv50, Part::Xcv50, Part::Xcv100];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 4, 42, 170_000);
    let mut config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    if rebalance {
        config = config.with_rebalance_threshold(0.4);
    }
    let mut fleet = FleetService::new(config, standard_policies().remove(policy_index));
    if rebalance {
        fleet = fleet.with_rebalancer(Box::<WorstShardDrain>::default());
    }
    fleet.run(&trace).unwrap()
}

/// The pre-refactor counters of the four `adversarial-fragmenter-x4`
/// policy rows (BENCH_fleet.json rows 1-4), as of the last inline
/// (non-epoch) fleet loop.
fn x4_rows() -> [Expected; 4] {
    [
        Expected {
            devices: 3,
            policy: "round-robin",
            submitted: 40,
            admitted: 37,
            retries: 3,
            queued_at_end: 3,
            defrag_cycles: 2,
            function_moves: 12,
            cells_moved: 576,
            frames_written: 87264,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 80,
            previews: 0,
            plans_reused: 39,
            summary_hits: 0,
            summary_misses: 0,
        },
        Expected {
            devices: 3,
            policy: "least-utilized",
            submitted: 40,
            admitted: 40,
            retries: 2,
            queued_at_end: 0,
            defrag_cycles: 1,
            function_moves: 8,
            cells_moved: 384,
            frames_written: 55824,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 73,
            previews: 0,
            plans_reused: 41,
            summary_hits: 0,
            summary_misses: 0,
        },
        Expected {
            devices: 3,
            policy: "best-fit-area",
            submitted: 40,
            admitted: 40,
            retries: 0,
            queued_at_end: 0,
            defrag_cycles: 1,
            function_moves: 3,
            cells_moved: 144,
            frames_written: 23520,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 73,
            previews: 0,
            plans_reused: 41,
            summary_hits: 0,
            summary_misses: 0,
        },
        Expected {
            devices: 3,
            policy: "frag-aware",
            submitted: 40,
            admitted: 40,
            retries: 0,
            queued_at_end: 0,
            defrag_cycles: 1,
            function_moves: 8,
            cells_moved: 384,
            frames_written: 54384,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 154,
            previews: 120,
            plans_reused: 41,
            summary_hits: 74,
            summary_misses: 46,
        },
    ]
}

/// The three-device policy sweep reproduces its pre-refactor counters.
#[test]
fn x4_policy_sweep_matches_the_pinned_baseline() {
    let rows = x4_rows();
    // Debug (14x slower on the 1-core CI box) pins the two ends of the
    // sweep; release pins all four.
    let sampled: Vec<usize> = if cfg!(debug_assertions) {
        vec![0, 3]
    } else {
        (0..rows.len()).collect()
    };
    for i in sampled {
        assert_row(&small_fleet_report(i, false), &rows[i]);
    }
}

/// The rebalancing-migration row (round-robin + worst-shard-drain on
/// the same contended fleet) reproduces its pre-refactor counters —
/// the path where the epoch loop's migration edge could most easily
/// have drifted.
#[test]
fn x4_rebalancing_row_matches_the_pinned_baseline() {
    let report = small_fleet_report(0, true);
    assert_row(
        &report,
        &Expected {
            devices: 3,
            policy: "round-robin",
            submitted: 40,
            admitted: 40,
            retries: 5,
            queued_at_end: 0,
            defrag_cycles: 0,
            function_moves: 0,
            cells_moved: 0,
            frames_written: 0,
            migrations: 7,
            migrations_refused: 46,
            make_room_calls: 145,
            previews: 0,
            plans_reused: 47,
            summary_hits: 330,
            summary_misses: 66,
        },
    );
    assert!(report.rebalancer.as_deref() == Some("worst-shard-drain"));
}

/// The N = 16 scale rows (frag-aware sweep and round-robin +
/// rebalancing): minutes of debug wall on the CI box, so `#[ignore]`d
/// here and run in release by `ci.sh` under `RTM_STRESS=1`.
#[test]
#[ignore = "scale row: run in release (ci.sh RTM_STRESS=1)"]
fn n16_rows_match_the_pinned_baseline() {
    let parts = vec![Part::Xcv50; 16];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 17, 42, 170_000);

    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::<FragAware>::default());
    assert_row(
        &fleet.run(&trace).unwrap(),
        &Expected {
            devices: 16,
            policy: "frag-aware",
            submitted: 170,
            admitted: 170,
            retries: 0,
            queued_at_end: 0,
            defrag_cycles: 3,
            function_moves: 11,
            cells_moved: 528,
            frames_written: 89472,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 680,
            previews: 680,
            plans_reused: 173,
            summary_hits: 2453,
            summary_misses: 267,
        },
    );

    let config =
        FleetConfig::heterogeneous(&parts, ServiceConfig::default()).with_rebalance_threshold(0.4);
    let mut fleet = FleetService::new(config, Box::<RoundRobin>::default())
        .with_rebalancer(Box::<WorstShardDrain>::default());
    assert_row(
        &fleet.run(&trace).unwrap(),
        &Expected {
            devices: 16,
            policy: "round-robin",
            submitted: 170,
            admitted: 170,
            retries: 12,
            queued_at_end: 0,
            defrag_cycles: 0,
            function_moves: 0,
            cells_moved: 0,
            frames_written: 0,
            migrations: 24,
            migrations_refused: 0,
            make_room_calls: 212,
            previews: 0,
            plans_reused: 194,
            summary_hits: 3931,
            summary_misses: 304,
        },
    );
}

/// The N = 64 frag-aware sweep: the plan-reuse poster row (one preview
/// per arrival, zero rearrangement, every plan reused).
#[test]
#[ignore = "scale row: run in release (ci.sh RTM_STRESS=1)"]
fn n64_row_matches_the_pinned_baseline() {
    let parts = vec![Part::Xcv50; 64];
    let trace = Scenario::AdversarialFragmenter.fleet_trace(Part::Xcv50, 65, 42, 170_000);
    let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
    let mut fleet = FleetService::new(config, Box::<FragAware>::default());
    assert_row(
        &fleet.run(&trace).unwrap(),
        &Expected {
            devices: 64,
            policy: "frag-aware",
            submitted: 650,
            admitted: 650,
            retries: 0,
            queued_at_end: 0,
            defrag_cycles: 0,
            function_moves: 0,
            cells_moved: 0,
            frames_written: 0,
            migrations: 0,
            migrations_refused: 0,
            make_room_calls: 2600,
            previews: 2600,
            plans_reused: 650,
            summary_hits: 40502,
            summary_misses: 1098,
        },
    );
}
