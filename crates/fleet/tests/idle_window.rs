//! Deadline safety of the migration machinery, pinned
//! deterministically: a migration scheduled into an idle window
//! shorter than its reconfiguration cost is refused — and the queued
//! request whose deadline defined that window still starts on time.

use rtm_fleet::rebalance::{MigrationDirective, MigrationOutcome};
use rtm_fleet::routing::RoundRobin;
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Trace, TraceEvent};
use rtm_service::{QosTier, ServiceConfig, ServiceReport};

fn arrival(id: u64, rows: u16, cols: u16, deadline: Option<u64>) -> TraceEvent {
    TraceEvent::Arrival(Arrival {
        id,
        rows,
        cols,
        duration: None,
        deadline,
        tier: QosTier::Standard,
    })
}

/// Build a two-XCV50 fleet (us_per_clb = 100 for easy arithmetic) with
/// a daemon on each shard and one big deadline-bound request queued on
/// shard 0 that cannot fit until something departs.
fn queued_fleet(deadline: u64) -> (FleetService, Vec<ServiceReport>) {
    let shard = ServiceConfig::default().with_move_cost(100);
    let config = FleetConfig::heterogeneous(&[Part::Xcv50, Part::Xcv50], shard);
    let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));

    let mut trace = Trace::new("setup");
    trace.push(0, arrival(0, 16, 6, None)); // round-robin -> shard 0
    trace.push(1_000, arrival(1, 16, 6, None)); // -> shard 1
                                                // 16x21 fits neither device while the daemons run (24 - 6 = 18
                                                // free columns), so it queues on the best-ranked shard (0) with
                                                // its deadline.
    trace.push(2_000, arrival(2, 16, 21, Some(deadline)));
    let report = fleet.run(&trace).unwrap();
    assert_eq!(report.admitted(), 2);
    assert_eq!(report.queued_at_end(), 1, "{report}");
    assert_eq!(fleet.shards()[0].queue_len(), 1, "queued on shard 0");

    let reports = (0..2)
        .map(|i| ServiceReport::new(format!("migrate#{i}")))
        .collect();
    (fleet, reports)
}

#[test]
fn migration_into_a_too_short_window_is_refused_and_the_deadline_holds() {
    // The queued 16x21 request reserves area()·us_per_clb = 33_600 µs
    // of port headroom before its deadline at t=42_000; at t=2_000
    // that leaves a 6_400 µs idle window on shard 0. Migrating the
    // 96-CLB daemon off shard 0 would hold the port for 9_600 µs —
    // longer than the window, so it must be refused even though it
    // would eventually *help* the queued request.
    let (mut fleet, mut reports) = queued_fleet(42_000);
    let directive = MigrationDirective {
        trace_id: 0,
        from: 0,
        to: 1,
    };
    let outcome = fleet.migrate(directive, &mut reports).unwrap();
    assert_eq!(
        outcome,
        MigrationOutcome::RefusedWindow {
            needed: 9_600,
            window: 6_400,
        },
        "the copy cannot fit the idle window"
    );
    // Nothing moved, nothing was accounted.
    assert_eq!(fleet.shards()[0].resident_count(), 1);
    assert_eq!(fleet.shards()[1].resident_count(), 1);
    assert_eq!(fleet.shards()[0].queue_len(), 1);
    for r in &reports {
        assert_eq!(
            r.migrations_in + r.migrations_out + r.migrations_restored,
            0
        );
    }

    // The queued request still meets its deadline: the daemon departs
    // at t=10_000, the queue is served, and the admission lands well
    // before t=42_000 with no deadline rejection anywhere.
    let mut rest = Trace::new("departure");
    rest.push(10_000, TraceEvent::Departure { id: 0 });
    let report = fleet.run(&rest).unwrap();
    assert_eq!(report.admitted(), 1, "{report}");
    assert_eq!(report.rejected_deadline(), 0, "{report}");
    assert_eq!(fleet.shards()[0].queue_len(), 0);
    assert_eq!(fleet.shards()[0].resident_count(), 1);
}

#[test]
fn migration_into_a_long_window_proceeds() {
    // Same topology, deadline far out: the 9_600 µs copy fits the
    // window (deadline 100_000 -> window 64_400 µs) and completes.
    let (mut fleet, mut reports) = queued_fleet(100_000);
    let outcome = fleet
        .migrate(
            MigrationDirective {
                trace_id: 0,
                from: 0,
                to: 1,
            },
            &mut reports,
        )
        .unwrap();
    assert_eq!(outcome, MigrationOutcome::Completed);
    assert_eq!(fleet.shards()[0].resident_count(), 0);
    assert_eq!(fleet.shards()[1].resident_count(), 2);
    assert_eq!(reports[0].migrations_out, 1);
    assert_eq!(reports[1].migrations_in, 1);
    assert!(fleet
        .shards()
        .iter()
        .all(|s| s.manager().bookkeeping_consistent()));

    // The shard 0 queue can now be served by the next run step: with
    // the daemon gone, the 16x21 request fits and starts on time.
    let report = fleet.run(&Trace::new("drain")).unwrap();
    let _ = report;
    // An empty trace has no events, so serve via a timestamped no-op:
    // the departure-free path is exercised in the refusal test; here
    // the migrated daemon must depart on the *target* shard, proving
    // the fleet delivers lifecycle events to the new owner.
    let mut rest = Trace::new("depart-on-target");
    rest.push(20_000, TraceEvent::Departure { id: 0 });
    let report = fleet.run(&rest).unwrap();
    assert_eq!(report.departures(), 1, "{report}");
    assert_eq!(
        report.shards[1].report.departures, 1,
        "the departure reached the migrated function's new shard\n{report}"
    );
    assert_eq!(fleet.shards()[1].resident_count(), 1);
}
