//! Mode-invariance net for two-phase admission: with deferred
//! execution on, the routing edge only *decides* (ranking +
//! reservation) and each shard implements its tickets inside the next
//! shard-local segment — yet the [`FleetReport`] and the merged event
//! stream must be **byte-identical** to immediate execution, under
//! both engines and every thread count.
//!
//! Why this must hold (the construction, abridged from
//! `rtm_fleet::fleet`): a ticket's execute events land on its own
//! shard's buffer, and every service entry point that could observe
//! admission state drains pending tickets first — so the per-shard
//! event order, the only order the epoch merge depends on, is the same
//! whichever phase ran the load. All routing-policy-visible state is
//! arena-derived, and the arena is shaped at *reserve* time, so
//! rankings (and therefore every later decision) agree too.
//!
//! The deferred failure path gets its own deterministic anchors: a
//! forced execute-time `LoadFailed` (via the failure-injection seam)
//! must fail over down the parked ranking tail with exactly the
//! immediate path's accounting, keeping the report identity
//! `Σ shard_submitted = submitted − unplaceable + load_failovers`.
//!
//! The horizon min-heap rides along: `HorizonClock` must agree with
//! the `engine::horizon` reference scan over arbitrary admission /
//! departure / advance interleavings (the heap is lazily rebuilt from
//! per-shard `schedule_version` dirty flags; a stale entry must never
//! win).

use proptest::prelude::*;
use rtm_fleet::engine::{horizon, HorizonClock};
use rtm_fleet::rebalance::{RebalancePolicy, UtilizationLevelling, WorstShardDrain};
use rtm_fleet::routing::{FragAware, LeastUtilized, RoundRobin, RoutingPolicy};
use rtm_fleet::{EngineKind, FleetConfig, FleetReport, FleetService};
use rtm_fpga::part::Part;
use rtm_sched::task::Micros;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{AdmissionBid, QosTier, RuntimeService, ServiceConfig, ServiceReport};

const MENU: [Part; 3] = [Part::Xcv50, Part::Xcv100, Part::Xcv200];

/// Engines both modes are pinned under. Debug keeps the pair that
/// matters most (sequential + one oversubscribed count); `ci.sh` runs
/// the full `{1, 2, 4, 8}` pin in release.
fn engines() -> Vec<EngineKind> {
    if cfg!(debug_assertions) {
        vec![EngineKind::Sequential, EngineKind::Parallel { threads: 2 }]
    } else {
        vec![
            EngineKind::Sequential,
            EngineKind::Parallel { threads: 1 },
            EngineKind::Parallel { threads: 2 },
            EngineKind::Parallel { threads: 4 },
            EngineKind::Parallel { threads: 8 },
        ]
    }
}

fn policy_by_index(i: usize) -> Box<dyn RoutingPolicy> {
    match i % 3 {
        0 => Box::new(RoundRobin::default()),
        1 => Box::new(LeastUtilized),
        _ => Box::new(FragAware::default()),
    }
}

fn rebalancer_by_index(i: usize) -> Option<Box<dyn RebalancePolicy>> {
    match i % 3 {
        0 => None,
        1 => Some(Box::new(WorstShardDrain::default())),
        _ => Some(Box::new(UtilizationLevelling::default())),
    }
}

/// One full traced run: fresh fleet (identical initial state for every
/// combination), `deferred` picks the admission mode, `fail_first`
/// arms the failure-injection seam on shard 0 before the run.
fn run_mode(
    parts: &[Part],
    policy_sel: usize,
    rebalancer_sel: usize,
    trace: &Trace,
    engine: EngineKind,
    deferred: bool,
    fail_first: u32,
) -> (FleetReport, String) {
    let mut config = FleetConfig::heterogeneous(parts, ServiceConfig::default())
        .with_engine(engine)
        .with_deferred_execution(deferred);
    if rebalancer_by_index(rebalancer_sel).is_some() {
        config = config.with_rebalance_threshold(0.4);
    }
    let mut fleet = FleetService::new(config, policy_by_index(policy_sel));
    if let Some(r) = rebalancer_by_index(rebalancer_sel) {
        fleet = fleet.with_rebalancer(r);
    }
    if fail_first > 0 {
        fleet.force_execute_failures(0, fail_first);
    }
    fleet.enable_events();
    let report = fleet.run(trace).expect("equivalence-net run stays up");
    let stream = rtm_obs::to_jsonl_stream(&fleet.take_events());
    (report, stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 1 } else { 3 }))]
    /// The net itself: random fleet shapes × scenarios × policies ×
    /// rebalancers, every engine × both modes equal to the immediate
    /// sequential baseline — reports field-for-field, event streams
    /// byte-for-byte.
    #[test]
    fn deferred_execution_is_mode_invariant_over_random_fleets(
        parts_idx in proptest::collection::vec(0usize..3, 2..5),
        scenario_sel in 0usize..3,
        policy_sel in 0usize..3,
        rebalancer_sel in 0usize..3,
        seed in 1u64..500,
    ) {
        let parts: Vec<Part> = parts_idx.iter().map(|&i| MENU[i]).collect();
        let scenario = Scenario::ALL[scenario_sel];
        let trace = scenario.fleet_trace(Part::Xcv50, parts.len() as u64, seed, 150_000);

        let (baseline, base_stream) = run_mode(
            &parts, policy_sel, rebalancer_sel, &trace, EngineKind::Sequential, false, 0,
        );
        for engine in engines() {
            for deferred in [false, true] {
                if engine == EngineKind::Sequential && !deferred {
                    continue;
                }
                let (report, stream) = run_mode(
                    &parts, policy_sel, rebalancer_sel, &trace, engine, deferred, 0,
                );
                prop_assert_eq!(
                    &baseline, &report,
                    "deferred={} under {:?} diverged from immediate sequential",
                    deferred, engine
                );
                prop_assert_eq!(
                    &base_stream, &stream,
                    "event stream diverged (deferred={}, {:?})", deferred, engine
                );
            }
        }
        prop_assert!(!base_stream.is_empty(), "traced runs must record events");
    }
}

/// A three-arrival trace on two XCV50s: enough for a failover chain
/// (two candidates per ranking) without drowning the assertion.
fn failover_trace() -> Trace {
    let mut trace = Trace::new("forced-failover");
    for id in 0..3u64 {
        trace.push(
            id * 10_000,
            TraceEvent::Arrival(Arrival {
                id,
                rows: 6,
                cols: 6,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            }),
        );
    }
    trace
}

/// Deferred `LoadFailed` anchor: shard 0's first ticket execution is
/// forced to fail, so the resolution edge must walk the parked ranking
/// tail and land the request on shard 1 — with identical reports and
/// event streams in both modes, under every engine. The failover
/// accounting identity is asserted explicitly.
#[test]
fn forced_deferred_load_failure_fails_over_identically() {
    let parts = [Part::Xcv50, Part::Xcv50];
    let trace = failover_trace();

    let (baseline, base_stream) = run_mode(
        &parts,
        1, // least-utilized: deterministic [emptier, fuller] ranking
        0,
        &trace,
        EngineKind::Sequential,
        false,
        1,
    );
    assert_eq!(
        baseline.failures(),
        1,
        "the injected execute failure must surface: {baseline}"
    );
    assert_eq!(
        baseline.load_failovers, 1,
        "the failed shard's accounting is a failover: {baseline}"
    );
    assert_eq!(baseline.admitted(), 3, "every request lands: {baseline}");
    assert_eq!(baseline.retries, 1, "the failover is a retry: {baseline}");
    let shard_submitted: usize = baseline.shards.iter().map(|s| s.report.submitted).sum();
    assert_eq!(
        shard_submitted,
        baseline.submitted - baseline.unplaceable + baseline.load_failovers,
        "failover accounting identity: {baseline}"
    );
    assert!(
        base_stream.contains("\"rejected\""),
        "the forced failure must be visible in the stream"
    );

    for engine in engines() {
        for deferred in [false, true] {
            let (report, stream) = run_mode(&parts, 1, 0, &trace, engine, deferred, 1);
            assert_eq!(
                baseline, report,
                "forced failover diverged (deferred={deferred}, {engine:?})"
            );
            assert_eq!(
                base_stream, stream,
                "forced-failover stream diverged (deferred={deferred}, {engine:?})"
            );
        }
    }
}

/// The chain-exhausted variant: a single-shard fleet has no ranking
/// tail, so a forced deferred failure spends the request — same
/// consumption accounting as the immediate path, in both modes.
#[test]
fn forced_deferred_failure_with_no_failover_spends_the_request() {
    let parts = [Part::Xcv50];
    let trace = failover_trace();

    let (baseline, base_stream) = run_mode(&parts, 0, 0, &trace, EngineKind::Sequential, false, 1);
    assert_eq!(baseline.failures(), 1, "{baseline}");
    assert_eq!(
        baseline.load_failovers, 0,
        "a spent request's own accounting is not a failover: {baseline}"
    );
    assert_eq!(baseline.admitted(), 2, "{baseline}");
    assert_eq!(
        baseline.admitted()
            + baseline.rejected_deadline()
            + baseline.failures()
            + baseline.cancelled()
            + baseline.queued_at_end()
            + baseline.unplaceable,
        baseline.submitted + baseline.load_failovers,
        "conservation holds with the spent request: {baseline}"
    );

    for engine in engines() {
        for deferred in [false, true] {
            let (report, stream) = run_mode(&parts, 0, 0, &trace, engine, deferred, 1);
            assert_eq!(
                baseline, report,
                "spent-request run diverged (deferred={deferred}, {engine:?})"
            );
            assert_eq!(base_stream, stream);
        }
    }
}

/// Applies one scripted op to the shard set, keeping the admitted-id
/// bookkeeping the departure ops draw from.
fn apply_horizon_op(
    shards: &mut [RuntimeService],
    reports: &mut [ServiceReport],
    live: &mut Vec<(usize, u64)>,
    next_id: &mut u64,
    op: (u8, usize, u64),
) {
    let (kind, sel, val) = op;
    let s = sel % shards.len();
    match kind {
        // Admit with a bounded residency: inserts an expiry.
        0..=2 => {
            let a = Arrival {
                id: *next_id,
                rows: 3,
                cols: 3,
                duration: Some(10_000 + (val % 90_000)),
                deadline: None,
                tier: QosTier::Standard,
            };
            *next_id += 1;
            let at = shards[s].now();
            if shards[s]
                .admit(at, AdmissionBid::direct(a), &mut reports[s])
                .map(|o| o == rtm_service::OfferOutcome::Admitted)
                .unwrap_or(false)
            {
                live.push((s, a.id));
            }
        }
        // Admit a daemon (no expiry): the schedule must NOT change.
        3 => {
            let a = Arrival {
                id: *next_id,
                rows: 2,
                cols: 2,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            };
            *next_id += 1;
            let at = shards[s].now();
            let _ = shards[s].admit(at, AdmissionBid::direct(a), &mut reports[s]);
        }
        // Depart a random live id: removes an expiry.
        4..=5 => {
            if !live.is_empty() {
                let (owner, id) = live.swap_remove(val as usize % live.len());
                shards[owner].depart(id, &mut reports[owner]).unwrap();
            }
        }
        // Advance one shard past some expiries: departs due residents.
        _ => {
            let to = shards[s].now() + (val % 60_000);
            shards[s].advance_to(to, &mut reports[s]).unwrap();
            live.retain(|&(owner, id)| owner != s || shards[owner].holds(id));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 4 } else { 32 }))]
    /// Heap-vs-scan equivalence: after every op in an arbitrary
    /// admission/departure/advance interleaving, the lazily-rebuilt
    /// min-heap clock must return exactly what the O(N) reference scan
    /// returns, for a sweep of trace-event candidates.
    #[test]
    fn horizon_clock_equals_reference_scan(
        n in 1usize..5,
        ops in proptest::collection::vec(
            (0u8..8, 0usize..8, 0u64..1_000_000), 1..40),
    ) {
        let mut shards: Vec<RuntimeService> = (0..n)
            .map(|_| RuntimeService::new(ServiceConfig::default().with_part(Part::Xcv50)))
            .collect();
        let mut reports: Vec<ServiceReport> = (0..n)
            .map(|i| ServiceReport::new(format!("horizon#{i}")))
            .collect();
        let mut clock = HorizonClock::new(n);
        let mut live: Vec<(usize, u64)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            apply_horizon_op(&mut shards, &mut reports, &mut live, &mut next_id, op);
            // Sweep trace candidates around the schedule: none, early,
            // and far-future must all agree with the scan.
            for next_trace in [None, Some(0), Some(op.2), Some(Micros::MAX / 2)] {
                prop_assert_eq!(
                    clock.next(next_trace, &shards),
                    horizon(next_trace, &shards),
                    "clock diverged from scan (next_trace={:?})", next_trace
                );
            }
        }
    }
}
