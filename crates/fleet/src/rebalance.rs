//! Fleet rebalancing: which resident function should move to which
//! other device, and when.
//!
//! Admission-time routing (the [`RoutingPolicy`](crate::RoutingPolicy))
//! decides where a function *starts*; it never revisits the decision,
//! so placements age — the comb patterns state-blind round-robin leaves
//! behind are the canonical example. A [`RebalancePolicy`] closes that
//! gap: it reads the fleet's per-device state and proposes
//! [`MigrationDirective`]s — *move this resident function from shard A
//! to shard B* — which the [`FleetService`](crate::FleetService)
//! executes during **idle port windows** (never delaying a queued
//! deadline, see
//! [`RuntimeService::idle_window`](rtm_service::RuntimeService::idle_window))
//! via the core extract/readmit migration machinery. This is the
//! defragmentation-by-delayed-repacking discipline of the strip-packing
//! literature lifted to the fleet: repair work happens off the critical
//! path, paid for with port time nobody was using.
//!
//! Two planners ship:
//!
//! * [`WorstShardDrain`] — greedy comb repair: drain the most
//!   fragmented shard, picking the resident whose extraction buys the
//!   most predicted fragmentation improvement per relocated CLB;
//! * [`UtilizationLevelling`] — classic load levelling: move area from
//!   the fullest shard toward the emptiest until they meet the mean.

use rtm_service::RuntimeService;
use std::fmt;

/// One proposed migration: move the function `trace_id` (resident on
/// shard `from`) onto shard `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDirective {
    /// The trace-level id of the function to move.
    pub trace_id: u64,
    /// The shard it is resident on.
    pub from: usize,
    /// The shard it should move to.
    pub to: usize,
}

/// What became of one executed [`MigrationDirective`] (see
/// [`FleetService::migrate`](crate::FleetService::migrate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// Extracted, readmitted, resident on the target — the function's
    /// residency clock never noticed.
    Completed,
    /// Refused: the directive names a function that is not resident on
    /// `from`, identical shards, or an out-of-range shard index.
    RefusedUnknown,
    /// Refused: the target cannot make room for the function's shape
    /// even with compaction.
    RefusedNoRoom,
    /// Refused: the reconfiguration-port time the copy needs exceeds
    /// the idle window some queued deadline-bound request leaves open.
    /// A migration may never make a queued request late.
    RefusedWindow {
        /// Port time the migration would have needed (µs).
        needed: u64,
        /// The violated idle window (µs).
        window: u64,
    },
    /// The readmission failed on the target; the function was restored
    /// on the source from the extraction checkpoint, frame for frame.
    FailedRestored,
}

/// A fleet rebalancing planner: reads the shards (read-only) and
/// proposes migrations, best first. The fleet executes at most
/// [`FleetConfig::max_migrations_per_trigger`](crate::FleetConfig::max_migrations_per_trigger)
/// of them per trigger, each still subject to the idle-window and
/// room checks — a planner proposes, the safety machinery disposes.
pub trait RebalancePolicy: fmt::Debug + Send {
    /// The planner's name (reported in the
    /// [`FleetReport`](crate::FleetReport)).
    fn name(&self) -> &'static str;

    /// Proposes migrations, best first.
    fn plan(&mut self, shards: &[RuntimeService]) -> Vec<MigrationDirective>;
}

/// Shards (other than `from`) whose device can physically hold a
/// `rows`×`cols` function, ranked best-target-first on cheap
/// epoch-cached summaries: devices whose largest free rectangle already
/// covers the area first (the copy lands without rearrangement), least
/// fragmented of those, least utilised next, index last.
fn rank_targets(shards: &[RuntimeService], from: usize, rows: u16, cols: u16) -> Vec<usize> {
    let area = rows as u32 * cols as u32;
    let mut targets: Vec<(usize, bool, f64, f64)> = shards
        .iter()
        .enumerate()
        .filter(|(i, s)| *i != from && rows <= s.part().clb_rows() && cols <= s.part().clb_cols())
        .map(|(i, s)| {
            let m = s.manager().summary().frag;
            (
                i,
                m.largest_rect >= area,
                m.fragmentation(),
                m.utilisation(),
            )
        })
        .collect();
    targets.sort_by(|(a, fits_a, frag_a, util_a), (b, fits_b, frag_b, util_b)| {
        fits_b
            .cmp(fits_a)
            .then(frag_a.total_cmp(frag_b))
            .then(util_a.total_cmp(util_b))
            .then(a.cmp(b))
    });
    targets.into_iter().map(|(i, _, _, _)| i).collect()
}

/// True when some queued request on `shard` is larger than the shard's
/// largest free rectangle: no local compaction can seat it, only
/// migrating residents away (or a departure) can. The condition the
/// rebalancing trigger watches besides raw fragmentation.
pub fn queue_starved(shard: &RuntimeService) -> bool {
    let largest = shard.manager().summary().frag.largest_rect;
    shard.queued_requests().iter().any(|a| a.area() > largest)
}

/// Greedy worst-shard drain: take the neediest shard — a shard whose
/// queue is geometry-starved ([`queue_starved`]) first, the most
/// fragmented one otherwise — and migrate away the resident whose
/// extraction helps most. On a starved shard, candidates are ranked by
/// the largest free rectangle their departure would open (the queued
/// request needs *room*, wherever it comes from); on a merely
/// fragmented shard, by predicted fragmentation repair **per relocated
/// CLB** (the comb tooth whose removal merges the gaps around it
/// scores far above an interior function of the same size). Targets
/// are ranked by the cheap summary cut; only candidates whose move is
/// predicted to make progress are proposed, so a healthy fleet yields
/// no directives at all.
#[derive(Debug, Clone, Copy)]
pub struct WorstShardDrain {
    /// Cap on proposed directives per planning call.
    pub max_directives: usize,
}

impl Default for WorstShardDrain {
    /// Propose up to four drains per trigger — enough to repair one
    /// comb in a couple of waves without monopolising the port.
    fn default() -> Self {
        WorstShardDrain { max_directives: 4 }
    }
}

impl RebalancePolicy for WorstShardDrain {
    fn name(&self) -> &'static str {
        "worst-shard-drain"
    }

    fn plan(&mut self, shards: &[RuntimeService]) -> Vec<MigrationDirective> {
        // The neediest shard that actually holds functions: starved
        // queues outrank fragmentation, fragmentation breaks ties.
        let src = shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.resident_count() > 0)
            .max_by(|(a, sa), (b, sb)| {
                let (ka, kb) = (
                    (
                        queue_starved(sa),
                        sa.manager().fragmentation().fragmentation(),
                    ),
                    (
                        queue_starved(sb),
                        sb.manager().fragmentation().fragmentation(),
                    ),
                );
                ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1)).then(b.cmp(a))
            });
        let Some((src, shard)) = src else {
            return Vec::new();
        };
        let before = shard.manager().fragmentation();
        let starved = queue_starved(shard);
        if !starved && before.fragmentation() <= 0.0 {
            return Vec::new();
        }
        // Score every resident by what its departure buys: room for
        // the starved queue (largest free rectangle opened), or comb
        // repair (frag gain per relocated CLB) — and keep only moves
        // predicted to make progress.
        let mut scored: Vec<(f64, u64, u16, u16)> = shard
            .resident_functions()
            .into_iter()
            .filter_map(|(tid, fid, rect)| {
                let after = shard.manager().preview_release(fid)?;
                let score = if starved {
                    (after.largest_rect > before.largest_rect)
                        .then_some(after.largest_rect as f64)?
                } else {
                    let gain = before.fragmentation() - after.fragmentation();
                    (gain > 0.0).then_some(gain / rect.area() as f64)?
                };
                Some((score, tid, rect.rows, rect.cols))
            })
            .collect();
        scored.sort_by(|(ga, ta, _, _), (gb, tb, _, _)| gb.total_cmp(ga).then(ta.cmp(tb)));

        let mut out = Vec::new();
        for (_, tid, rows, cols) in scored.into_iter().take(self.max_directives) {
            if let Some(&to) = rank_targets(shards, src, rows, cols).first() {
                out.push(MigrationDirective {
                    trace_id: tid,
                    from: src,
                    to,
                });
            }
        }
        out
    }
}

/// Utilisation levelling: move area from the fullest shard toward the
/// emptiest one until both sit near the fleet mean. Per call it
/// proposes moving the resident whose area best matches the fullest
/// shard's excess over the mean, aimed at the best-ranked target that
/// can hold it — the classic load-balancing complement to
/// [`WorstShardDrain`]'s geometric repair.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationLevelling {
    /// Minimum utilisation spread (fullest − emptiest) below which the
    /// fleet counts as level and no migration is proposed.
    pub min_spread: f64,
    /// Cap on proposed directives per planning call.
    pub max_directives: usize,
}

impl Default for UtilizationLevelling {
    /// Level only spreads above ten percentage points, two moves per
    /// trigger.
    fn default() -> Self {
        UtilizationLevelling {
            min_spread: 0.10,
            max_directives: 2,
        }
    }
}

impl RebalancePolicy for UtilizationLevelling {
    fn name(&self) -> &'static str {
        "utilization-levelling"
    }

    fn plan(&mut self, shards: &[RuntimeService]) -> Vec<MigrationDirective> {
        let utils: Vec<f64> = shards
            .iter()
            .map(|s| s.manager().fragmentation().utilisation())
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        let Some((src, &src_util)) = utils
            .iter()
            .enumerate()
            .max_by(|(a, ua), (b, ub)| ua.total_cmp(ub).then(b.cmp(a)))
        else {
            return Vec::new();
        };
        let min_util = utils.iter().copied().fold(f64::INFINITY, f64::min);
        if src_util - min_util < self.min_spread {
            return Vec::new();
        }
        // The area the source should shed to come back to the mean.
        let total = shards[src].manager().fragmentation().total_cells as f64;
        let excess = ((src_util - mean) * total).max(1.0);

        // Residents whose area comes closest to the excess first.
        let mut candidates: Vec<(u64, u16, u16, u32)> = shards[src]
            .resident_functions()
            .into_iter()
            .map(|(tid, _, rect)| (tid, rect.rows, rect.cols, rect.area()))
            .collect();
        candidates.sort_by(|(ta, _, _, aa), (tb, _, _, ab)| {
            let (da, db) = ((*aa as f64 - excess).abs(), (*ab as f64 - excess).abs());
            da.total_cmp(&db).then(ta.cmp(tb))
        });

        let mut out = Vec::new();
        for (tid, rows, cols, _) in candidates.into_iter().take(self.max_directives) {
            // Aim at the emptiest eligible target, not the generic
            // frag-ranked one: this planner levels load.
            let target = shards
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    *i != src && rows <= s.part().clb_rows() && cols <= s.part().clb_cols()
                })
                .min_by(|(a, sa), (b, sb)| {
                    let (ua, ub) = (
                        sa.manager().fragmentation().utilisation(),
                        sb.manager().fragmentation().utilisation(),
                    );
                    ua.total_cmp(&ub).then(a.cmp(b))
                });
            if let Some((to, _)) = target {
                out.push(MigrationDirective {
                    trace_id: tid,
                    from: src,
                    to,
                });
            }
        }
        out
    }
}

/// The standard rebalancing planners, for sweeps.
pub fn standard_rebalancers() -> Vec<Box<dyn RebalancePolicy>> {
    vec![
        Box::new(WorstShardDrain::default()),
        Box::new(UtilizationLevelling::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::part::Part;
    use rtm_service::trace::Arrival;
    use rtm_service::{QosTier, ServiceConfig, ServiceReport};

    fn admit(shard: &mut RuntimeService, id: u64, rows: u16, cols: u16) {
        let mut rep = ServiceReport::new("setup");
        let got = shard
            .admit(
                0,
                rtm_service::AdmissionBid::direct(Arrival {
                    id,
                    rows,
                    cols,
                    duration: None,
                    deadline: None,
                    tier: QosTier::Standard,
                }),
                &mut rep,
            )
            .unwrap();
        assert_eq!(got, rtm_service::OfferOutcome::Admitted);
    }

    #[test]
    fn drain_targets_the_comb_tooth_with_best_gain_per_clb() {
        let mut shards: Vec<RuntimeService> = (0..2)
            .map(|_| RuntimeService::new(ServiceConfig::default().with_part(Part::Xcv50)))
            .collect();
        // Build a comb on shard 0: strips at cols 0, 6, 12, 18 (the
        // best-fit allocator packs them left; admit 8 then depart none
        // — instead admit 4 spaced by admitting+departing fillers).
        for (id, _) in [(0u64, 0u16), (1, 6), (2, 12), (3, 18)].iter().enumerate() {
            admit(&mut shards[0], id as u64, 16, 3);
            admit(&mut shards[0], 100 + id as u64, 16, 3);
        }
        let mut rep = ServiceReport::new("depart");
        for id in 100..104u64 {
            shards[0].depart(id, &mut rep).unwrap();
        }
        assert!(
            shards[0].manager().fragmentation().fragmentation() > 0.5,
            "comb built: {}",
            shards[0].manager().fragmentation()
        );

        let plan = WorstShardDrain::default().plan(&shards);
        assert!(!plan.is_empty(), "a comb must be worth draining");
        assert_eq!(plan[0].from, 0);
        assert_eq!(plan[0].to, 1, "the blank sibling is the obvious target");
        // Draining any strip merges two gaps; all proposed moves carry
        // positive predicted gain by construction.
        for d in &plan {
            assert!(shards[0].holds(d.trace_id));
        }
        // A blank fleet proposes nothing.
        let blank: Vec<RuntimeService> = (0..2)
            .map(|_| RuntimeService::new(ServiceConfig::default()))
            .collect();
        assert!(WorstShardDrain::default().plan(&blank).is_empty());
    }

    #[test]
    fn levelling_moves_area_from_full_to_empty() {
        let mut shards: Vec<RuntimeService> = (0..3)
            .map(|_| RuntimeService::new(ServiceConfig::default().with_part(Part::Xcv50)))
            .collect();
        admit(&mut shards[0], 0, 16, 8);
        admit(&mut shards[0], 1, 16, 6);
        admit(&mut shards[1], 2, 4, 4);
        let plan = UtilizationLevelling::default().plan(&shards);
        assert!(!plan.is_empty());
        assert_eq!(plan[0].from, 0, "fullest shard sheds");
        assert_eq!(plan[0].to, 2, "emptiest shard receives");
        // A level fleet proposes nothing.
        let mut level: Vec<RuntimeService> = (0..2)
            .map(|_| RuntimeService::new(ServiceConfig::default()))
            .collect();
        admit(&mut level[0], 0, 8, 8);
        admit(&mut level[1], 1, 8, 8);
        assert!(UtilizationLevelling::default().plan(&level).is_empty());
    }

    #[test]
    fn standard_rebalancers_cover_both_families() {
        let names: Vec<&str> = standard_rebalancers().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["worst-shard-drain", "utilization-levelling"]);
    }
}
