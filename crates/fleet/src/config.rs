//! Fleet configuration: the shard list and the fleet-level trigger.

use crate::engine::EngineKind;
use rtm_fpga::part::Part;
use rtm_service::ServiceConfig;

/// Configuration of a [`FleetService`](crate::FleetService): one
/// [`ServiceConfig`] per shard (each with its own device part,
/// allocation strategy, queue order and defragmentation threshold) plus
/// the fleet-level defragmentation trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-shard service configurations. Order defines shard indices.
    pub shards: Vec<ServiceConfig>,
    /// Fleet-level defragmentation trigger: when the *mean*
    /// fragmentation index across all devices exceeds this threshold
    /// after an event, one cycle is forced on the device with the
    /// highest predicted improvement — even if that device's own
    /// threshold was not crossed. Set above `1.0` to disable.
    pub fleet_frag_threshold: f64,
    /// How many ranked devices the router offers a request to before
    /// queueing it. Each offer to a device without an attached plan
    /// costs that device a `make_room` planning pass, so on big fleets
    /// an uncapped retry chain makes every congested arrival pay
    /// O(devices) planning. The cap bounds that cost; requests that
    /// strike out queue on the best-ranked device that reported
    /// "no room", exactly as before.
    pub max_offer_attempts: usize,
    /// Fleet-level rebalancing trigger: when the *worst* per-device
    /// fragmentation index exceeds this threshold after an event — and
    /// a [`RebalancePolicy`](crate::RebalancePolicy) is installed —
    /// the fleet asks the planner for migrations and executes them
    /// inside the shards' idle port windows. Worst rather than mean:
    /// rebalancing drains the one shard that aged badly, a signal a
    /// healthy majority would dilute out of a mean. Set above `1.0` to
    /// disable (the default: rebalancing is opt-in).
    pub rebalance_threshold: f64,
    /// Cap on migrations executed per rebalance trigger: bounds the
    /// port time one trigger wave can consume, the same way
    /// [`FleetConfig::max_offer_attempts`] bounds routing cost.
    pub max_migrations_per_trigger: usize,
    /// The stepping engine: how shard-local segments between
    /// cross-shard synchronization points are executed. Defaults to
    /// [`EngineKind::Sequential`]; [`EngineKind::Parallel`] runs the
    /// same segments on scoped worker threads with byte-identical
    /// results (the schedule-invariance suite pins the equality).
    pub engine: EngineKind,
    /// Defer admission execution to the engine's execute phase: the
    /// routing edge only *decides* (ranking + reservation, sequential
    /// in shard-index order) and the heavy implementation work — cells,
    /// nets, configuration frames — runs when each shard drains its own
    /// ticket queue inside the next shard-local phase, where
    /// [`EngineKind::Parallel`] fans it over workers. Reports and event
    /// streams are byte-identical with and without deferral (pinned by
    /// `tests/deferred_equivalence.rs` and the twin baseline rows);
    /// only the wall-clock shape of the epoch changes. Off by default.
    pub deferred_execution: bool,
    /// QoS-tier preemption: when a high-tier reservation strikes out on
    /// every ranked shard, evict the cheapest lower-tier resident
    /// (smallest CLB footprint × remaining runtime) — migrating it to a
    /// sibling shard with room, otherwise parking its extracted bundle
    /// for deadline-safe readmission in a later idle window — and seat
    /// the high-tier request in the freed region. Runs on the
    /// sequential routing edge, so immediate and deferred execution
    /// stay byte-identical by construction. Off by default: untiered
    /// workloads and existing baselines are unaffected.
    pub preemption: bool,
}

impl FleetConfig {
    /// The default cap on per-request offer attempts (see
    /// [`FleetConfig::max_offer_attempts`]): generous enough that small
    /// fleets keep their full cross-device retry chain, flat for big
    /// ones.
    pub const DEFAULT_MAX_OFFER_ATTEMPTS: usize = 8;

    /// The default cap on migrations per rebalance trigger (see
    /// [`FleetConfig::max_migrations_per_trigger`]): enough to repair a
    /// comb in a couple of waves without monopolising the port.
    pub const DEFAULT_MAX_MIGRATIONS_PER_TRIGGER: usize = 4;

    /// A fleet of `n` identical shards.
    pub fn homogeneous(n: usize, shard: ServiceConfig) -> Self {
        FleetConfig {
            shards: vec![shard; n],
            fleet_frag_threshold: 2.0,
            max_offer_attempts: Self::DEFAULT_MAX_OFFER_ATTEMPTS,
            rebalance_threshold: 2.0,
            max_migrations_per_trigger: Self::DEFAULT_MAX_MIGRATIONS_PER_TRIGGER,
            engine: EngineKind::Sequential,
            deferred_execution: false,
            preemption: false,
        }
    }

    /// A fleet with one shard per part, all sharing `template` for
    /// everything but the device.
    pub fn heterogeneous(parts: &[Part], template: ServiceConfig) -> Self {
        FleetConfig {
            shards: parts.iter().map(|p| template.with_part(*p)).collect(),
            fleet_frag_threshold: 2.0,
            max_offer_attempts: Self::DEFAULT_MAX_OFFER_ATTEMPTS,
            rebalance_threshold: 2.0,
            max_migrations_per_trigger: Self::DEFAULT_MAX_MIGRATIONS_PER_TRIGGER,
            engine: EngineKind::Sequential,
            deferred_execution: false,
            preemption: false,
        }
    }

    /// Replaces the fleet-level defragmentation threshold.
    pub fn with_fleet_threshold(mut self, threshold: f64) -> Self {
        self.fleet_frag_threshold = threshold;
        self
    }

    /// Replaces the fleet-level rebalancing threshold.
    pub fn with_rebalance_threshold(mut self, threshold: f64) -> Self {
        self.rebalance_threshold = threshold;
        self
    }

    /// Replaces the per-trigger migration cap.
    pub fn with_max_migrations_per_trigger(mut self, cap: usize) -> Self {
        self.max_migrations_per_trigger = cap.max(1);
        self
    }

    /// Replaces the per-request offer-attempt cap.
    pub fn with_max_offer_attempts(mut self, cap: usize) -> Self {
        self.max_offer_attempts = cap.max(1);
        self
    }

    /// Replaces the stepping engine (see [`EngineKind`]).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Shorthand for the parallel engine: shard-local segments run on
    /// `threads` scoped worker threads (`0` = one per available core).
    /// Results stay byte-identical to the sequential engine.
    pub fn with_parallel_engine(mut self, threads: usize) -> Self {
        self.engine = EngineKind::Parallel { threads };
        self
    }

    /// Enables (or disables) deferred admission execution (see
    /// [`FleetConfig::deferred_execution`]).
    pub fn with_deferred_execution(mut self, deferred: bool) -> Self {
        self.deferred_execution = deferred;
        self
    }

    /// Enables (or disables) QoS-tier preemption (see
    /// [`FleetConfig::preemption`]).
    pub fn with_preemption(mut self, preemption: bool) -> Self {
        self.preemption = preemption;
        self
    }

    /// Adds one more shard.
    pub fn with_shard(mut self, shard: ServiceConfig) -> Self {
        self.shards.push(shard);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = FleetConfig::homogeneous(3, ServiceConfig::default());
        assert_eq!(c.shards.len(), 3);
        assert!(c.fleet_frag_threshold > 1.0, "disabled by default");
        assert!(!c.deferred_execution, "immediate execution by default");
        assert!(
            c.clone().with_deferred_execution(true).deferred_execution,
            "builder flips the execute phase on"
        );
        assert_eq!(
            c.max_offer_attempts,
            FleetConfig::DEFAULT_MAX_OFFER_ATTEMPTS
        );
        assert_eq!(
            c.with_max_offer_attempts(0).max_offer_attempts,
            1,
            "at least one offer always happens"
        );

        let h = FleetConfig::heterogeneous(
            &[Part::Xcv50, Part::Xcv200],
            ServiceConfig::default().with_frag_threshold(0.4),
        )
        .with_fleet_threshold(0.6)
        .with_shard(ServiceConfig::default().with_part(Part::Xcv100));
        assert_eq!(h.shards.len(), 3);
        assert_eq!(h.shards[0].part, Part::Xcv50);
        assert_eq!(h.shards[1].part, Part::Xcv200);
        assert_eq!(h.shards[2].part, Part::Xcv100);
        assert_eq!(h.shards[0].frag_threshold, 0.4, "template propagates");
        assert_eq!(h.fleet_frag_threshold, 0.6);
    }
}
