//! The aggregated outcome of one fleet run.

use rtm_core::PlanStats;
use rtm_fpga::part::Part;
use rtm_obs::MetricsRegistry;
use rtm_sched::qos::QosTier;
use rtm_sched::task::Micros;
use rtm_service::{ServiceReport, TierCounts};
use std::fmt;

/// One shard's share of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard's device part.
    pub part: Part,
    /// Requests this shard ended up hosting (admitted, dropped or
    /// queued here) — the routing decision count.
    pub routed: usize,
    /// The shard's full per-device report.
    pub report: ServiceReport,
}

/// One sample of the fleet-wide fragmentation timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSample {
    /// Simulated time of the sample (µs).
    pub at: Micros,
    /// Mean fragmentation index across all devices.
    pub mean: f64,
    /// Worst per-device fragmentation index.
    pub worst: f64,
}

/// Everything one [`FleetService::run`](crate::FleetService::run)
/// produced: the per-device [`ServiceReport`]s plus the fleet-level
/// counters no single device can see — routing retries, unplaceable
/// rejections, load-failure failovers, fleet-triggered defragmentation
/// cycles and the fleet-wide fragmentation timeline. All per-request
/// totals roll up exactly: the shard reports' `submitted` sum equals
/// [`FleetReport::submitted`] − [`FleetReport::unplaceable`] +
/// [`FleetReport::load_failovers`] (each failover accounts the same
/// request on one more shard).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The trace that was replayed.
    pub trace_name: String,
    /// The routing policy that made the placement decisions.
    pub policy: String,
    /// Arrival events seen at the fleet entrance.
    pub submitted: usize,
    /// Requests no device of the fleet could ever hold (shape exceeds
    /// every part): rejected at routing time, never queued.
    pub unplaceable: usize,
    /// Admissions that succeeded on a retry device after the
    /// first-ranked device could not place the request.
    pub retries: usize,
    /// Extra shard accountings caused by device-specific load failures:
    /// each time a request failed to load on one shard and was then
    /// accounted again on another (retried, queued, or dropped there),
    /// this counter moves by one. The failed shard keeps its attributed
    /// failure record, so `Σ shard_submitted = submitted − unplaceable
    /// + load_failovers` holds exactly.
    pub load_failovers: usize,
    /// Defragmentation cycles forced by the *fleet-level* trigger (on
    /// top of the per-device threshold cycles counted in the shard
    /// reports).
    pub fleet_defrags: usize,
    /// Completed rebalancing migrations: a resident function extracted
    /// from one shard and readmitted on another, its residency clock
    /// intact. Always equals both [`FleetReport::migrations_in`] and
    /// [`FleetReport::migrations_out`] — the extended sum identity.
    pub migrations: usize,
    /// Migrations whose readmission failed on the target; the function
    /// was restored on its source from the extraction checkpoint (also
    /// visible as the shard reports'
    /// [`migrations_restored`](rtm_service::ServiceReport::migrations_restored)
    /// sum).
    pub migrations_failed: usize,
    /// Migration directives refused before touching anything: no room
    /// on the target, an idle window too short for the copy (a
    /// migration may never make a queued request late), or a directive
    /// naming a function that is not resident where claimed.
    pub migrations_refused: usize,
    /// High-tier arrivals seated by preemptive eviction: the whole
    /// routing chain said "no room", a strictly-lower-tier resident
    /// was evicted (see [`FleetReport::evictions_out`]) and the
    /// arrival took the freed region. Zero unless
    /// [`FleetConfig::preemption`](crate::FleetConfig::preemption) is
    /// on.
    pub preemptions: usize,
    /// Evicted victims that were migrated straight onto a sibling
    /// shard with room (through the same checkpointed
    /// extract/readmit machinery as rebalancing migrations).
    pub evictions_migrated: usize,
    /// Evicted victims no sibling could absorb: their bundles went to
    /// the fleet's park queue. Identity: `evictions_parked ==`
    /// [`FleetReport::parked_readmitted`] `+`
    /// [`FleetReport::parked_expired`] `+`
    /// [`FleetReport::parked_at_end`] — every parked bundle is
    /// eventually readmitted, expired, or still parked.
    pub evictions_parked: usize,
    /// Parked bundles readmitted in a later idle window, residency
    /// clock intact.
    pub parked_readmitted: usize,
    /// Parked bundles dropped because their residency expired before
    /// any shard had room: the work they had left was shorter than
    /// the wait.
    pub parked_expired: usize,
    /// Bundles still parked when the run ended (the park queue
    /// persists into the next run, like shard state).
    pub parked_at_end: usize,
    /// The rebalancing planner's name, when one was installed.
    pub rebalancer: Option<String>,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Fleet-wide fragmentation sampled after every processed instant.
    pub timeline: Vec<FleetSample>,
    /// Fleet-level deterministic metrics for the run: the epoch count
    /// and the offer-chain-length histogram (devices offered per routed
    /// arrival). Shard-level metrics live on the shard reports; merge
    /// everything with [`FleetReport::metrics_rollup`].
    pub metrics: MetricsRegistry,
}

impl FleetReport {
    fn sum(&self, f: impl Fn(&ServiceReport) -> usize) -> usize {
        self.shards.iter().map(|s| f(&s.report)).sum()
    }

    /// Requests the shards accepted responsibility for (sums the shard
    /// reports; equals [`FleetReport::submitted`] −
    /// [`FleetReport::unplaceable`] + [`FleetReport::load_failovers`]).
    pub fn shard_submitted(&self) -> usize {
        self.sum(|r| r.submitted)
    }

    /// Functions admitted fleet-wide.
    pub fn admitted(&self) -> usize {
        self.sum(|r| r.admitted)
    }

    /// Admissions that fitted without moving anything.
    pub fn immediate(&self) -> usize {
        self.sum(|r| r.immediate)
    }

    /// Requests dropped because their deadline passed.
    pub fn rejected_deadline(&self) -> usize {
        self.sum(|r| r.rejected_deadline)
    }

    /// Per-request load/synthesis/duplicate failures.
    pub fn failures(&self) -> usize {
        self.sum(|r| r.failures)
    }

    /// Load failures attributed to placement-side congestion (no free
    /// cell slots) fleet-wide — the routing-failure autopsy roll-up.
    pub fn failures_no_slots(&self) -> usize {
        self.sum(|r| r.failures_no_slots)
    }

    /// Load failures attributed to routing-side congestion (unroutable
    /// nets) fleet-wide.
    pub fn failures_unroutable(&self) -> usize {
        self.sum(|r| r.failures_unroutable)
    }

    /// The plan-reuse pipeline counters rolled up over every shard:
    /// planning passes, previews, reused/invalidated plans and the
    /// summary-cache hit rate for the whole fleet run.
    pub fn plan_stats(&self) -> PlanStats {
        let mut total = PlanStats::default();
        for s in &self.shards {
            total.merge(s.report.plan_stats);
        }
        total
    }

    /// Requests cancelled by the trace while queued.
    pub fn cancelled(&self) -> usize {
        self.sum(|r| r.cancelled)
    }

    /// Functions migrated onto some shard, summed over the shard
    /// reports. Identity: equals [`FleetReport::migrations_out`] and
    /// [`FleetReport::migrations`] exactly — every completed migration
    /// leaves one shard and arrives on exactly one other.
    pub fn migrations_in(&self) -> usize {
        self.sum(|r| r.migrations_in)
    }

    /// Functions migrated off some shard, summed over the shard
    /// reports (failed migrations are restored and move this counter
    /// back, so the in/out identity is exact, not eventual).
    pub fn migrations_out(&self) -> usize {
        self.sum(|r| r.migrations_out)
    }

    /// Failed readmissions rolled back from the extraction checkpoint,
    /// summed over the shard reports. Identity: equals
    /// [`FleetReport::migrations_failed`].
    pub fn migrations_restored(&self) -> usize {
        self.sum(|r| r.migrations_restored)
    }

    /// Residents evicted off some shard by preemption, summed over the
    /// shard reports. Identity: equals [`FleetReport::evictions_migrated`]
    /// plus [`FleetReport::evictions_parked`] — kept separate from the
    /// migration counters so `migrations_in == migrations_out` survives
    /// bundles that are parked instead of readmitted.
    pub fn evictions_out(&self) -> usize {
        self.sum(|r| r.evictions_out)
    }

    /// Evicted bundles readmitted onto some shard (as a preemption
    /// migration target, or out of the park queue), summed over the
    /// shard reports. Identity: equals
    /// [`FleetReport::evictions_migrated`] +
    /// [`FleetReport::parked_readmitted`].
    pub fn evictions_in(&self) -> usize {
        self.sum(|r| r.evictions_in)
    }

    /// The per-tier admission counters rolled up over every shard:
    /// submitted, admitted and total queue wait per [`QosTier`] lane.
    pub fn tiers(&self) -> TierCounts {
        let mut total = TierCounts::default();
        for s in &self.shards {
            total.absorb(&s.report.tiers);
        }
        total
    }

    /// Fraction of `tier`-lane submissions admitted fleet-wide
    /// (vacuously 1.0 when the lane saw no traffic) — the headline the
    /// preemption baselines gate on.
    pub fn tier_admission_rate(&self, tier: QosTier) -> f64 {
        self.tiers().admission_rate(tier)
    }

    /// Functions unloaded fleet-wide.
    pub fn departures(&self) -> usize {
        self.sum(|r| r.departures)
    }

    /// Requests still queued when the run ended.
    pub fn queued_at_end(&self) -> usize {
        self.sum(|r| r.queued_at_end)
    }

    /// Functions still resident when the run ended.
    pub fn resident_at_end(&self) -> usize {
        self.sum(|r| r.resident_at_end)
    }

    /// Defragmentation cycles executed fleet-wide (per-device threshold
    /// cycles plus fleet-triggered ones — the latter also appear in the
    /// owning shard's report, so this is simply the shard sum).
    pub fn defrag_cycles(&self) -> usize {
        self.sum(|r| r.defrag_cycles)
    }

    /// Whole-function moves executed fleet-wide.
    pub fn function_moves(&self) -> usize {
        self.sum(|r| r.function_moves)
    }

    /// CLBs of running logic relocated fleet-wide.
    pub fn cells_moved(&self) -> u64 {
        self.shards.iter().map(|s| s.report.cells_moved).sum()
    }

    /// Configuration frames written by relocations fleet-wide.
    pub fn frames_written(&self) -> u64 {
        self.shards.iter().map(|s| s.report.frames_written).sum()
    }

    /// Reconfiguration wall time of all relocation traffic (ms).
    pub fn reconfig_ms(&self) -> f64 {
        self.shards.iter().map(|s| s.report.reconfig_ms).sum()
    }

    /// Fraction of submitted requests admitted fleet-wide (unplaceable
    /// requests count against the fleet — they were submitted to it).
    pub fn admission_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.admitted() as f64 / self.submitted as f64
        }
    }

    /// Highest mean fragmentation index on the timeline.
    pub fn peak_mean_frag(&self) -> f64 {
        self.timeline.iter().map(|s| s.mean).fold(0.0, f64::max)
    }

    /// Highest single-device fragmentation index on the timeline.
    pub fn peak_worst_frag(&self) -> f64 {
        self.timeline.iter().map(|s| s.worst).fold(0.0, f64::max)
    }

    /// The fleet-level metrics merged with every shard report's
    /// registry: counters add, histograms add bucket-wise — one view of
    /// queue waits, frames per load and offer chains for the whole run.
    pub fn metrics_rollup(&self) -> MetricsRegistry {
        let mut total = self.metrics.clone();
        for s in &self.shards {
            total.merge(&s.report.metrics);
        }
        total
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet report — trace '{}' via '{}' over {} devices",
            self.trace_name,
            self.policy,
            self.shards.len()
        )?;
        writeln!(
            f,
            "  admissions : {}/{} (rate {:.3}), {} via retry, {} unplaceable, \
             {} load failovers",
            self.admitted(),
            self.submitted,
            self.admission_rate(),
            self.retries,
            self.unplaceable,
            self.load_failovers,
        )?;
        writeln!(
            f,
            "  rejections : {} deadline, {} failed, {} cancelled, {} queued at end",
            self.rejected_deadline(),
            self.failures(),
            self.cancelled(),
            self.queued_at_end(),
        )?;
        let tiers = self.tiers();
        if tiers.is_tiered() || self.preemptions > 0 {
            writeln!(
                f,
                "  tiers      : {tiers} — {} preemptions ({} evicted→migrated, {} parked; \
                 {} readmitted, {} expired, {} still parked)",
                self.preemptions,
                self.evictions_migrated,
                self.evictions_parked,
                self.parked_readmitted,
                self.parked_expired,
                self.parked_at_end,
            )?;
        }
        if self.migrations + self.migrations_failed + self.migrations_refused > 0
            || self.rebalancer.is_some()
        {
            writeln!(
                f,
                "  rebalance  : {} migrations via '{}' ({} failed+restored, {} refused)",
                self.migrations,
                self.rebalancer.as_deref().unwrap_or("none"),
                self.migrations_failed,
                self.migrations_refused,
            )?;
        }
        writeln!(
            f,
            "  relocation : {} defrag cycles ({} fleet-triggered), {} moves, {} CLBs, \
             {} frames, {:.1} ms",
            self.defrag_cycles(),
            self.fleet_defrags,
            self.function_moves(),
            self.cells_moved(),
            self.frames_written(),
            self.reconfig_ms(),
        )?;
        writeln!(
            f,
            "  frag       : peak mean {:.3}, peak worst {:.3}",
            self.peak_mean_frag(),
            self.peak_worst_frag()
        )?;
        writeln!(f, "  planning   : {}", self.plan_stats())?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "  [{}] {:<8}: routed {:>3}, admitted {:>3}/{:<3}, {} defrags, \
                 final frag {:.3}",
                i,
                s.part.to_string(),
                s.routed,
                s.report.admitted,
                s.report.submitted,
                s.report.defrag_cycles,
                s.report
                    .final_frag
                    .map(|m| m.fragmentation())
                    .unwrap_or(0.0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(part: Part, submitted: usize, admitted: usize) -> ShardOutcome {
        let mut report = ServiceReport::new("s");
        report.submitted = submitted;
        report.admitted = admitted;
        ShardOutcome {
            part,
            routed: submitted,
            report,
        }
    }

    #[test]
    fn totals_roll_up() {
        let r = FleetReport {
            trace_name: "t".into(),
            policy: "round-robin".into(),
            submitted: 11,
            unplaceable: 1,
            retries: 2,
            load_failovers: 0,
            fleet_defrags: 0,
            migrations: 0,
            migrations_failed: 0,
            migrations_refused: 0,
            preemptions: 0,
            evictions_migrated: 0,
            evictions_parked: 0,
            parked_readmitted: 0,
            parked_expired: 0,
            parked_at_end: 0,
            rebalancer: None,
            shards: vec![shard(Part::Xcv50, 6, 5), shard(Part::Xcv100, 4, 4)],
            timeline: vec![
                FleetSample {
                    at: 0,
                    mean: 0.2,
                    worst: 0.4,
                },
                FleetSample {
                    at: 10,
                    mean: 0.3,
                    worst: 0.6,
                },
            ],
            metrics: MetricsRegistry::new(),
        };
        assert_eq!(r.shard_submitted(), 10);
        assert_eq!(r.shard_submitted() + r.unplaceable, r.submitted);
        assert_eq!(r.admitted(), 9);
        assert!((r.admission_rate() - 9.0 / 11.0).abs() < 1e-9);
        assert_eq!(r.peak_mean_frag(), 0.3);
        assert_eq!(r.peak_worst_frag(), 0.6);
        let shown = r.to_string();
        assert!(shown.contains("9/11"), "{shown}");
        assert!(shown.contains("round-robin"), "{shown}");
        assert!(shown.contains("[1] XCV100"), "{shown}");
    }
}
