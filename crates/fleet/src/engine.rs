//! The fleet stepping engine: shard-parallel execution between
//! cross-shard synchronization points.
//!
//! [`FleetService::run`](crate::FleetService::run) advances the fleet
//! epoch by epoch. Each epoch ends at the next **cross-shard event
//! horizon** ([`horizon`]): the earliest instant at which something
//! fleet-level has to happen — a trace event to route, or a shard's
//! own next local event (a residency expiry) after which the fleet
//! samples fragmentation and evaluates its defrag/rebalance triggers.
//! Everything *between* horizons is shard-local by construction: a
//! shard departing its own residencies, serving its own queue and
//! running its own threshold defrag never reads a sibling.
//!
//! [`for_each_shard`] executes those shard-local segments. The
//! [`EngineKind::Sequential`] engine walks the shards in index order on
//! the calling thread — the reference semantics every other engine must
//! reproduce byte-for-byte. [`EngineKind::Parallel`] runs the same
//! segments on scoped worker threads ([`std::thread::scope`]); whole
//! shards move to workers (`RuntimeService` is `Send`, pinned at
//! compile time), each shard is touched by exactly one worker per
//! segment, and all cross-shard edges (routing, migration, the fleet
//! defrag trigger, report aggregation) stay on the calling thread in
//! fixed shard-index order. Because a shard's segment is a pure
//! function of that shard's own state, the thread schedule cannot be
//! observed: a parallel run's [`FleetReport`](crate::FleetReport) is
//! byte-identical to the sequential engine's, which the
//! schedule-invariance suite (`tests/parallel_determinism.rs`) pins
//! over random fleets × scenarios × thread counts.
//!
//! With the `parallel` cargo feature (default) the worker pool is
//! work-stealing: workers claim shard indices from a shared atomic
//! counter, so a worker stuck on one heavy shard does not idle its
//! siblings. Without the feature the shards are dealt round-robin into
//! static per-worker hands — same results, simpler machinery, no
//! `unsafe`. Both executors are dependency-free: the rayon-shaped shim
//! ban stays intact.

use rtm_core::CoreError;
use rtm_obs::PhaseProfiler;
use rtm_sched::task::Micros;
use rtm_service::{RuntimeService, ServiceReport};

/// How the fleet advances its shards between cross-shard
/// synchronization points. Engines differ only in wall-clock: every
/// engine produces byte-identical [`FleetReport`](crate::FleetReport)s
/// (and therefore byte-identical `BENCH_fleet.json` counters) for the
/// same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Shards advance one after another, in shard-index order, on the
    /// calling thread — the reference engine and the default.
    #[default]
    Sequential,
    /// Shard-local segments run on scoped worker threads; cross-shard
    /// edges stay sequential in shard-index order.
    Parallel {
        /// Worker threads to use; `0` means one per available core
        /// (clamped to the shard count either way).
        threads: usize,
    },
}

impl EngineKind {
    /// A short display name: `sequential`, `parallel-4`,
    /// `parallel-auto`.
    pub fn name(&self) -> String {
        match self {
            EngineKind::Sequential => "sequential".to_string(),
            EngineKind::Parallel { threads: 0 } => "parallel-auto".to_string(),
            EngineKind::Parallel { threads } => format!("parallel-{threads}"),
        }
    }

    /// Worker threads this engine would actually spawn for
    /// `shard_count` shards: never more workers than shards, never
    /// zero. Thread count affects scheduling only, never results.
    pub fn worker_count(&self, shard_count: usize) -> usize {
        match *self {
            EngineKind::Sequential => 1,
            EngineKind::Parallel { threads } => {
                let t = if threads == 0 {
                    std::thread::available_parallelism()
                        .map(usize::from)
                        .unwrap_or(1)
                } else {
                    threads
                };
                t.clamp(1, shard_count.max(1))
            }
        }
    }
}

/// The next cross-shard event horizon: the earliest of the next trace
/// event and every shard's next local event
/// ([`RuntimeService::next_local_event`]). `None` means the fleet is
/// drained — no pending trace events and no shard has anything
/// self-scheduled — and the run is over. Up to (and including) the
/// returned instant, every shard's work is a pure function of its own
/// state, which is what makes the segment safe to run on any thread.
///
/// This is the straight O(shards) scan — the reference semantics. The
/// epoch loop itself asks a [`HorizonClock`], which answers from a
/// lazily-rebuilt min-heap and only re-reads shards whose
/// [`RuntimeService::schedule_version`] moved; the clock
/// `debug_assert`s its answer against this scan on every call.
pub fn horizon(next_trace: Option<Micros>, shards: &[RuntimeService]) -> Option<Micros> {
    let local = shards
        .iter()
        .filter_map(RuntimeService::next_local_event)
        .min();
    match (next_trace, local) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(Micros::MAX).min(b.unwrap_or(Micros::MAX))),
    }
}

/// An incremental horizon: a min-heap of per-shard next events, rebuilt
/// lazily from each shard's [`RuntimeService::schedule_version`]. The
/// straight [`horizon`] scan reads every shard's expiry map (a min over
/// its residents) every epoch — O(fleet residents) per epoch even when
/// nothing changed. The clock pays that read only for shards whose
/// schedule actually moved, pushes their fresh next event, and pops
/// stale heap tops on demand: each schedule change costs O(log shards)
/// amortised, and a quiet epoch costs one version compare per shard.
///
/// Correctness: every current per-shard next event has an entry in the
/// heap (pushed at the version that produced it), so the smallest
/// *valid* top — one whose value still matches the shard's freshly
/// version-checked `seen` value — is the global minimum. Entries
/// invalidated by later versions simply die on pop.
#[derive(Debug, Default)]
pub struct HorizonClock {
    /// Min-heap of `(next_event, shard)` candidates; stale entries are
    /// popped lazily.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Micros, usize)>>,
    /// Per shard: the schedule version last seen, and the next-event
    /// value it produced. The version starts at a sentinel no real
    /// shard reports so the first call refreshes everything.
    seen: Vec<(u64, Option<Micros>)>,
}

impl HorizonClock {
    /// A clock for a fleet of `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        HorizonClock {
            heap: std::collections::BinaryHeap::new(),
            seen: vec![(u64::MAX, None); shard_count],
        }
    }

    /// The next cross-shard event horizon — semantically identical to
    /// [`horizon`]`(next_trace, shards)`, incrementally computed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not the fleet this clock was sized for.
    pub fn next(
        &mut self,
        next_trace: Option<Micros>,
        shards: &[RuntimeService],
    ) -> Option<Micros> {
        assert_eq!(self.seen.len(), shards.len(), "clock sized for the fleet");
        for (i, s) in shards.iter().enumerate() {
            let v = s.schedule_version();
            if self.seen[i].0 != v {
                let e = s.next_local_event();
                self.seen[i] = (v, e);
                if let Some(t) = e {
                    self.heap.push(std::cmp::Reverse((t, i)));
                }
            }
        }
        let local = loop {
            match self.heap.peek() {
                None => break None,
                Some(&std::cmp::Reverse((t, i))) => {
                    if self.seen[i].1 == Some(t) {
                        break Some(t);
                    }
                    self.heap.pop();
                }
            }
        };
        let result = match (next_trace, local) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(Micros::MAX).min(b.unwrap_or(Micros::MAX))),
        };
        debug_assert_eq!(
            result,
            horizon(next_trace, shards),
            "heap horizon must equal the scan"
        );
        result
    }
}

/// Applies `step` to every `(shard, report)` pair under `engine`.
///
/// `step` must be **shard-local**: it may mutate the shard and its
/// report it was handed but must not touch any other shard, which is
/// what licenses running it on any thread. All engines deliver the
/// exact same per-shard results; they differ only in which thread runs
/// which shard.
///
/// `profiler` records *wall-clock* per-worker segment time (atomics, so
/// workers write through a shared reference). It is observability only:
/// results are bit-for-bit identical with and without it, and nothing
/// it measures can reach a report.
///
/// # Errors
///
/// Propagates the first [`CoreError`] **by shard index** (not by
/// completion order), so even the error path is schedule-independent.
/// The sequential engine stops at the first failing shard; the parallel
/// engines complete the whole segment and then report the
/// lowest-indexed failure — indistinguishable to callers, who treat any
/// `CoreError` as fatal to the run.
///
/// # Panics
///
/// Panics if `shards` and `reports` differ in length.
pub fn for_each_shard<F>(
    engine: EngineKind,
    shards: &mut [RuntimeService],
    reports: &mut [ServiceReport],
    profiler: Option<&PhaseProfiler>,
    step: &F,
) -> Result<(), CoreError>
where
    F: Fn(usize, &mut RuntimeService, &mut ServiceReport) -> Result<(), CoreError> + Sync,
{
    assert_eq!(
        shards.len(),
        reports.len(),
        "one report per shard, in shard order"
    );
    let workers = engine.worker_count(shards.len());
    if workers <= 1 {
        let _t = profiler.map(|p| p.worker_timer(0));
        for (i, (s, r)) in shards.iter_mut().zip(reports.iter_mut()).enumerate() {
            step(i, s, r)?;
        }
        return Ok(());
    }
    parallel_for_each(workers, shards, reports, profiler, step)
}

/// Scans per-shard outcomes in shard-index order and surfaces the
/// first error — the deterministic half of the parallel error path.
fn first_error(results: Vec<Option<Result<(), CoreError>>>) -> Result<(), CoreError> {
    for r in results.into_iter().flatten() {
        r?;
    }
    Ok(())
}

/// Work-stealing executor (the `parallel` feature, on by default):
/// workers claim shard indices from a shared atomic counter, so slow
/// shards never leave a worker idle while work remains.
#[cfg(feature = "parallel")]
fn parallel_for_each<F>(
    workers: usize,
    shards: &mut [RuntimeService],
    reports: &mut [ServiceReport],
    profiler: Option<&PhaseProfiler>,
    step: &F,
) -> Result<(), CoreError>
where
    F: Fn(usize, &mut RuntimeService, &mut ServiceReport) -> Result<(), CoreError> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = shards.len();
    let mut results: Vec<Option<Result<(), CoreError>>> = (0..n).map(|_| None).collect();
    let shards_ptr = SendPtr(shards.as_mut_ptr());
    let reports_ptr = SendPtr(reports.as_mut_ptr());
    let results_ptr = SendPtr(results.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let next = &next;
            scope.spawn(move || {
                let _t = profiler.map(|p| p.worker_timer(w));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // SAFETY: `fetch_add` hands index `i` to exactly one
                    // worker, the three buffers are exactly `n` long and
                    // outlive the scope, and the owning `&mut` slices are
                    // untouched until every worker has joined — so each
                    // reborrow below is the only live reference to its
                    // element. This is the scoped-thread confinement
                    // argument recorded in lint-allow.toml.
                    let (s, r, slot) = unsafe {
                        (
                            &mut *shards_ptr.element(i),
                            &mut *reports_ptr.element(i),
                            &mut *results_ptr.element(i),
                        )
                    };
                    *slot = Some(step(i, s, r));
                }
            });
        }
    });
    first_error(results)
}

/// Static-hands executor (no `parallel` feature): shards are dealt
/// round-robin into one hand per worker before any thread starts, so
/// the borrow checker sees the disjointness and no `unsafe` is needed.
/// Results are byte-identical to the work-stealing executor; only the
/// load balancing is cruder.
#[cfg(not(feature = "parallel"))]
fn parallel_for_each<F>(
    workers: usize,
    shards: &mut [RuntimeService],
    reports: &mut [ServiceReport],
    profiler: Option<&PhaseProfiler>,
    step: &F,
) -> Result<(), CoreError>
where
    F: Fn(usize, &mut RuntimeService, &mut ServiceReport) -> Result<(), CoreError> + Sync,
{
    type Hand<'a> = Vec<(
        usize,
        &'a mut RuntimeService,
        &'a mut ServiceReport,
        &'a mut Option<Result<(), CoreError>>,
    )>;

    let n = shards.len();
    let mut results: Vec<Option<Result<(), CoreError>>> = (0..n).map(|_| None).collect();
    let mut hands: Vec<Hand<'_>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, ((s, r), slot)) in shards
        .iter_mut()
        .zip(reports.iter_mut())
        .zip(results.iter_mut())
        .enumerate()
    {
        hands[i % workers].push((i, s, r, slot));
    }
    std::thread::scope(|scope| {
        for (w, hand) in hands.into_iter().enumerate() {
            scope.spawn(move || {
                let _t = profiler.map(|p| p.worker_timer(w));
                for (i, s, r, slot) in hand {
                    *slot = Some(step(i, s, r));
                }
            });
        }
    });
    first_error(results)
}

/// A `Send` wrapper for a raw element pointer, so scoped workers can
/// reborrow disjoint elements of the shard/report/result buffers.
#[cfg(feature = "parallel")]
struct SendPtr<T>(*mut T);

// Manual impls: the derives would bound on `T: Copy`, but the pointer
// itself is always copyable regardless of the pointee.
#[cfg(feature = "parallel")]
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

#[cfg(feature = "parallel")]
impl<T> Copy for SendPtr<T> {}

#[cfg(feature = "parallel")]
impl<T> SendPtr<T> {
    /// Pointer to element `i`. Taking `self` (not a field) is load
    /// bearing: the worker closures capture the whole `Send` wrapper
    /// instead of the raw-pointer field, which on its own is not
    /// `Send` (Rust 2021 captures by field path otherwise).
    fn element(self, i: usize) -> *mut T {
        self.0.wrapping_add(i)
    }
}

// SAFETY: sending the pointer is safe because the pointee type is
// `Send` and the executor above guarantees each element is reborrowed
// by at most one worker at a time (atomic index claiming).
#[cfg(feature = "parallel")]
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_service::{QosTier, ServiceConfig};

    fn fleet(n: usize) -> (Vec<RuntimeService>, Vec<ServiceReport>) {
        let shards = (0..n)
            .map(|_| RuntimeService::new(ServiceConfig::default()))
            .collect();
        let reports = (0..n)
            .map(|i| ServiceReport::new(format!("e#{i}")))
            .collect();
        (shards, reports)
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(EngineKind::Sequential.worker_count(64), 1);
        assert_eq!(EngineKind::Parallel { threads: 4 }.worker_count(64), 4);
        assert_eq!(
            EngineKind::Parallel { threads: 16 }.worker_count(3),
            3,
            "never more workers than shards"
        );
        assert!(EngineKind::Parallel { threads: 0 }.worker_count(64) >= 1);
        assert_eq!(EngineKind::Parallel { threads: 8 }.worker_count(0), 1);
    }

    #[test]
    fn names() {
        assert_eq!(EngineKind::Sequential.name(), "sequential");
        assert_eq!(EngineKind::Parallel { threads: 4 }.name(), "parallel-4");
        assert_eq!(EngineKind::Parallel { threads: 0 }.name(), "parallel-auto");
        assert_eq!(EngineKind::default(), EngineKind::Sequential);
    }

    #[test]
    fn horizon_is_min_of_trace_and_local_events() {
        let (mut shards, mut reports) = fleet(2);
        assert_eq!(horizon(None, &shards), None, "drained fleet has no horizon");
        assert_eq!(horizon(Some(50), &shards), Some(50));

        // Give shard 1 a residency expiring at 30_000 + 10_000.
        use rtm_service::trace::Arrival;
        use rtm_service::AdmissionBid;
        let a = Arrival {
            id: 7,
            rows: 4,
            cols: 4,
            duration: Some(10_000),
            deadline: None,
            tier: QosTier::Standard,
        };
        let out = shards[1]
            .admit(30_000, AdmissionBid::direct(a), &mut reports[1])
            .unwrap();
        assert_eq!(out, rtm_service::OfferOutcome::Admitted);
        assert_eq!(horizon(None, &shards), Some(40_000));
        assert_eq!(horizon(Some(35_000), &shards), Some(35_000));
        assert_eq!(horizon(Some(45_000), &shards), Some(40_000));
    }

    #[test]
    fn horizon_clock_tracks_the_scan_through_schedule_changes() {
        use rtm_service::trace::Arrival;
        use rtm_service::AdmissionBid;
        let (mut shards, mut reports) = fleet(3);
        let mut clock = HorizonClock::new(3);
        assert_eq!(clock.next(None, &shards), None);
        assert_eq!(clock.next(Some(50), &shards), Some(50));

        // Admissions with durations schedule expiries on two shards.
        for (shard, id, dur) in [(0usize, 1u64, 40_000u64), (2, 2, 15_000)] {
            let a = Arrival {
                id,
                rows: 4,
                cols: 4,
                duration: Some(dur),
                deadline: None,
                tier: QosTier::Standard,
            };
            let out = shards[shard]
                .admit(10_000, AdmissionBid::direct(a), &mut reports[shard])
                .unwrap();
            assert_eq!(out, rtm_service::OfferOutcome::Admitted);
        }
        assert_eq!(clock.next(None, &shards), Some(25_000), "earliest expiry");
        assert_eq!(clock.next(Some(20_000), &shards), Some(20_000));

        // Departing the earlier residency must invalidate its heap
        // entry: the clock falls back to the later one.
        shards[2].depart(2, &mut reports[2]).unwrap();
        assert_eq!(clock.next(None, &shards), Some(50_000));
        shards[0].depart(1, &mut reports[0]).unwrap();
        assert_eq!(clock.next(None, &shards), None, "drained again");
    }

    #[test]
    fn every_engine_touches_every_shard_exactly_once() {
        for engine in [
            EngineKind::Sequential,
            EngineKind::Parallel { threads: 1 },
            EngineKind::Parallel { threads: 3 },
            EngineKind::Parallel { threads: 8 },
        ] {
            let (mut shards, mut reports) = fleet(5);
            for_each_shard(engine, &mut shards, &mut reports, None, &|i, _s, rep| {
                // Reuse a report counter as the per-shard touch mark;
                // the index must match the slot the engine handed us.
                rep.submitted += i + 1;
                Ok(())
            })
            .unwrap();
            for (i, rep) in reports.iter().enumerate() {
                assert_eq!(rep.submitted, i + 1, "{engine:?} shard {i}");
            }
        }
    }

    #[test]
    fn errors_surface_by_shard_index_not_schedule() {
        use rtm_place::PlaceError;
        for engine in [EngineKind::Sequential, EngineKind::Parallel { threads: 4 }] {
            let (mut shards, mut reports) = fleet(6);
            let err = for_each_shard(engine, &mut shards, &mut reports, None, &|i, _s, _r| {
                if i % 2 == 1 {
                    Err(CoreError::Place(PlaceError::UnknownTask { id: i as u64 }))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            // Shards 1, 3, 5 all fail; the lowest index must win under
            // every engine and thread schedule.
            assert!(
                matches!(err, CoreError::Place(PlaceError::UnknownTask { id: 1 })),
                "{engine:?}: {err:?}"
            );
        }
    }
}
