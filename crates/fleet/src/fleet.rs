//! The fleet service: one shared clock, N devices, one router.

use crate::config::FleetConfig;
use crate::engine;
use crate::rebalance::{MigrationDirective, MigrationOutcome, RebalancePolicy};
use crate::report::{FleetReport, FleetSample, ShardOutcome};
use crate::routing::RoutingPolicy;
use rtm_core::{CoreError, MigrationPlan};
use rtm_obs::{
    EventBuffer, EventKind, EventSink, MetricsRegistry, Phase, PhaseProfiler, RejectReason,
    RtmEvent, FLEET_SHARD,
};
use rtm_sched::task::Micros;
use rtm_service::trace::{Arrival, Trace, TraceEvent};
use rtm_service::{
    AdmissionBid, MigratingFunction, ReserveOutcome, RuntimeService, ServiceReport, TicketOutcome,
};
use std::collections::BTreeMap;

/// Per-run bookkeeping (reports are per run; shard state persists).
struct RunState {
    reports: Vec<ServiceReport>,
    routed: Vec<usize>,
    submitted: usize,
    unplaceable: usize,
    retries: usize,
    load_failovers: usize,
    fleet_defrags: usize,
    migrations: usize,
    migrations_failed: usize,
    migrations_refused: usize,
    preemptions: usize,
    evictions_migrated: usize,
    evictions_parked: usize,
    parked_readmitted: usize,
    parked_expired: usize,
    timeline: Vec<FleetSample>,
    metrics: MetricsRegistry,
    /// Reservations seated on this epoch's routing edge, in edge order,
    /// awaiting execution (the engine's execute phase) and resolution
    /// ([`FleetService::resolve_pending`]).
    pending: Vec<PendingRoute>,
}

/// One routed arrival whose admission was *decided* (a ticket is seated
/// on `shard`) but not yet resolved — everything the failover path
/// needs to continue the capped offer chain if the deferred load fails.
struct PendingRoute {
    at: Micros,
    arrival: Arrival,
    /// The shard holding the reservation.
    shard: usize,
    /// Position of `shard` in the ranking (0 = first choice).
    attempt: usize,
    /// Devices offered so far (the `offer_chain_len` sample).
    offers: u64,
    /// Shards that consumed an accounting via a decide-time failure
    /// before this reservation was seated.
    failed_accountings: usize,
    /// Best-ranked shard that said "no room" before the reservation.
    queue_on: Option<usize>,
    /// The not-yet-offered tail of the capped ranking.
    remaining: Vec<crate::routing::RouteCandidate>,
}

/// One evicted bundle waiting out congestion in the fleet's park
/// queue, stamped with the instant it was parked (the deadline-safe
/// re-entry clock: readmission happens in a later epoch's trigger
/// edge, inside some shard's idle window, and bundles whose residency
/// expired while parked are dropped instead of readmitted).
#[derive(Debug)]
struct ParkedBundle {
    bundle: MigratingFunction,
    parked_at: Micros,
}

/// The multi-device runtime service: owns N per-device
/// [`RuntimeService`] shards (heterogeneous parts allowed) and replays
/// a [`Trace`] across all of them under one shared clock. Arrivals are
/// routed by the [`RoutingPolicy`]; if the chosen device cannot place a
/// request right now the fleet retries the next-ranked device before
/// queueing it on the best one. Departures and residency expirations
/// are delivered to the shard that owns the function. On top of each
/// shard's own defragmentation threshold, a fleet-level trigger
/// ([`FleetConfig::fleet_frag_threshold`]) forces a cycle on the device
/// with the highest predicted gain.
///
/// Like the single-device service, fleet state persists across
/// [`FleetService::run`] calls: a second trace continues from the
/// device states the first one left behind.
///
/// # Examples
///
/// ```
/// use rtm_fleet::{FleetConfig, FleetService, routing::RoundRobin};
/// use rtm_service::{QosTier, ServiceConfig};
/// use rtm_service::trace::{Arrival, Trace, TraceEvent};
///
/// let config = FleetConfig::homogeneous(2, ServiceConfig::default());
/// let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()));
///
/// let mut trace = Trace::new("two");
/// for id in 0..2 {
///     trace.push(id * 1_000, TraceEvent::Arrival(Arrival {
///         id, rows: 6, cols: 6, duration: None, deadline: None,
///         tier: QosTier::Standard,
///     }));
/// }
/// let report = fleet.run(&trace).unwrap();
/// assert_eq!(report.admitted(), 2);
/// // Round-robin spread the two functions over the two devices.
/// assert_eq!(fleet.shards()[0].resident_count(), 1);
/// assert_eq!(fleet.shards()[1].resident_count(), 1);
/// ```
#[derive(Debug)]
pub struct FleetService {
    config: FleetConfig,
    policy: Box<dyn RoutingPolicy>,
    /// The rebalancing planner, when migration is enabled (see
    /// [`FleetService::with_rebalancer`]).
    rebalancer: Option<Box<dyn RebalancePolicy>>,
    shards: Vec<RuntimeService>,
    /// Trace id → shard index that hosts (or last hosted) the id.
    owner: BTreeMap<u64, usize>,
    /// Evicted bundles no sibling could absorb, awaiting readmission
    /// (see [`ParkedBundle`]). Persists across runs like shard state.
    park: Vec<ParkedBundle>,
    now: Micros,
    /// The fleet-level event buffer (tag [`FLEET_SHARD`]), installed by
    /// [`FleetService::enable_events`]: epoch boundaries and
    /// unplaceable rejections, which no single shard owns.
    fleet_events: Option<EventBuffer>,
    /// The merged deterministic stream: per epoch, the fleet buffer is
    /// drained first, then every shard's buffer in shard-index order —
    /// always on the calling thread, after workers have joined, so the
    /// merge order is identical under every engine.
    event_log: Vec<RtmEvent>,
    /// Wall-clock phase profiler, installed by
    /// [`FleetService::enable_profiler`]. Deliberately *not* part of
    /// any report: reports are engine-compared byte-exact, wall time is
    /// printed beside them.
    profiler: Option<PhaseProfiler>,
}

// Compile-time `Send` pin: the whole fleet must be movable across
// threads, which is what forces `RoutingPolicy` and `RebalancePolicy`
// trait objects to carry the `Send` supertrait — a policy with
// non-`Send` internals would fail here, today, not mid-refactor.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FleetService>();
};

impl FleetService {
    /// A fleet of blank devices described by `config`, routed by
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is empty.
    pub fn new(config: FleetConfig, policy: Box<dyn RoutingPolicy>) -> Self {
        assert!(
            !config.shards.is_empty(),
            "a fleet needs at least one device"
        );
        let shards = config
            .shards
            .iter()
            .map(|c| RuntimeService::new(*c))
            .collect();
        FleetService {
            config,
            policy,
            rebalancer: None,
            shards,
            owner: BTreeMap::new(),
            park: Vec::new(),
            now: 0,
            fleet_events: None,
            event_log: Vec::new(),
            profiler: None,
        }
    }

    /// Enables deterministic event tracing: installs an [`EventBuffer`]
    /// on every shard (tagged with its index) plus the fleet-level
    /// buffer (tagged [`FLEET_SHARD`]). Drain the merged stream with
    /// [`FleetService::take_events`] after a run.
    pub fn enable_events(&mut self) {
        self.fleet_events = Some(EventBuffer::new(FLEET_SHARD));
        for (i, s) in self.shards.iter_mut().enumerate() {
            s.enable_events(i as u32);
        }
    }

    /// Drains the merged event stream recorded so far (empty when
    /// tracing is disabled). The stream is fully deterministic and
    /// byte-identical across engines and thread counts.
    pub fn take_events(&mut self) -> Vec<RtmEvent> {
        self.drain_events();
        std::mem::take(&mut self.event_log)
    }

    /// Installs the wall-clock [`PhaseProfiler`]; shares accumulate
    /// across subsequent runs until [`FleetService::enable_profiler`]
    /// is called again. Read it back via [`FleetService::profiler`].
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(PhaseProfiler::new());
    }

    /// The installed phase profiler, if any.
    pub fn profiler(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_ref()
    }

    /// Appends the fleet buffer, then every shard buffer in shard-index
    /// order, to the merged log — the single fixed merge point that
    /// makes the stream engine-invariant (always runs on the calling
    /// thread, after any workers have joined).
    fn drain_events(&mut self) {
        if let Some(fleet_buf) = &self.fleet_events {
            self.event_log.extend(fleet_buf.take());
            for s in &mut self.shards {
                self.event_log.extend(s.take_events());
            }
        }
    }

    /// Installs a rebalancing planner: when the *worst* per-device
    /// fragmentation index crosses
    /// [`FleetConfig::rebalance_threshold`] — or some shard's queue is
    /// geometry-starved — the fleet asks it for
    /// [`MigrationDirective`]s and executes them inside the shards'
    /// idle port windows (see [`FleetService::migrate`]).
    pub fn with_rebalancer(mut self, rebalancer: Box<dyn RebalancePolicy>) -> Self {
        self.rebalancer = Some(rebalancer);
        self
    }

    /// The per-device shards (read-only).
    pub fn shards(&self) -> &[RuntimeService] {
        &self.shards
    }

    /// Makes shard `s`'s next `n` ticket executions fail
    /// deterministically — the failover-net seam (see
    /// `RuntimeService::force_execute_failures`).
    #[doc(hidden)]
    pub fn force_execute_failures(&mut self, s: usize, n: u32) {
        self.shards[s].force_execute_failures(n);
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The routing policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current simulated time (µs).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Ids the router currently tracks (resident or queued functions;
    /// stale entries are pruned on departure and at the end of every
    /// run, so this stays bounded by live work, not traffic history).
    pub fn tracked_ids(&self) -> usize {
        self.owner.len()
    }

    /// Mean and worst per-device fragmentation index right now.
    pub fn frag_summary(&self) -> (f64, f64) {
        let mut sum = 0.0;
        let mut worst = 0.0f64;
        for s in &self.shards {
            let frag = s.manager().fragmentation().fragmentation();
            sum += frag;
            worst = worst.max(frag);
        }
        (sum / self.shards.len() as f64, worst)
    }

    /// Replays `trace` to completion across the fleet and returns the
    /// aggregated report. The loop is epoch-based: each iteration
    /// computes the next **cross-shard event horizon**
    /// ([`engine::horizon`] — the earliest trace event or shard-local
    /// residency expiry), advances every shard to that horizon as an
    /// independent shard-local segment
    /// ([`engine::for_each_shard`] — in parallel under
    /// [`EngineKind::Parallel`](crate::EngineKind::Parallel)), and then
    /// applies the cross-shard edges sequentially in fixed shard-index
    /// order: trace-event routing, the fragmentation sample, the fleet
    /// defrag trigger and the rebalancing migrations. Because shards
    /// only interact inside those sequential edges, the thread schedule
    /// can never be observed and every engine produces a byte-identical
    /// [`FleetReport`].
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for invariant-corrupting failures
    /// (a failed unload or defragmentation on some shard); per-request
    /// failures are absorbed into the owning shard's report.
    pub fn run(&mut self, trace: &Trace) -> Result<FleetReport, CoreError> {
        // The profiler is moved out for the run (and reinstalled right
        // after) so `run_inner` can borrow it immutably while mutating
        // the shards — same disjoint-borrow move the rebalancing
        // trigger uses for its planner.
        let profiler = self.profiler.take();
        let result = self.run_inner(trace, profiler.as_ref());
        self.profiler = profiler;
        result
    }

    fn run_inner(
        &mut self,
        trace: &Trace,
        profiler: Option<&PhaseProfiler>,
    ) -> Result<FleetReport, CoreError> {
        let n = self.shards.len();
        let mut st = RunState {
            reports: (0..n)
                .map(|i| ServiceReport::new(format!("{}#{i}", trace.name())))
                .collect(),
            routed: vec![0; n],
            submitted: 0,
            unplaceable: 0,
            retries: 0,
            load_failovers: 0,
            fleet_defrags: 0,
            migrations: 0,
            migrations_failed: 0,
            migrations_refused: 0,
            preemptions: 0,
            evictions_migrated: 0,
            evictions_parked: 0,
            parked_readmitted: 0,
            parked_expired: 0,
            timeline: Vec::new(),
            metrics: MetricsRegistry::new(),
            pending: Vec::new(),
        };

        let events = trace.events();
        let engine = self.config.engine;
        let mut idx = 0usize;
        let mut clock = engine::HorizonClock::new(n);
        loop {
            // The epoch boundary: the next instant at which anything
            // cross-shard can happen. Everything up to it is
            // shard-local by construction. The clock keeps a min-heap
            // of per-shard next expiries and only re-reads shards whose
            // schedule actually changed, replacing the O(N) per-epoch
            // scan (the scan survives as `engine::horizon`, the clock's
            // debug oracle).
            let next_trace = events.get(idx).map(|e| e.at);
            let horizon = {
                let _t = profiler.map(|p| p.start(Phase::Horizon));
                clock.next(next_trace, &self.shards)
            };
            let Some(now) = horizon else {
                break;
            };
            self.now = self.now.max(now);
            if let Some(fleet_buf) = &self.fleet_events {
                fleet_buf.emit(now, EventKind::EpochBoundary);
            }
            st.metrics.inc("epochs");

            // 1. Shard-local segment: every shard advances to the
            //    horizon independently (due residencies depart). Under
            //    the parallel engine these segments run on scoped
            //    worker threads; no shard reads a sibling until the
            //    sequential cross-shard edges below, so the thread
            //    schedule is unobservable.
            {
                let _t = profiler.map(|p| p.start(Phase::Segments));
                engine::for_each_shard(
                    engine,
                    &mut self.shards,
                    &mut st.reports,
                    profiler,
                    &|_, s, rep| s.advance_to(now, rep),
                )?;
            }

            // 2. Cross-shard edges, sequential in stream order: trace
            //    events at this instant.
            let routing = profiler.map(|p| p.start(Phase::Routing));
            while idx < events.len() && events[idx].at <= now {
                match events[idx].event {
                    TraceEvent::Arrival(a) => self.route(events[idx].at, a, &mut st)?,
                    TraceEvent::Departure { id } => {
                        // Deliver to the owning shard; ids the router
                        // never saw are ignored, matching the
                        // single-device service.
                        if let Some(&s) = self.owner.get(&id) {
                            self.shards[s].depart(id, &mut st.reports[s])?;
                            if !self.shards[s].holds(id) {
                                self.owner.remove(&id);
                            }
                        }
                    }
                }
                idx += 1;
            }
            drop(routing);

            // 2b. Execute phase (deferred mode): the routing edge above
            //     only *reserved*; each shard now drains its own ticket
            //     queue — implementing designs and writing frames — as
            //     an independent shard-local segment, in parallel under
            //     the parallel engine. In immediate mode every ticket
            //     was already executed inline on the edge, so the phase
            //     is skipped entirely.
            if self.config.deferred_execution && !st.pending.is_empty() {
                let _t = profiler.map(|p| p.start(Phase::Execute));
                engine::for_each_shard(
                    engine,
                    &mut self.shards,
                    &mut st.reports,
                    profiler,
                    &|_, s, rep| s.execute_reserved(rep),
                )?;
            }
            // 2c. Resolution edge (both modes): collect every seated
            //     ticket's fate in edge order and run failover chains
            //     for deferred load failures — sequential again, so the
            //     accounting order is engine-invariant.
            if !st.pending.is_empty() {
                let _t = profiler.map(|p| p.start(Phase::Routing));
                self.resolve_pending(&mut st)?;
            }

            // 3. Shard-local again: every shard serves its queue,
            //    samples fragmentation and runs its own
            //    threshold-triggered defrag — parallel under the
            //    parallel engine, same argument as step 1.
            {
                let _t = profiler.map(|p| p.start(Phase::Segments));
                engine::for_each_shard(
                    engine,
                    &mut self.shards,
                    &mut st.reports,
                    profiler,
                    &|_, s, rep| s.settle(rep),
                )?;
            }

            // The timeline must show the state the fleet trigger saw,
            // not only the post-cycle recovery.
            let sampling = profiler.map(|p| p.start(Phase::Sampling));
            let (mean, worst) = self.frag_summary();
            st.timeline.push(FleetSample {
                at: self.now,
                mean,
                worst,
            });
            drop(sampling);

            // Steps 4 and 5 are the migration/trigger edges of the
            // epoch: both trigger scans, the forced defrag cycle and
            // the migrate loop all accrue to one profiler phase.
            let triggers = profiler.map(|p| p.start(Phase::Triggers));

            // 4. Fleet-level trigger: when the mean index climbs past
            //    the fleet threshold, force a cycle on the device where
            //    it buys the most. The ranking reads epoch-cached
            //    summaries (free for devices that have not mutated) and
            //    the winner's *cached* compaction plan is handed
            //    straight to `defragment_with_plan` — ranking by
            //    predicted gain already planned the cycle, so the
            //    trigger is plan-free end to end.
            if mean > self.config.fleet_frag_threshold {
                let best = (0..n)
                    .map(|i| (i, self.shards[i].manager().predicted_defrag_gain()))
                    .filter(|(_, gain)| *gain > 0.0)
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((i, _)) = best {
                    let plan = self.shards[i].manager().cached_defrag_plan();
                    if self.shards[i].defrag_now(Some(plan), &mut st.reports[i])? {
                        st.fleet_defrags += 1;
                        let (mean, worst) = self.frag_summary();
                        st.timeline.push(FleetSample {
                            at: self.now,
                            mean,
                            worst,
                        });
                    }
                }
            }

            // 5. Rebalancing trigger: alongside the defrag trigger,
            //    when the *worst* per-device index climbs past the
            //    rebalance threshold — or some shard's queue is
            //    geometry-starved (a queued request no local compaction
            //    can ever seat) — ask the planner for migrations and
            //    execute them inside the shards' idle port windows.
            //    Worst, not mean: rebalancing exists to drain the one
            //    shard that aged badly, and on a big fleet the healthy
            //    majority would dilute a mean signal forever. Aged
            //    placements (the combs round-robin leaves behind) are
            //    repaired by *moving functions between devices*, which
            //    per-device compaction alone can never do.
            //    The trigger prework (worst index, starvation scan)
            //    only runs when a rebalancer is actually installed —
            //    rebalancer-free fleets keep their old hot-loop cost.
            //    The planner is moved out for the planning call (and
            //    reinstalled right after) so the borrow checker sees
            //    the shard reads and the later `migrate` calls as
            //    disjoint — no `expect` needed to thread the borrow.
            let directives = match self.rebalancer.take() {
                Some(mut rebalancer)
                    if self.frag_summary().1 > self.config.rebalance_threshold
                        || self.shards.iter().any(crate::rebalance::queue_starved) =>
                {
                    let directives = rebalancer.plan(&self.shards);
                    self.rebalancer = Some(rebalancer);
                    directives
                }
                idle => {
                    self.rebalancer = idle;
                    Vec::new()
                }
            };
            let mut moved = false;
            for d in directives
                .into_iter()
                .take(self.config.max_migrations_per_trigger)
            {
                match self.migrate(d, &mut st.reports)? {
                    MigrationOutcome::Completed => {
                        st.migrations += 1;
                        moved = true;
                    }
                    MigrationOutcome::FailedRestored => st.migrations_failed += 1,
                    MigrationOutcome::RefusedUnknown
                    | MigrationOutcome::RefusedNoRoom
                    | MigrationOutcome::RefusedWindow { .. } => st.migrations_refused += 1,
                }
            }

            // 6. Park-queue readmission: evicted bundles wait out
            //    congestion in the fleet's park queue; every epoch's
            //    trigger edge retries them oldest-first onto the first
            //    shard (index order) whose planned room fits inside its
            //    idle window — a readmission may never make a queued
            //    deadline-bound request late. Bundles whose residency
            //    expired while parked are dropped, not readmitted.
            if !self.park.is_empty() {
                moved |= self.readmit_parked(&mut st)?;
            }
            drop(triggers);
            if moved {
                // Migrations mutated layouts on both ends: serve
                // the queues now (a blocked big request may fit the
                // repaired shard) and show the post-repair state on
                // the timeline. Shard-local, so engine-driven too.
                {
                    let _t = profiler.map(|p| p.start(Phase::Segments));
                    engine::for_each_shard(
                        engine,
                        &mut self.shards,
                        &mut st.reports,
                        profiler,
                        &|_, s, rep| s.settle(rep),
                    )?;
                }
                let _t = profiler.map(|p| p.start(Phase::Sampling));
                let (mean, worst) = self.frag_summary();
                st.timeline.push(FleetSample {
                    at: self.now,
                    mean,
                    worst,
                });
            }

            // Merge this epoch's events — fleet buffer first, then
            // every shard in index order, always on this thread — so
            // the stream's order is fixed by construction, not by any
            // worker schedule.
            self.drain_events();
        }

        for (s, rep) in self.shards.iter_mut().zip(&mut st.reports) {
            s.finish(rep);
        }
        self.drain_events();
        // Functions that expired inside the run left the router's
        // tracking map behind; sweep it so a long-lived fleet does not
        // accumulate one stale entry per id ever routed.
        let shards_ref = &self.shards;
        self.owner.retain(|id, s| shards_ref[*s].holds(*id));
        let shards = self
            .shards
            .iter()
            .zip(st.reports)
            .zip(st.routed)
            .map(|((s, report), routed)| ShardOutcome {
                part: s.part(),
                routed,
                report,
            })
            .collect();
        Ok(FleetReport {
            trace_name: trace.name().to_string(),
            policy: self.policy.name().to_string(),
            submitted: st.submitted,
            unplaceable: st.unplaceable,
            retries: st.retries,
            load_failovers: st.load_failovers,
            fleet_defrags: st.fleet_defrags,
            migrations: st.migrations,
            migrations_failed: st.migrations_failed,
            migrations_refused: st.migrations_refused,
            preemptions: st.preemptions,
            evictions_migrated: st.evictions_migrated,
            evictions_parked: st.evictions_parked,
            parked_readmitted: st.parked_readmitted,
            parked_expired: st.parked_expired,
            parked_at_end: self.park.len(),
            rebalancer: self.rebalancer.as_ref().map(|r| r.name().to_string()),
            shards,
            timeline: st.timeline,
            metrics: st.metrics,
        })
    }

    /// Executes one [`MigrationDirective`] right now — the primitive
    /// the rebalancing trigger drives, public so external orchestrators
    /// (and tests) can migrate deliberately.
    ///
    /// The execution order is safety-first, and nothing is touched
    /// until every check passes:
    ///
    /// 1. the directive must name a function resident on `from` and a
    ///    distinct in-range target ([`MigrationOutcome::RefusedUnknown`]);
    /// 2. the target must be able to make room for the function's
    ///    shape — the epoch-stamped
    ///    [`MigrationPlan`] is computed here,
    ///    and a plan that goes stale is re-planned, never executed
    ///    ([`MigrationOutcome::RefusedNoRoom`]);
    /// 3. the reconfiguration-port time of the copy (function cells
    ///    plus the target's rearrangement moves, priced at each
    ///    shard's `us_per_clb`) must fit inside **both** shards' idle
    ///    windows, so no queued deadline-bound request is ever made
    ///    late ([`MigrationOutcome::RefusedWindow`]);
    /// 4. only then is the function extracted and readmitted. A failed
    ///    readmission restores it on the source from the extraction
    ///    checkpoint, frame for frame
    ///    ([`MigrationOutcome::FailedRestored`]).
    ///
    /// `reports` must hold one [`ServiceReport`] per shard (the per-run
    /// reports inside [`FleetService::run`]; standalone callers pass
    /// their own) — migration counters land on the involved shards.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for invariant-corrupting failures
    /// (a restore that itself fails); an ordinary failed readmission is
    /// absorbed as [`MigrationOutcome::FailedRestored`].
    ///
    /// # Panics
    ///
    /// Panics if `reports` does not hold one report per shard.
    pub fn migrate(
        &mut self,
        d: MigrationDirective,
        reports: &mut [ServiceReport],
    ) -> Result<MigrationOutcome, CoreError> {
        assert_eq!(
            reports.len(),
            self.shards.len(),
            "one report per shard, in shard order"
        );
        if d.from == d.to || d.from >= self.shards.len() || d.to >= self.shards.len() {
            return Ok(MigrationOutcome::RefusedUnknown);
        }
        let Some(fid) = self.shards[d.from].resident_function_id(d.trace_id) else {
            return Ok(MigrationOutcome::RefusedUnknown);
        };

        // Plan the migration (source geometry + target room, both
        // epoch-stamped). Single-threaded as we are, the plan cannot go
        // stale between here and execution; the validity check still
        // runs so the never-execute-stale contract is enforced by code,
        // not by convention.
        let src_mgr = self.shards[d.from].manager();
        let Some(plan) = src_mgr.plan_migration(fid, self.shards[d.to].manager()) else {
            return Ok(MigrationOutcome::RefusedNoRoom);
        };
        debug_assert!(src_mgr.migration_plan_valid(&plan));

        // Port-time cost on each side, against each side's idle window:
        // the source pays the extraction copy, the target pays the
        // readmission copy plus whatever rearrangement its room plan
        // executes first.
        let src_cost = plan.cells() as Micros * self.shards[d.from].config().us_per_clb;
        let dst_cost = (plan.cells() + plan.room().cells_moved()) as Micros
            * self.shards[d.to].config().us_per_clb;
        let (src_window, dst_window) = (
            self.shards[d.from].idle_window(),
            self.shards[d.to].idle_window(),
        );
        if src_cost > src_window || dst_cost > dst_window {
            let (needed, window) = if src_cost > src_window {
                (src_cost, src_window)
            } else {
                (dst_cost, dst_window)
            };
            return Ok(MigrationOutcome::RefusedWindow { needed, window });
        }

        let now = self.now;
        let bundle = self.shards[d.from].migrate_out(d.trace_id, &mut reports[d.from])?;
        match self.shards[d.to].migrate_in(
            now,
            &bundle,
            Some(plan.room().clone()),
            &mut reports[d.to],
        ) {
            Ok(()) => {
                self.owner.insert(d.trace_id, d.to);
                Ok(MigrationOutcome::Completed)
            }
            Err(_) => {
                // The target cleaned itself up; put the function back
                // on the source from the checkpoint. A restore failure
                // *is* invariant-corrupting and propagates.
                self.shards[d.from].restore_migrated(&bundle, &mut reports[d.from])?;
                self.owner.insert(d.trace_id, d.from);
                Ok(MigrationOutcome::FailedRestored)
            }
        }
    }

    /// Routes one arrival: rank, then walk the ranking with the
    /// two-phase admission API — each candidate gets a
    /// [`RuntimeService::reserve`] (decide only: routing/feasibility,
    /// plan validation, arena reservation; no frames) — capped at
    /// [`FleetConfig::max_offer_attempts`]. The first shard to seat a
    /// ticket wins; the ranking tail is parked on a [`PendingRoute`] so
    /// [`FleetService::resolve_pending`] can continue the failover
    /// chain if the load later fails. Requests nobody can seat queue on
    /// the best-ranked device that reported "no room", or are rejected
    /// as unplaceable if no device could ever hold them. A candidate
    /// that carries a previewed [`RoomPlan`](rtm_core::RoomPlan) hands
    /// it to the shard's reserve, so the admission executes the routing
    /// plan instead of planning again.
    ///
    /// Failure handling splits by determinism:
    ///
    /// * [`ReserveOutcome::Dropped`] (duplicate id or synthesis
    ///   failure) consumes the request — the same design would fail on
    ///   every shard.
    /// * [`ReserveOutcome::Failed`] (device-specific planned-move
    ///   congestion at decide time) moves on to the next-ranked device
    ///   instead of consuming the request. Every shard that recorded
    ///   such a failure accounted the request once, so the fleet counts
    ///   each *extra* accounting in [`FleetReport::load_failovers`] and
    ///   the report identity becomes
    ///   `Σ shard_submitted = submitted − unplaceable + load_failovers`.
    ///   Execute-time failures surface the same way, one epoch phase
    ///   later, through [`FleetService::resolve_pending`].
    fn route(&mut self, at: Micros, a: Arrival, st: &mut RunState) -> Result<(), CoreError> {
        st.submitted += 1;

        // An id the fleet already holds must be judged by its owning
        // shard (whose duplicate refusal or queue bookkeeping applies),
        // not shipped to a sibling that would happily admit a twin.
        if let Some(&s) = self.owner.get(&a.id) {
            // Drain that shard's tickets first: an owner entry may
            // point at a reservation seated earlier this edge, and the
            // duplicate judgement below must see the same residency in
            // immediate and deferred mode.
            self.shards[s].execute_reserved(&mut st.reports[s])?;
            if self.shards[s].holds(a.id) {
                let part = self.shards[s].part();
                if a.rows <= part.clb_rows() && a.cols <= part.clb_cols() {
                    self.shards[s].enqueue(at, a, &mut st.reports[s])?;
                    st.routed[s] += 1;
                } else {
                    // A duplicate whose shape the owning device cannot
                    // even hold would sit at that queue's head forever
                    // (a blocked head blocks the queue): reject it
                    // outright instead.
                    st.unplaceable += 1;
                    if let Some(b) = &self.fleet_events {
                        b.emit(
                            at,
                            EventKind::Rejected {
                                id: a.id,
                                reason: RejectReason::Unplaceable,
                            },
                        );
                    }
                }
                return Ok(());
            }
            // The id departed long ago: drop the stale tracking entry
            // and route the reused id like any fresh arrival.
            self.owner.remove(&a.id);
        }

        let ranking = self.policy.rank(&a, &self.shards);
        if ranking.is_empty() {
            st.unplaceable += 1;
            if let Some(b) = &self.fleet_events {
                b.emit(
                    at,
                    EventKind::Rejected {
                        id: a.id,
                        reason: RejectReason::Unplaceable,
                    },
                );
            }
            return Ok(());
        }
        // Shards that consumed an accounting via a decide failure
        // before the request finally landed somewhere (each is one
        // extra shard-report `submitted`).
        let mut failed_accountings = 0usize;
        // Best-ranked shard that said "no room" — the queue slot.
        let mut queue_on: Option<usize> = None;
        // Devices offered before the request's fate was decided — the
        // "offer_chain_len" histogram (1 = first-ranked device took it).
        let mut offers = 0u64;
        let cap = self.config.max_offer_attempts.max(1);
        let mut chain = ranking.into_iter().take(cap);
        let mut attempt = 0usize;
        while let Some(cand) = chain.next() {
            let s = cand.shard;
            offers += 1;
            match self.shards[s].reserve(
                at,
                AdmissionBid::routed(a, cand.plan),
                &mut st.reports[s],
            )? {
                ReserveOutcome::Reserved => {
                    // The decision is made; the load itself runs in the
                    // execute phase (immediately below in immediate
                    // mode, inside the next shard-local segment under
                    // deferred execution) and the chain's bookkeeping
                    // is settled by `resolve_pending`.
                    if !self.config.deferred_execution {
                        self.shards[s].execute_reserved(&mut st.reports[s])?;
                    }
                    self.owner.insert(a.id, s);
                    st.pending.push(PendingRoute {
                        at,
                        arrival: a,
                        shard: s,
                        attempt,
                        offers,
                        failed_accountings,
                        queue_on,
                        remaining: chain.collect(),
                    });
                    return Ok(());
                }
                ReserveOutcome::Dropped { .. } => {
                    st.load_failovers += failed_accountings;
                    st.metrics.observe("offer_chain_len", offers);
                    st.routed[s] += 1;
                    return Ok(());
                }
                ReserveOutcome::Failed { .. } => {
                    // Recorded (and attributed) on this shard; the
                    // failure is device-specific, so the next-ranked
                    // device gets its chance instead of the request
                    // being consumed.
                    st.routed[s] += 1;
                    failed_accountings += 1;
                }
                ReserveOutcome::NoRoom => {
                    if queue_on.is_none() {
                        queue_on = Some(s);
                    }
                }
            }
            attempt += 1;
        }
        // Preemption edge: the whole ranking said "no room" (or worse),
        // but the arrival may outrank somebody already seated. Runs on
        // the sequential routing edge in both execution modes, so
        // immediate and deferred stay byte-identical by construction.
        if self.config.preemption
            && queue_on.is_some()
            && self.try_preempt(
                at,
                a,
                attempt,
                &mut offers,
                &mut failed_accountings,
                queue_on,
                st,
            )?
        {
            return Ok(());
        }
        st.metrics.observe("offer_chain_len", offers);
        if let Some(s) = queue_on {
            // Nobody can place it right now: wait on the best device
            // that can still hope to (a departure may free room there).
            st.load_failovers += failed_accountings;
            self.shards[s].enqueue(at, a, &mut st.reports[s])?;
            self.owner.insert(a.id, s);
            st.routed[s] += 1;
        } else {
            // Every offered device failed the load outright: the
            // request is spent. The first failing shard's accounting is
            // the request's own; the rest are failovers.
            st.load_failovers += failed_accountings.saturating_sub(1);
        }
        Ok(())
    }

    /// The preemption half of the routing edge: while the arrival's
    /// tier can still find a strictly-lower-tier victim somewhere it
    /// could physically fit, evict the fleet-cheapest one (smallest
    /// CLB footprint × remaining runtime, ties on trace id — see
    /// [`RuntimeService::preemption_victim`]) and re-offer the arrival
    /// to the freed shard. Evicted residents are migrated to a sibling
    /// with room when one exists, otherwise parked for deadline-safe
    /// readmission in a later idle window ([`FleetService::readmit_parked`]);
    /// either way their state survives frame-exactly. Returns whether
    /// the arrival's fate was decided here (seated, or consumed by a
    /// drop); `false` falls back to the queue path with `offers` and
    /// `failed_accountings` advanced by whatever the attempts cost.
    #[allow(clippy::too_many_arguments)]
    fn try_preempt(
        &mut self,
        at: Micros,
        a: Arrival,
        attempt: usize,
        offers: &mut u64,
        failed_accountings: &mut usize,
        queue_on: Option<usize>,
        st: &mut RunState,
    ) -> Result<bool, CoreError> {
        let n = self.shards.len();
        // Residents displaced during this episode: a victim whose
        // bundle migrated to a sibling is resident again and must not
        // be picked twice, or two shards with room for each other's
        // victims would trade them forever. Each lap displaces a
        // distinct resident, so the loop terminates.
        let mut displaced: Vec<u64> = Vec::new();
        loop {
            // The fleet-cheapest victim across every shard whose part
            // could hold the arrival at all. Costs are simulated
            // quantities, so the pick is engine-invariant.
            let victim = (0..n)
                .filter(|&s| {
                    let part = self.shards[s].part();
                    a.rows <= part.clb_rows() && a.cols <= part.clb_cols()
                })
                .filter_map(|s| {
                    self.shards[s]
                        .preemption_victim(a.tier, &displaced)
                        .map(|(tid, cost)| (cost, tid, s))
                })
                .min_by_key(|&(cost, tid, _)| (cost, tid));
            let Some((_, tid, vs)) = victim else {
                return Ok(false);
            };
            displaced.push(tid);
            self.evict_and_dispose(vs, tid, st)?;
            *offers += 1;
            match self.shards[vs].reserve(at, AdmissionBid::routed(a, None), &mut st.reports[vs])? {
                ReserveOutcome::Reserved => {
                    st.preemptions += 1;
                    if !self.config.deferred_execution {
                        self.shards[vs].execute_reserved(&mut st.reports[vs])?;
                    }
                    self.owner.insert(a.id, vs);
                    st.pending.push(PendingRoute {
                        at,
                        arrival: a,
                        shard: vs,
                        attempt,
                        offers: *offers,
                        failed_accountings: *failed_accountings,
                        queue_on,
                        remaining: Vec::new(),
                    });
                    return Ok(true);
                }
                ReserveOutcome::Dropped { .. } => {
                    st.load_failovers += *failed_accountings;
                    st.metrics.observe("offer_chain_len", *offers);
                    st.routed[vs] += 1;
                    return Ok(true);
                }
                ReserveOutcome::Failed { .. } => {
                    st.routed[vs] += 1;
                    *failed_accountings += 1;
                }
                // Still no room: the next lap evicts the
                // next-cheapest not-yet-displaced victim.
                ReserveOutcome::NoRoom => {}
            }
        }
    }

    /// Evicts `tid` off shard `from` and disposes of the bundle:
    /// migrated onto the first sibling (index order) whose planned room
    /// fits inside that sibling's idle window — destination-side check
    /// only, the source is being preempted *on* the critical path —
    /// otherwise parked on the fleet's park queue (a `Parked` event on
    /// the fleet stream). Either way the victim's state travels as a
    /// checkpointed extraction bundle, frame for frame.
    fn evict_and_dispose(
        &mut self,
        from: usize,
        tid: u64,
        st: &mut RunState,
    ) -> Result<(), CoreError> {
        // The victim was looked up on this same shard inside this same
        // sequential edge, so it is resident by construction; a miss
        // means the bookkeeping diverged and must surface as an error.
        let Some(fid) = self.shards[from].resident_function_id(tid) else {
            return Err(CoreError::Place(rtm_place::PlaceError::UnknownTask {
                id: tid,
            }));
        };
        let n = self.shards.len();
        let mut target: Option<(usize, MigrationPlan)> = None;
        for t in (0..n).filter(|&t| t != from) {
            let Some(plan) = self.shards[from]
                .manager()
                .plan_migration(fid, self.shards[t].manager())
            else {
                continue;
            };
            let dst_cost = (plan.cells() + plan.room().cells_moved()) as Micros
                * self.shards[t].config().us_per_clb;
            if dst_cost <= self.shards[t].idle_window() {
                target = Some((t, plan));
                break;
            }
        }
        let bundle = self.shards[from].evict_out(tid, &mut st.reports[from])?;
        if let Some((t, plan)) = target {
            if self.shards[t]
                .evict_in(
                    self.now,
                    &bundle,
                    Some(plan.room().clone()),
                    &mut st.reports[t],
                )
                .is_ok()
            {
                self.owner.insert(tid, t);
                st.evictions_migrated += 1;
                return Ok(());
            }
            // The target cleaned itself up and the bundle is still
            // whole: fall through to the park queue.
        }
        self.owner.remove(&tid);
        st.evictions_parked += 1;
        if let Some(b) = &self.fleet_events {
            b.emit(
                self.now,
                EventKind::Parked {
                    id: tid,
                    tier: bundle.tier().index() as u8,
                },
            );
        }
        self.park.push(ParkedBundle {
            bundle,
            parked_at: self.now,
        });
        Ok(())
    }

    /// Retries every parked bundle, oldest first, onto the first shard
    /// (index order) that can hold its shape, make room for it, and
    /// absorb the copy inside its idle window. Bundles whose residency
    /// expired while parked are dropped ([`FleetReport::parked_expired`]);
    /// the rest stay parked for a later epoch. Returns whether any
    /// readmission actually moved logic (the caller re-settles queues
    /// and re-samples the timeline, like after a migration wave).
    fn readmit_parked(&mut self, st: &mut RunState) -> Result<bool, CoreError> {
        let now = self.now;
        let n = self.shards.len();
        let mut moved = false;
        let mut still_parked = Vec::new();
        for p in std::mem::take(&mut self.park) {
            if p.bundle.expiry().map(|e| e <= now).unwrap_or(false) {
                st.parked_expired += 1;
                continue;
            }
            let (rows, cols) = p.bundle.shape();
            let mut seated = None;
            for t in 0..n {
                let part = self.shards[t].part();
                if rows > part.clb_rows() || cols > part.clb_cols() {
                    continue;
                }
                let Some(plan) = self.shards[t].manager().plan_room(rows, cols) else {
                    continue;
                };
                let cost = (p.bundle.cells() + plan.cells_moved()) as Micros
                    * self.shards[t].config().us_per_clb;
                if cost > self.shards[t].idle_window() {
                    continue;
                }
                if self.shards[t]
                    .evict_in(now, &p.bundle, Some(plan), &mut st.reports[t])
                    .is_ok()
                {
                    seated = Some(t);
                    break;
                }
            }
            match seated {
                Some(t) => {
                    self.owner.insert(p.bundle.trace_id(), t);
                    st.parked_readmitted += 1;
                    st.metrics
                        .observe("park_wait_us", now.saturating_sub(p.parked_at));
                    moved = true;
                }
                None => still_parked.push(p),
            }
        }
        self.park = still_parked;
        Ok(moved)
    }

    /// Settles every [`PendingRoute`] seated on this epoch's routing
    /// edge, in edge order: reads each ticket's fate off its shard
    /// (every ticket has been executed by now — inline in immediate
    /// mode, by the execute phase under deferred execution) and, when a
    /// deferred load failed, continues the capped failover chain down
    /// the parked ranking tail — synchronously, exactly as the
    /// immediate path would have. Runs on the calling thread in both
    /// modes, so the accounting and event order are engine-invariant.
    fn resolve_pending(&mut self, st: &mut RunState) -> Result<(), CoreError> {
        for p in std::mem::take(&mut st.pending) {
            let PendingRoute {
                at,
                arrival: a,
                shard,
                attempt,
                mut offers,
                mut failed_accountings,
                mut queue_on,
                remaining,
            } = p;
            match self.shards[shard].resolve_ticket(a.id) {
                Ok(TicketOutcome::Executed) => {
                    if attempt > 0 {
                        st.retries += 1;
                    }
                    st.load_failovers += failed_accountings;
                    st.metrics.observe("offer_chain_len", offers);
                    st.routed[shard] += 1;
                    continue;
                }
                Ok(TicketOutcome::Failed { .. }) => {
                    // The deferred load failed: the shard accounted the
                    // request (one extra `submitted`) and recovered its
                    // device; the reservation was cancelled by
                    // `resolve_ticket`. Continue down the ranking tail.
                    st.routed[shard] += 1;
                    failed_accountings += 1;
                    self.owner.remove(&a.id);
                }
                Err(_) => {
                    return Err(CoreError::DesignMismatch {
                        detail: "seated ticket did not resolve after the execute phase".into(),
                    })
                }
            }
            let mut landed = false;
            for cand in remaining {
                let s = cand.shard;
                offers += 1;
                match self.shards[s].reserve(
                    at,
                    AdmissionBid::failover(a, cand.plan),
                    &mut st.reports[s],
                )? {
                    ReserveOutcome::Reserved => {
                        // Failover loads run synchronously in both
                        // modes: the epoch's execute phase is already
                        // over, and a same-epoch retry must land before
                        // anything later can observe the shard.
                        self.shards[s].execute_reserved(&mut st.reports[s])?;
                        match self.shards[s].resolve_ticket(a.id) {
                            Ok(TicketOutcome::Executed) => {
                                st.retries += 1;
                                st.load_failovers += failed_accountings;
                                st.metrics.observe("offer_chain_len", offers);
                                self.owner.insert(a.id, s);
                                st.routed[s] += 1;
                                landed = true;
                            }
                            Ok(TicketOutcome::Failed { .. }) => {
                                st.routed[s] += 1;
                                failed_accountings += 1;
                                continue;
                            }
                            Err(_) => {
                                return Err(CoreError::DesignMismatch {
                                    detail: "reserved failover did not resolve after its drain"
                                        .into(),
                                })
                            }
                        }
                        break;
                    }
                    ReserveOutcome::Dropped { .. } => {
                        st.load_failovers += failed_accountings;
                        st.metrics.observe("offer_chain_len", offers);
                        st.routed[s] += 1;
                        landed = true;
                        break;
                    }
                    ReserveOutcome::Failed { .. } => {
                        st.routed[s] += 1;
                        failed_accountings += 1;
                    }
                    ReserveOutcome::NoRoom => {
                        if queue_on.is_none() {
                            queue_on = Some(s);
                        }
                    }
                }
            }
            if !landed {
                st.metrics.observe("offer_chain_len", offers);
                if let Some(s) = queue_on {
                    st.load_failovers += failed_accountings;
                    self.shards[s].enqueue(at, a, &mut st.reports[s])?;
                    self.owner.insert(a.id, s);
                    st.routed[s] += 1;
                } else {
                    st.load_failovers += failed_accountings.saturating_sub(1);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rebalance::UtilizationLevelling;
    use crate::routing::RoundRobin;
    use rtm_service::trace::{Arrival, TraceEvent};
    use rtm_service::{QosTier, ServiceConfig};

    /// Regression: the rebalancing trigger takes the planner out of
    /// `self` for the planning call and must reinstall it afterwards —
    /// on the triggering path AND the idle path. A dropped planner
    /// would silently disable rebalancing for the rest of the fleet's
    /// life (every later trigger would take `None`), with no error.
    #[test]
    fn rebalancer_survives_both_trigger_paths() {
        // Threshold below any possible index: the planning arm runs on
        // every step of the first trace.
        let config =
            FleetConfig::homogeneous(2, ServiceConfig::default()).with_rebalance_threshold(-1.0);
        let mut fleet = FleetService::new(config, Box::new(RoundRobin::default()))
            .with_rebalancer(Box::new(UtilizationLevelling::default()));

        let mut trace = Trace::new("trigger");
        for id in 0..4u64 {
            trace.push(
                id * 10_000,
                TraceEvent::Arrival(Arrival {
                    id,
                    rows: 4,
                    cols: 4,
                    duration: None,
                    deadline: None,
                    tier: QosTier::Standard,
                }),
            );
        }
        fleet.run(&trace).expect("trace runs");
        assert!(
            fleet.rebalancer.is_some(),
            "planner must be reinstalled after a triggering plan() call"
        );

        // Idle path: raise the threshold out of reach and run again —
        // the `idle` match arm must hand the planner back too.
        fleet.config.rebalance_threshold = f64::INFINITY;
        let mut second = Trace::new("idle");
        second.push(0, TraceEvent::Departure { id: 0 });
        fleet.run(&second).expect("second trace runs");
        assert!(
            fleet.rebalancer.is_some(),
            "planner must survive idle (non-triggering) steps"
        );
    }
}
