//! Cross-device placement policies: which shard gets this function.
//!
//! A [`RoutingPolicy`] ranks the devices that could physically hold an
//! arriving request as a list of [`RouteCandidate`]s; the fleet then
//! *offers* the request to each ranked device in turn (cross-device
//! retry) and queues it on the best-ranked one if nobody can place it
//! right now. Policies read shard state through the read-only surface
//! of [`RuntimeService`] — the epoch-cached fragmentation metrics and
//! [`summary`](rtm_core::RunTimeManager::summary), queue depth, and the
//! non-mutating
//! [`preview_admission`](rtm_core::RunTimeManager::preview_admission)
//! planner for the fragmentation-aware policy.
//!
//! A policy that previews an admission attaches the preview's
//! epoch-stamped [`RoomPlan`] to its candidate: the fleet hands it
//! straight to the shard's offer, which executes it via
//! [`load_with_plan`](rtm_core::RunTimeManager::load_with_plan) without
//! planning again — routing work is never thrown away.

use rtm_core::RoomPlan;
use rtm_service::trace::Arrival;
use rtm_service::RuntimeService;
use std::fmt;

/// One ranked routing candidate: the shard index, plus — when the
/// policy already previewed this admission — the rearrangement plan
/// ready to be executed by
/// [`load_with_plan`](rtm_core::RunTimeManager::load_with_plan).
#[derive(Debug, Clone)]
pub struct RouteCandidate {
    /// The shard index the candidate names.
    pub shard: usize,
    /// The previewed rearrangement plan for this request on this shard,
    /// if the policy computed one while ranking. `None` for policies
    /// that rank on cheap state only.
    pub plan: Option<RoomPlan>,
}

impl RouteCandidate {
    /// A candidate with no attached plan.
    pub fn bare(shard: usize) -> Self {
        RouteCandidate { shard, plan: None }
    }
}

/// A cross-device placement policy.
///
/// `rank` returns candidates best-first; the fleet tries them in
/// order. Returning an empty ranking declares the request unplaceable
/// on every device of the fleet (the provided [`eligible`] helper
/// encodes the only hard constraint: the request's shape must fit the
/// device).
pub trait RoutingPolicy: fmt::Debug + Send {
    /// The policy's name (reported in the
    /// [`FleetReport`](crate::FleetReport)).
    fn name(&self) -> &'static str;

    /// Ranks the shards that could hold `arrival`, best first.
    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<RouteCandidate>;
}

/// Shard indices whose device can physically hold `arrival` (its shape
/// fits the part), in index order — the candidate set every policy
/// ranks. A request eligible nowhere must be rejected, never queued.
pub fn eligible(arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
    shards
        .iter()
        .enumerate()
        .filter(|(_, s)| arrival.rows <= s.part().clb_rows() && arrival.cols <= s.part().clb_cols())
        .map(|(i, _)| i)
        .collect()
}

/// State-blind rotation over the eligible devices: each decision starts
/// one device later than the previous one. The classic load-spreading
/// baseline every informed policy has to beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<RouteCandidate> {
        let elig = eligible(arrival, shards);
        if elig.is_empty() {
            return Vec::new();
        }
        let start = self.next % elig.len();
        self.next = self.next.wrapping_add(1);
        let mut ranked = Vec::with_capacity(elig.len());
        ranked.extend(elig[start..].iter().copied().map(RouteCandidate::bare));
        ranked.extend(elig[..start].iter().copied().map(RouteCandidate::bare));
        ranked
    }
}

/// Prefer the device with the lowest CLB utilisation (ties: shorter
/// wait queue, then lower index). Balances *load*, not geometry: a
/// lightly-used device may still be too fragmented for a big request.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastUtilized;

impl RoutingPolicy for LeastUtilized {
    fn name(&self) -> &'static str {
        "least-utilized"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<RouteCandidate> {
        let mut elig = eligible(arrival, shards);
        elig.sort_by(|&a, &b| {
            let (sa, sb) = (&shards[a], &shards[b]);
            sa.manager()
                .fragmentation()
                .utilisation()
                .total_cmp(&sb.manager().fragmentation().utilisation())
                .then(sa.queue_len().cmp(&sb.queue_len()))
                .then(a.cmp(&b))
        });
        elig.into_iter().map(RouteCandidate::bare).collect()
    }
}

/// Best fit by free contiguous area: among devices whose largest free
/// rectangle already holds the request, pick the *tightest* one —
/// preserving the big holes of the other devices for big requests.
/// Devices that would need rearrangement first go last, closest-to-
/// fitting first.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitContiguous;

impl RoutingPolicy for BestFitContiguous {
    fn name(&self) -> &'static str {
        "best-fit-area"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<RouteCandidate> {
        let area = arrival.area();
        let mut elig = eligible(arrival, shards);
        elig.sort_by_key(|&i| {
            let largest = shards[i].manager().fragmentation().largest_rect;
            if largest >= area {
                // Tightest fitting hole first.
                (0u8, largest, i)
            } else {
                // Needs rearrangement: closest to fitting first.
                (1u8, u32::MAX - largest, i)
            }
        });
        elig.into_iter().map(RouteCandidate::bare).collect()
    }
}

/// Fragmentation-aware routing, two-staged so it scales to large
/// fleets.
///
/// **Stage 1 (cheap):** read every eligible device's epoch-cached
/// [`summary`](rtm_core::RunTimeManager::summary) — utilisation,
/// largest free rectangle, fragmentation index — and order candidates
/// by how promising they look: devices whose largest free rectangle's
/// *area* covers the request first (an optimistic heuristic — the
/// summary carries no shape information, so a 16×6 strip counts as
/// covering a 12×8 request; stage 2 is what separates real fits from
/// area-only ones), least fragmented of those ahead. Summaries cost
/// nothing for devices that have not mutated since the last query,
/// which is what keeps a 64-device fleet tractable.
///
/// **Stage 2 (expensive):** only the top
/// [`top_k`](FragAware::top_k) candidates get a full
/// [`preview_admission`](rtm_core::RunTimeManager::preview_admission)
/// — the rearrangement plan plus predicted post-placement metrics —
/// and are re-ranked by the fragmentation index the admission would
/// leave behind, breaking ties toward cheaper rearrangement. Each
/// previewed candidate carries its plan, so the winning device admits
/// via `load_with_plan` without planning again.
///
/// Un-previewed devices follow in their stage-1 order (the retry path
/// still reaches them); previewed devices that cannot admit even with
/// compaction go last.
#[derive(Debug, Clone, Copy)]
pub struct FragAware {
    /// How many stage-1 survivors get the expensive preview. Planning
    /// cost per arrival is bounded by this, independent of fleet size.
    pub top_k: usize,
}

impl Default for FragAware {
    /// Preview the four most promising devices — enough slack for the
    /// cross-device retry path on small fleets while keeping per-arrival
    /// planning cost flat on big ones.
    fn default() -> Self {
        FragAware { top_k: 4 }
    }
}

impl RoutingPolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<RouteCandidate> {
        let area = arrival.area();
        // Stage 1: cheap cut on cached summaries.
        let mut cheap: Vec<(usize, bool, f64, f64)> = eligible(arrival, shards)
            .into_iter()
            .map(|i| {
                let s = shards[i].manager().summary();
                // Area-only heuristic: the summary has no shape data, so
                // this can be optimistic (a long thin free strip "covers"
                // a square request). Stage 2's previews settle it.
                (
                    i,
                    s.frag.largest_rect >= area,
                    s.frag.fragmentation(),
                    s.frag.utilisation(),
                )
            })
            .collect();
        cheap.sort_by(
            |(a, area_fits_a, frag_a, util_a), (b, area_fits_b, frag_b, util_b)| {
                area_fits_b
                    .cmp(area_fits_a) // likely-fitting-without-rearrangement first
                    .then(frag_a.total_cmp(frag_b))
                    .then(util_a.total_cmp(util_b))
                    .then(a.cmp(b))
            },
        );

        // Stage 2: full admission preview on the top K only.
        let k = self.top_k.max(1).min(cheap.len());
        let mut previewed: Vec<(usize, rtm_core::AdmissionPreview)> = Vec::new();
        let mut hopeless: Vec<usize> = Vec::new();
        for &(i, _, _, _) in &cheap[..k] {
            match shards[i]
                .manager()
                .preview_admission(arrival.rows, arrival.cols)
            {
                Some(p) => previewed.push((i, p)),
                None => hopeless.push(i),
            }
        }
        // Hopeless devices (cannot admit even with compaction) are
        // ordered by their *current* fragmentation index, lowest first.
        // This deliberately ranks a fully packed device (frag 0.0, no
        // free cells) ahead of a shattered half-empty one: a request
        // that must queue waits best where departures free contiguous
        // room, not where free space is already confetti.
        hopeless.sort_by(|a, b| {
            let (ma, mb) = (
                shards[*a].manager().fragmentation().fragmentation(),
                shards[*b].manager().fragmentation().fragmentation(),
            );
            ma.total_cmp(&mb).then(a.cmp(b))
        });
        previewed.sort_by(|(a, pa), (b, pb)| {
            pa.after
                .fragmentation()
                .total_cmp(&pb.after.fragmentation())
                .then(pa.cells_moved().cmp(&pb.cells_moved()))
                .then(a.cmp(b))
        });

        let mut ranked: Vec<RouteCandidate> = previewed
            .into_iter()
            .map(|(shard, p)| RouteCandidate {
                shard,
                plan: Some(p.plan),
            })
            .collect();
        ranked.extend(
            cheap[k..]
                .iter()
                .map(|&(i, _, _, _)| RouteCandidate::bare(i)),
        );
        // Previewed-and-hopeless devices stay rankable (a queue slot of
        // last resort: future departures may free room) but go last.
        ranked.extend(hopeless.into_iter().map(RouteCandidate::bare));
        ranked
    }
}

/// The four standard policies, in sweep order: the state-blind baseline
/// first, then increasingly informed ones.
pub fn standard_policies() -> Vec<Box<dyn RoutingPolicy>> {
    vec![
        Box::new(RoundRobin::default()),
        Box::new(LeastUtilized),
        Box::new(BestFitContiguous),
        Box::new(FragAware::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::part::Part;
    use rtm_service::{QosTier, ServiceConfig};

    fn arrival(rows: u16, cols: u16) -> Arrival {
        Arrival {
            id: 0,
            rows,
            cols,
            duration: None,
            deadline: None,
            tier: QosTier::Standard,
        }
    }

    fn fleet(parts: &[Part]) -> Vec<RuntimeService> {
        parts
            .iter()
            .map(|p| RuntimeService::new(ServiceConfig::default().with_part(*p)))
            .collect()
    }

    fn shards_of(ranked: &[RouteCandidate]) -> Vec<usize> {
        ranked.iter().map(|c| c.shard).collect()
    }

    #[test]
    fn eligibility_excludes_too_small_devices() {
        let shards = fleet(&[Part::Xcv50, Part::Xcv200]);
        assert_eq!(eligible(&arrival(4, 4), &shards), vec![0, 1]);
        // 20 rows exceed the XCV50's 16.
        assert_eq!(eligible(&arrival(20, 10), &shards), vec![1]);
        // 70 columns exceed everything.
        assert!(eligible(&arrival(4, 70), &shards).is_empty());
    }

    #[test]
    fn round_robin_rotates_over_eligible() {
        let shards = fleet(&[Part::Xcv50, Part::Xcv50, Part::Xcv50]);
        let mut rr = RoundRobin::default();
        assert_eq!(shards_of(&rr.rank(&arrival(4, 4), &shards)), vec![0, 1, 2]);
        assert_eq!(shards_of(&rr.rank(&arrival(4, 4), &shards)), vec![1, 2, 0]);
        assert_eq!(shards_of(&rr.rank(&arrival(4, 4), &shards)), vec![2, 0, 1]);
        assert_eq!(shards_of(&rr.rank(&arrival(4, 4), &shards)), vec![0, 1, 2]);
    }

    #[test]
    fn least_utilized_prefers_emptier_devices() {
        let mut shards = fleet(&[Part::Xcv50, Part::Xcv50]);
        // Put load on shard 0.
        let mut rep = rtm_service::ServiceReport::new("setup");
        let a = arrival(8, 8);
        let got = shards[0]
            .admit(
                0,
                rtm_service::AdmissionBid::direct(Arrival { id: 7, ..a }),
                &mut rep,
            )
            .unwrap();
        assert_eq!(got, rtm_service::OfferOutcome::Admitted);
        assert_eq!(
            shards_of(&LeastUtilized.rank(&arrival(4, 4), &shards)),
            vec![1, 0],
            "the empty device ranks first"
        );
    }

    #[test]
    fn best_fit_prefers_tightest_hole_and_frag_aware_ranks_cleanest() {
        let mut shards = fleet(&[Part::Xcv50, Part::Xcv100]);
        // Fill most of the XCV100 so its largest hole is smaller than
        // the XCV50's blank 16x24.
        let mut rep = rtm_service::ServiceReport::new("setup");
        let got = shards[1]
            .admit(
                0,
                rtm_service::AdmissionBid::direct(Arrival {
                    id: 9,
                    ..arrival(20, 22)
                }),
                &mut rep,
            )
            .unwrap();
        assert_eq!(got, rtm_service::OfferOutcome::Admitted);
        // XCV100 hole: 20x8 = 160 >= 16; XCV50 hole: 384. Tightest wins.
        assert_eq!(
            shards_of(&BestFitContiguous.rank(&arrival(4, 4), &shards)),
            vec![1, 0]
        );
        // A request only the XCV50's hole satisfies flips the order.
        assert_eq!(
            shards_of(&BestFitContiguous.rank(&arrival(16, 12), &shards)),
            vec![0, 1]
        );
        // Frag-aware: both devices ranked, and every previewed candidate
        // carries the plan a load can execute directly.
        let ranked = FragAware::default().rank(&arrival(4, 4), &shards);
        assert_eq!(ranked.len(), 2);
        assert!(
            ranked.iter().all(|c| c.plan.is_some()),
            "two devices, top_k 4: both previewed"
        );
        assert!(
            ranked[0].plan.as_ref().unwrap().is_empty(),
            "a 4x4 fits both blanks without rearrangement"
        );
    }

    #[test]
    fn frag_aware_previews_only_top_k() {
        let shards = fleet(&[Part::Xcv50; 6]);
        let mut policy = FragAware { top_k: 2 };
        let base: u64 = shards
            .iter()
            .map(|s| s.manager().plan_stats().previews)
            .sum();
        let ranked = policy.rank(&arrival(4, 4), &shards);
        assert_eq!(ranked.len(), 6, "every eligible device stays rankable");
        let previews: u64 = shards
            .iter()
            .map(|s| s.manager().plan_stats().previews)
            .sum::<u64>()
            - base;
        assert_eq!(previews, 2, "only the top-K survivors get previewed");
        assert_eq!(
            ranked.iter().filter(|c| c.plan.is_some()).count(),
            2,
            "exactly the previewed candidates carry plans"
        );
        // A second identical ranking is answered from the summary cache.
        let hits_before: u64 = shards
            .iter()
            .map(|s| s.manager().plan_stats().summary_hits)
            .sum();
        policy.rank(&arrival(4, 4), &shards);
        let hits: u64 = shards
            .iter()
            .map(|s| s.manager().plan_stats().summary_hits)
            .sum::<u64>()
            - hits_before;
        assert_eq!(hits, 6, "unchanged devices answer from the cache");
    }

    #[test]
    fn standard_policies_cover_the_four_families() {
        let names: Vec<&str> = standard_policies().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "round-robin",
                "least-utilized",
                "best-fit-area",
                "frag-aware"
            ]
        );
    }
}
