//! Cross-device placement policies: which shard gets this function.
//!
//! A [`RoutingPolicy`] ranks the devices that could physically hold an
//! arriving request; the fleet then *offers* the request to each ranked
//! device in turn (cross-device retry) and queues it on the best-ranked
//! one if nobody can place it right now. Policies read shard state
//! through the read-only surface of [`RuntimeService`] — fragmentation
//! metrics, queue depth, and the non-mutating
//! [`preview_admission`](rtm_core::RunTimeManager::preview_admission)
//! planner for the fragmentation-aware policy.

use rtm_service::trace::Arrival;
use rtm_service::RuntimeService;
use std::fmt;

/// A cross-device placement policy.
///
/// `rank` returns shard indices best-first; the fleet tries them in
/// order. Returning an empty ranking declares the request unplaceable
/// on every device of the fleet (the provided [`eligible`] helper
/// encodes the only hard constraint: the request's shape must fit the
/// device).
pub trait RoutingPolicy: fmt::Debug {
    /// The policy's name (reported in the
    /// [`FleetReport`](crate::FleetReport)).
    fn name(&self) -> &'static str;

    /// Ranks the shards that could hold `arrival`, best first.
    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize>;
}

/// Shard indices whose device can physically hold `arrival` (its shape
/// fits the part), in index order — the candidate set every policy
/// ranks. A request eligible nowhere must be rejected, never queued.
pub fn eligible(arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
    shards
        .iter()
        .enumerate()
        .filter(|(_, s)| arrival.rows <= s.part().clb_rows() && arrival.cols <= s.part().clb_cols())
        .map(|(i, _)| i)
        .collect()
}

/// State-blind rotation over the eligible devices: each decision starts
/// one device later than the previous one. The classic load-spreading
/// baseline every informed policy has to beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
        let elig = eligible(arrival, shards);
        if elig.is_empty() {
            return elig;
        }
        let start = self.next % elig.len();
        self.next = self.next.wrapping_add(1);
        let mut ranked = Vec::with_capacity(elig.len());
        ranked.extend_from_slice(&elig[start..]);
        ranked.extend_from_slice(&elig[..start]);
        ranked
    }
}

/// Prefer the device with the lowest CLB utilisation (ties: shorter
/// wait queue, then lower index). Balances *load*, not geometry: a
/// lightly-used device may still be too fragmented for a big request.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastUtilized;

impl RoutingPolicy for LeastUtilized {
    fn name(&self) -> &'static str {
        "least-utilized"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
        let mut elig = eligible(arrival, shards);
        elig.sort_by(|&a, &b| {
            let (sa, sb) = (&shards[a], &shards[b]);
            sa.manager()
                .fragmentation()
                .utilisation()
                .total_cmp(&sb.manager().fragmentation().utilisation())
                .then(sa.queue_len().cmp(&sb.queue_len()))
                .then(a.cmp(&b))
        });
        elig
    }
}

/// Best fit by free contiguous area: among devices whose largest free
/// rectangle already holds the request, pick the *tightest* one —
/// preserving the big holes of the other devices for big requests.
/// Devices that would need rearrangement first go last, closest-to-
/// fitting first.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitContiguous;

impl RoutingPolicy for BestFitContiguous {
    fn name(&self) -> &'static str {
        "best-fit-area"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
        let area = arrival.area();
        let mut elig = eligible(arrival, shards);
        elig.sort_by_key(|&i| {
            let largest = shards[i].manager().fragmentation().largest_rect;
            if largest >= area {
                // Tightest fitting hole first.
                (0u8, largest, i)
            } else {
                // Needs rearrangement: closest to fitting first.
                (1u8, u32::MAX - largest, i)
            }
        });
        elig
    }
}

/// Fragmentation-aware routing: ask every eligible device what
/// admitting the request would do to it (the non-mutating
/// [`preview_admission`](rtm_core::RunTimeManager::preview_admission)
/// plan — rearrangement moves plus post-placement metrics) and prefer
/// the device left with the lowest fragmentation index, breaking ties
/// toward cheaper rearrangement. Devices that cannot admit right now
/// even with compaction go last, least-fragmented first.
#[derive(Debug, Clone, Copy, Default)]
pub struct FragAware;

impl RoutingPolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn rank(&mut self, arrival: &Arrival, shards: &[RuntimeService]) -> Vec<usize> {
        let elig = eligible(arrival, shards);
        let mut keyed: Vec<(usize, Option<(f64, u32)>)> = elig
            .into_iter()
            .map(|i| {
                let preview = shards[i]
                    .manager()
                    .preview_admission(arrival.rows, arrival.cols)
                    .map(|p| (p.after.fragmentation(), p.cells_moved()));
                (i, preview)
            })
            .collect();
        keyed.sort_by(|(a, pa), (b, pb)| match (pa, pb) {
            (Some((fa, ca)), Some((fb, cb))) => fa.total_cmp(fb).then(ca.cmp(cb)).then(a.cmp(b)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => {
                let (ma, mb) = (
                    shards[*a].manager().fragmentation().fragmentation(),
                    shards[*b].manager().fragmentation().fragmentation(),
                );
                ma.total_cmp(&mb).then(a.cmp(b))
            }
        });
        keyed.into_iter().map(|(i, _)| i).collect()
    }
}

/// The four standard policies, in sweep order: the state-blind baseline
/// first, then increasingly informed ones.
pub fn standard_policies() -> Vec<Box<dyn RoutingPolicy>> {
    vec![
        Box::new(RoundRobin::default()),
        Box::new(LeastUtilized),
        Box::new(BestFitContiguous),
        Box::new(FragAware),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::part::Part;
    use rtm_service::ServiceConfig;

    fn arrival(rows: u16, cols: u16) -> Arrival {
        Arrival {
            id: 0,
            rows,
            cols,
            duration: None,
            deadline: None,
        }
    }

    fn fleet(parts: &[Part]) -> Vec<RuntimeService> {
        parts
            .iter()
            .map(|p| RuntimeService::new(ServiceConfig::default().with_part(*p)))
            .collect()
    }

    #[test]
    fn eligibility_excludes_too_small_devices() {
        let shards = fleet(&[Part::Xcv50, Part::Xcv200]);
        assert_eq!(eligible(&arrival(4, 4), &shards), vec![0, 1]);
        // 20 rows exceed the XCV50's 16.
        assert_eq!(eligible(&arrival(20, 10), &shards), vec![1]);
        // 70 columns exceed everything.
        assert!(eligible(&arrival(4, 70), &shards).is_empty());
    }

    #[test]
    fn round_robin_rotates_over_eligible() {
        let shards = fleet(&[Part::Xcv50, Part::Xcv50, Part::Xcv50]);
        let mut rr = RoundRobin::default();
        assert_eq!(rr.rank(&arrival(4, 4), &shards), vec![0, 1, 2]);
        assert_eq!(rr.rank(&arrival(4, 4), &shards), vec![1, 2, 0]);
        assert_eq!(rr.rank(&arrival(4, 4), &shards), vec![2, 0, 1]);
        assert_eq!(rr.rank(&arrival(4, 4), &shards), vec![0, 1, 2]);
    }

    #[test]
    fn least_utilized_prefers_emptier_devices() {
        let mut shards = fleet(&[Part::Xcv50, Part::Xcv50]);
        // Put load on shard 0.
        let mut rep = rtm_service::ServiceReport::new("setup");
        let a = arrival(8, 8);
        let got = shards[0]
            .offer(0, Arrival { id: 7, ..a }, &mut rep)
            .unwrap();
        assert_eq!(got, rtm_service::OfferOutcome::Admitted);
        assert_eq!(
            LeastUtilized.rank(&arrival(4, 4), &shards),
            vec![1, 0],
            "the empty device ranks first"
        );
    }

    #[test]
    fn best_fit_prefers_tightest_hole_and_frag_aware_ranks_cleanest() {
        let mut shards = fleet(&[Part::Xcv50, Part::Xcv100]);
        // Fill most of the XCV100 so its largest hole is smaller than
        // the XCV50's blank 16x24.
        let mut rep = rtm_service::ServiceReport::new("setup");
        let got = shards[1]
            .offer(
                0,
                Arrival {
                    id: 9,
                    ..arrival(20, 22)
                },
                &mut rep,
            )
            .unwrap();
        assert_eq!(got, rtm_service::OfferOutcome::Admitted);
        // XCV100 hole: 20x8 = 160 >= 16; XCV50 hole: 384. Tightest wins.
        assert_eq!(BestFitContiguous.rank(&arrival(4, 4), &shards), vec![1, 0]);
        // A request only the XCV50's hole satisfies flips the order.
        assert_eq!(
            BestFitContiguous.rank(&arrival(16, 12), &shards),
            vec![0, 1]
        );
        // Frag-aware: placing 4x4 on the loaded XCV100 leaves a less
        // fragmented *index* than splitting the XCV50's single free
        // rectangle... whichever wins, the ranking must include both and
        // put a device that needs no rearrangement first.
        let ranked = FragAware.rank(&arrival(4, 4), &shards);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn standard_policies_cover_the_four_families() {
        let names: Vec<&str> = standard_policies().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "round-robin",
                "least-utilized",
                "best-fit-area",
                "frag-aware"
            ]
        );
    }
}
