//! # rtm-fleet
//!
//! The multi-device sharding layer: where `rtm-service` closes the
//! paper's on-line management story for *one* device, this crate scales
//! it out to a fleet. A [`FleetService`] owns N per-device
//! [`RuntimeService`](rtm_service::RuntimeService) shards (heterogeneous
//! device sizes allowed) and replays one [`Trace`](rtm_service::Trace)
//! across all of them under a shared clock. The decision this layer
//! adds — *which device gets this function* — is a first-class policy
//! ([`RoutingPolicy`]) exactly as in the surrounding literature: QoS
//! driven function allocation (Ullmann et al.) and scalable FPGA
//! resource-management layers both put a cross-device allocator above
//! the per-device placer.
//!
//! What the fleet does per arrival (the plan-reuse admission
//! pipeline):
//!
//! 1. the [`RoutingPolicy`] ranks every device that could physically
//!    hold the request (round-robin, least-utilized,
//!    best-fit-by-free-contiguous-area, or the two-stage
//!    fragmentation-aware policy: a cheap cut on every device's
//!    epoch-cached [`summary`](rtm_core::RunTimeManager::summary),
//!    then the expensive non-mutating
//!    [`preview_admission`](rtm_core::RunTimeManager::preview_admission)
//!    on the top-K survivors only);
//! 2. the fleet **reserves** the request on each ranked device in turn
//!    — **cross-device retry**, capped by
//!    [`FleetConfig::max_offer_attempts`] — seating an epoch-stamped
//!    admission ticket on the first that takes it
//!    ([`RuntimeService::reserve`](rtm_service::RuntimeService::reserve)
//!    accounts the request and reserves the arena region but writes no
//!    frames); a candidate previewed in step 1 carries its epoch-stamped
//!    [`RoomPlan`](rtm_core::RoomPlan) inside the ticket, which the
//!    execute step replays via
//!    [`load_with_plan`](rtm_core::RunTimeManager::load_with_plan)
//!    without planning again (stale plans are detected and re-planned,
//!    never executed);
//! 3. the ticket is **executed** —
//!    [`RuntimeService::execute_reserved`](rtm_service::RuntimeService::execute_reserved)
//!    implements the design and writes configuration frames — either
//!    inline on the routing edge (immediate mode) or inside the next
//!    shard-local segment
//!    ([`FleetConfig::with_deferred_execution`]), where
//!    [`EngineKind::Parallel`] fans the heavy load work across
//!    workers; a device-specific *load* failure (placement/routing
//!    congestion) is resolved after the execute phase, recorded and
//!    attributed on that shard, then the next-ranked device gets the
//!    request — counted in [`FleetReport::load_failovers`];
//! 4. if nobody can place it right now, the request queues on the
//!    best-ranked device that reported "no room" (served later in that
//!    shard's [`QueueOrder`](rtm_service::QueueOrder));
//! 5. requests no device can ever hold are counted
//!    [`FleetReport::unplaceable`] and dropped, never queued.
//!
//! Each shard keeps its own defragmentation threshold; on top of that a
//! fleet-level trigger ([`FleetConfig::fleet_frag_threshold`]) forces a
//! cycle on the device with the highest predicted gain when the *mean*
//! fragmentation index across the fleet climbs too high. The outcome of
//! a run is a [`FleetReport`]: per-device
//! [`ServiceReport`](rtm_service::ServiceReport)s plus fleet-wide
//! admission totals, retry/unplaceable counts and a fragmentation
//! timeline.
//!
//! The fleet advances epoch by epoch under a pluggable stepping
//! [`engine`]: each epoch runs every shard's **shard-local segment**
//! (departures, queue service, threshold defrag) up to the next
//! cross-shard event horizon, then applies the cross-shard edges
//! (routing, migration, the fleet defrag trigger) sequentially in
//! shard-index order. With deferred execution on, each routing edge is
//! followed by an **execute phase**: every shard drains its own ticket
//! queue in parallel before the tickets are resolved on the edge.
//! [`EngineKind::Parallel`] executes the shard-local segments (and the
//! execute phase) on scoped worker threads with **byte-identical
//! reports** — the thread schedule is unobservable because shards only
//! interact inside the sequential edges — which is what turns an
//! N-device sweep from N× single-device wall time into roughly
//! N/cores. The schedule-invariance test suite
//! (`tests/parallel_determinism.rs`) pins the equality over random
//! fleets, scenarios and thread counts, and
//! `tests/deferred_equivalence.rs` pins immediate-vs-deferred equality
//! over the same space.
//!
//! Routing decides where a function *starts*; the [`rebalance`]
//! subsystem revisits the decision. With a [`RebalancePolicy`]
//! installed ([`FleetService::with_rebalancer`]), the fleet migrates
//! resident functions between devices during **idle port windows** —
//! extract with live state and a configuration checkpoint, readmit
//! through the plan-reuse pipeline, restore frame-exactly on failure —
//! repairing aged placements (round-robin's combs) that neither
//! admission-time routing nor per-device compaction can fix. A
//! migration is refused outright if its port time could make any
//! queued deadline-bound request late.
//!
//! ## Example
//!
//! ```
//! use rtm_fleet::{FleetConfig, FleetService, routing::BestFitContiguous};
//! use rtm_fpga::part::Part;
//! use rtm_service::{QosTier, ServiceConfig};
//! use rtm_service::trace::{Arrival, Trace, TraceEvent};
//!
//! // Two small devices and a big one.
//! let config = FleetConfig::heterogeneous(
//!     &[Part::Xcv50, Part::Xcv50, Part::Xcv200],
//!     ServiceConfig::default(),
//! );
//! let mut fleet = FleetService::new(config, Box::new(BestFitContiguous));
//!
//! // A request too big for an XCV50 routes to the XCV200.
//! let mut trace = Trace::new("sized-routing");
//! trace.push(0, TraceEvent::Arrival(Arrival {
//!     id: 0, rows: 24, cols: 30, duration: None, deadline: None,
//!     tier: QosTier::Standard,
//! }));
//! let report = fleet.run(&trace).unwrap();
//! assert_eq!(report.admitted(), 1);
//! assert_eq!(fleet.shards()[2].resident_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fleet;
pub mod rebalance;
pub mod report;
pub mod routing;

pub use config::FleetConfig;
pub use engine::EngineKind;
pub use fleet::FleetService;
pub use rebalance::{
    standard_rebalancers, MigrationDirective, MigrationOutcome, RebalancePolicy,
    UtilizationLevelling, WorstShardDrain,
};
pub use report::{FleetReport, FleetSample, ShardOutcome};
pub use routing::{standard_policies, RouteCandidate, RoutingPolicy};
