//! The structured outcome of one service run.

use rtm_core::PlanStats;
use rtm_obs::MetricsRegistry;
use rtm_place::frag::FragMetrics;
use rtm_sched::admission::AdmissionOutcome;
use rtm_sched::qos::QosTier;
use rtm_sched::task::Micros;
use std::fmt;

/// Per-tier admission/latency roll-up, indexed by [`QosTier::index`]
/// (`[batch, standard, interactive]`).
///
/// Simulated counters only, so the roll-up is engine- and
/// mode-invariant and safe to compare byte-exact — the fleet baseline
/// gates the per-tier admitted counts the same way it gates the
/// untiered ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounts {
    /// Arrival events seen, per tier.
    pub submitted: [usize; 3],
    /// Functions admitted, per tier.
    pub admitted: [usize; 3],
    /// Total queue wait of admitted functions, per tier (µs); the
    /// per-tier mean latency is `waited / admitted`.
    pub waited: [Micros; 3],
}

impl TierCounts {
    /// Arrivals submitted at `tier`.
    pub fn submitted_for(&self, tier: QosTier) -> usize {
        self.submitted[tier.index()]
    }

    /// Functions admitted at `tier`.
    pub fn admitted_for(&self, tier: QosTier) -> usize {
        self.admitted[tier.index()]
    }

    /// Fraction of `tier` arrivals admitted (1.0 when none arrived).
    pub fn admission_rate(&self, tier: QosTier) -> f64 {
        let s = self.submitted_for(tier);
        if s == 0 {
            1.0
        } else {
            self.admitted_for(tier) as f64 / s as f64
        }
    }

    /// Mean queue wait of `tier` admissions (µs; 0.0 when none).
    pub fn mean_wait(&self, tier: QosTier) -> f64 {
        let a = self.admitted_for(tier);
        if a == 0 {
            0.0
        } else {
            self.waited[tier.index()] as f64 / a as f64
        }
    }

    /// True when arrivals span more than one tier (or any arrival left
    /// the default tier) — the reports only print the tier breakdown
    /// for genuinely tiered runs.
    pub fn is_tiered(&self) -> bool {
        self.submitted[QosTier::Batch.index()] + self.submitted[QosTier::Interactive.index()] > 0
    }

    /// Element-wise accumulate (the fleet roll-up).
    pub fn absorb(&mut self, other: &TierCounts) {
        for i in 0..3 {
            self.submitted[i] += other.submitted[i];
            self.admitted[i] += other.admitted[i];
            self.waited[i] += other.waited[i];
        }
    }
}

impl fmt::Display for TierCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for tier in QosTier::ALL.into_iter().rev() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "{} {}/{}",
                tier,
                self.admitted_for(tier),
                self.submitted_for(tier)
            )?;
        }
        Ok(())
    }
}

/// One fragmentation sample of the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragSample {
    /// Simulated time of the sample (µs).
    pub at: Micros,
    /// The metrics at that instant.
    pub metrics: FragMetrics,
}

/// One admitted function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRecord {
    /// The trace-level id of the function.
    pub trace_id: u64,
    /// When the admission decision was made (µs).
    pub at: Micros,
    /// Queue time between arrival and admission (µs).
    pub waited: Micros,
    /// How it was admitted (shared vocabulary with `rtm-sched`).
    pub outcome: AdmissionOutcome,
}

/// One service-initiated defragmentation cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefragSummary {
    /// When the cycle ran (µs).
    pub at: Micros,
    /// Fragmentation before.
    pub before: FragMetrics,
    /// Fragmentation after.
    pub after: FragMetrics,
    /// Function moves executed.
    pub moves: usize,
    /// CLBs of running logic relocated (model cost).
    pub cells_moved: u32,
    /// Configuration frames written.
    pub frames: usize,
}

/// Everything one [`RuntimeService::run`](crate::RuntimeService::run)
/// produced: admission/rejection counts, relocation traffic, and the
/// fragmentation timeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceReport {
    /// The trace that was replayed.
    pub trace_name: String,
    /// Arrival events seen.
    pub submitted: usize,
    /// Functions admitted (sum of immediate and after-rearrangement).
    pub admitted: usize,
    /// Admissions that fitted without moving anything.
    pub immediate: usize,
    /// Requests dropped because their deadline passed before they could
    /// start.
    pub rejected_deadline: usize,
    /// Requests dropped because design synthesis or loading failed, or
    /// because their id duplicated a still-resident function.
    pub failures: usize,
    /// Subset of [`ServiceReport::failures`] whose load failed for lack
    /// of free cell slots (placement-side congestion) — the
    /// routing-failure autopsy.
    pub failures_no_slots: usize,
    /// Subset of [`ServiceReport::failures`] whose load failed because a
    /// net was unroutable through the shared fabric (routing-side
    /// congestion).
    pub failures_unroutable: usize,
    /// Requests departed by the trace while still waiting in the queue
    /// (caller-initiated cancellations, not service rejections).
    pub cancelled: usize,
    /// Functions unloaded (duration expiry or explicit departure).
    pub departures: usize,
    /// Resident functions migrated *off* this device onto a sibling
    /// shard (completed migrations only: a failed migration restores
    /// the function here and moves this counter back, recording itself
    /// in [`ServiceReport::migrations_restored`] instead). Fleet-wide,
    /// `Σ migrations_out == Σ migrations_in` always.
    pub migrations_out: usize,
    /// Functions migrated *onto* this device from a sibling shard.
    pub migrations_in: usize,
    /// Failed readmissions rolled back onto this device from the
    /// extraction checkpoint (the function is resident here again, as
    /// if the migration had never been attempted).
    pub migrations_restored: usize,
    /// Residents *evicted off* this device by tiered preemption: a
    /// higher-tier reserve could not be seated, so the cheapest
    /// lower-tier resident was extracted (then migrated to a sibling
    /// shard or parked for idle-window readmission). Tracked apart from
    /// [`ServiceReport::migrations_out`] so the rebalancing identity
    /// `Σ migrations_out == Σ migrations_in` survives parking.
    pub evictions_out: usize,
    /// Evicted bundles *readmitted onto* this device — as a
    /// preemption-driven migration target or from the fleet's park
    /// queue in a later idle window.
    pub evictions_in: usize,
    /// Per-tier admission/latency roll-up ([batch, standard,
    /// interactive], indexed by [`QosTier::index`]).
    pub tiers: TierCounts,
    /// Defragmentation cycles the service initiated.
    pub defrag_cycles: usize,
    /// Whole-function moves executed (admission rearrangements plus
    /// defrag cycles).
    pub function_moves: usize,
    /// CLBs of running logic relocated (model cost over all moves).
    pub cells_moved: u64,
    /// Configuration frames written by relocations.
    pub frames_written: u64,
    /// Reconfiguration wall time of all relocation traffic under the
    /// configured cost model (ms).
    pub reconfig_ms: f64,
    /// What the halting baseline (Diessel et al.) would have charged the
    /// *moved* functions for the same traffic (ms) — zero actually
    /// incurred here, the paper's claim.
    pub baseline_halt_ms: f64,
    /// Per-admission records.
    pub admissions: Vec<AdmissionRecord>,
    /// Per-cycle defragmentation summaries.
    pub defrags: Vec<DefragSummary>,
    /// Fragmentation sampled after every processed event time.
    pub frag_timeline: Vec<FragSample>,
    /// Planning-pipeline counters for the run: how many `make_room` /
    /// compaction planning passes the manager executed, how many
    /// previously computed plans were executed without re-planning, and
    /// how the per-device summary cache behaved (filled in by
    /// [`RuntimeService::finish`](crate::RuntimeService::finish) as the
    /// delta of the manager's lifetime counters over this run).
    pub plan_stats: PlanStats,
    /// Deterministic observability metrics for the run — named counters
    /// and log2-bucketed histograms (queue wait in simulated µs, frames
    /// per load, moves per admission) deltaed by
    /// [`RuntimeService::finish`](crate::RuntimeService::finish) exactly
    /// like [`ServiceReport::plan_stats`]. Simulated quantities only, so
    /// the registry is engine-invariant and safe to compare byte-exact.
    pub metrics: MetricsRegistry,
    /// Requests still queued when the trace (and all residencies with
    /// known durations) ran out.
    pub queued_at_end: usize,
    /// Functions still resident at the end.
    pub resident_at_end: usize,
    /// Final fragmentation metrics.
    pub final_frag: Option<FragMetrics>,
}

impl ServiceReport {
    /// An empty report for `trace_name`.
    pub fn new(trace_name: impl Into<String>) -> Self {
        ServiceReport {
            trace_name: trace_name.into(),
            ..ServiceReport::default()
        }
    }

    /// Fraction of submitted requests that were admitted.
    pub fn admission_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.admitted as f64 / self.submitted as f64
        }
    }

    /// Mean queue wait of admitted functions (µs).
    pub fn mean_wait(&self) -> f64 {
        if self.admissions.is_empty() {
            0.0
        } else {
            self.admissions.iter().map(|a| a.waited as f64).sum::<f64>()
                / self.admissions.len() as f64
        }
    }

    /// Longest queue wait of an admitted function (µs).
    pub fn max_wait(&self) -> Micros {
        self.admissions.iter().map(|a| a.waited).max().unwrap_or(0)
    }

    /// Highest fragmentation index seen on the timeline.
    pub fn peak_frag(&self) -> f64 {
        self.frag_timeline
            .iter()
            .map(|s| s.metrics.fragmentation())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "service report — trace '{}'", self.trace_name)?;
        writeln!(
            f,
            "  admissions : {}/{} ({} immediate, {} after rearrangement), \
             {} deadline-rejected, {} failed, {} cancelled",
            self.admitted,
            self.submitted,
            self.immediate,
            self.admitted - self.immediate,
            self.rejected_deadline,
            self.failures,
            self.cancelled,
        )?;
        writeln!(
            f,
            "  lifecycle  : {} departures, {} resident at end, {} queued at end",
            self.departures, self.resident_at_end, self.queued_at_end
        )?;
        if self.migrations_in + self.migrations_out + self.migrations_restored > 0 {
            writeln!(
                f,
                "  migration  : {} in, {} out, {} restored after failed readmit",
                self.migrations_in, self.migrations_out, self.migrations_restored
            )?;
        }
        if self.tiers.is_tiered() || self.evictions_out + self.evictions_in > 0 {
            writeln!(
                f,
                "  tiers      : {} — {} evicted out, {} readmitted in",
                self.tiers, self.evictions_out, self.evictions_in
            )?;
        }
        writeln!(
            f,
            "  relocation : {} defrag cycles, {} function moves, {} CLBs, \
             {} frames, {:.1} ms of reconfiguration",
            self.defrag_cycles,
            self.function_moves,
            self.cells_moved,
            self.frames_written,
            self.reconfig_ms,
        )?;
        writeln!(
            f,
            "  halt time  : 0 ms incurred (halting baseline would charge {:.1} ms)",
            self.baseline_halt_ms
        )?;
        if self.failures > 0 {
            writeln!(
                f,
                "  autopsy    : {} no-free-slots, {} unroutable, {} other failures",
                self.failures_no_slots,
                self.failures_unroutable,
                self.failures - self.failures_no_slots - self.failures_unroutable,
            )?;
        }
        writeln!(f, "  planning   : {}", self.plan_stats)?;
        writeln!(
            f,
            "  waits      : mean {:.1} ms, max {:.1} ms",
            self.mean_wait() / 1000.0,
            self.max_wait() as f64 / 1000.0
        )?;
        write!(f, "  frag       : peak {:.3}", self.peak_frag())?;
        if let Some(m) = self.final_frag {
            write!(f, ", final {:.3} ({m})", m.fragmentation())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::{ClbCoord, Rect};

    #[test]
    fn rates_and_waits() {
        let mut r = ServiceReport::new("t");
        assert_eq!(r.admission_rate(), 1.0, "vacuously perfect");
        r.submitted = 4;
        r.admitted = 3;
        r.immediate = 2;
        let region = Rect::new(ClbCoord::new(0, 0), 2, 2);
        for (i, waited) in [(0u64, 0), (1, 10_000), (2, 20_000)] {
            r.admissions.push(AdmissionRecord {
                trace_id: i,
                at: waited,
                waited,
                outcome: AdmissionOutcome::Immediate { region },
            });
        }
        assert!((r.admission_rate() - 0.75).abs() < 1e-9);
        assert!((r.mean_wait() - 10_000.0).abs() < 1e-9);
        assert_eq!(r.max_wait(), 20_000);
        let shown = r.to_string();
        assert!(shown.contains("3/4"), "{shown}");
        assert!(shown.contains("trace 't'"), "{shown}");
    }

    #[test]
    fn tier_counts_roll_up() {
        let mut t = TierCounts::default();
        assert!(!t.is_tiered(), "all-standard runs are untiered");
        t.submitted[QosTier::Interactive.index()] = 4;
        t.admitted[QosTier::Interactive.index()] = 3;
        t.waited[QosTier::Interactive.index()] = 30_000;
        assert!(t.is_tiered());
        assert!((t.admission_rate(QosTier::Interactive) - 0.75).abs() < 1e-9);
        assert_eq!(t.admission_rate(QosTier::Batch), 1.0, "vacuously perfect");
        assert!((t.mean_wait(QosTier::Interactive) - 10_000.0).abs() < 1e-9);
        let mut sum = TierCounts::default();
        sum.absorb(&t);
        sum.absorb(&t);
        assert_eq!(sum.submitted_for(QosTier::Interactive), 8);
        assert_eq!(sum.admitted_for(QosTier::Interactive), 6);
        assert!(t.to_string().contains("interactive 3/4"), "{t}");
    }

    #[test]
    fn peak_frag_over_timeline() {
        let mut r = ServiceReport::new("t");
        assert_eq!(r.peak_frag(), 0.0);
        for (at, largest) in [(0, 100u32), (10, 25), (20, 50)] {
            r.frag_timeline.push(FragSample {
                at,
                metrics: FragMetrics {
                    free_cells: 100,
                    largest_rect: largest,
                    total_cells: 200,
                },
            });
        }
        assert!((r.peak_frag() - 0.75).abs() < 1e-9);
    }
}
