//! The runtime service loop: replay a trace against the live manager.

use crate::config::{QueueOrder, ServiceConfig};
use crate::report::{AdmissionRecord, DefragSummary, FragSample, ServiceReport};
use crate::trace::{Arrival, Trace, TraceEvent};
use rtm_core::manager::{FunctionId, RunTimeManager};
use rtm_core::{
    AdmissionTicket, CoreError, DefragPlan, ExtractedFunction, LoadFailureReason, PlanStats,
    RelocationReport, RoomPlan,
};
use rtm_fpga::part::Part;
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::{map_to_luts, MappedNetlist};
use rtm_obs::{EventBuffer, EventKind, EventSink, MetricsRegistry, RejectReason, RtmEvent};
use rtm_place::defrag::Move;
use rtm_sched::admission::AdmissionOutcome;
use rtm_sched::qos::{victim_cost, QosTier};
use rtm_sched::task::Micros;
use std::collections::{BTreeMap, VecDeque};

/// A queued request.
#[derive(Debug, Clone, Copy)]
struct Queued {
    arrival: Arrival,
    queued_at: Micros,
}

/// Where an admission bid came from — typed provenance replacing the
/// historical loose `(arrival, Option<RoomPlan>)` pair of `offer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidProvenance {
    /// Offered straight to this service (single-device callers, tests).
    Direct,
    /// Routed here by a fleet policy's first-choice ranking.
    Routed,
    /// Re-offered here after the load failed on a better-ranked sibling.
    Failover,
}

/// A typed admission bid: the arrival (which carries its
/// [`QosTier`]), an optional epoch-stamped rearrangement plan the
/// caller already computed for this request on this device (typically
/// from a frag-aware routing preview), and the bid's provenance.
/// [`RuntimeService::reserve`] and [`RuntimeService::admit`] consume
/// bids.
#[derive(Debug, Clone)]
pub struct AdmissionBid {
    arrival: Arrival,
    plan: Option<RoomPlan>,
    provenance: BidProvenance,
}

impl AdmissionBid {
    /// A bid offered straight to this service, without a routed plan.
    pub fn direct(arrival: Arrival) -> Self {
        AdmissionBid {
            arrival,
            plan: None,
            provenance: BidProvenance::Direct,
        }
    }

    /// A bid delivered by a fleet router's first-choice ranking.
    pub fn routed(arrival: Arrival, plan: Option<RoomPlan>) -> Self {
        AdmissionBid {
            arrival,
            plan,
            provenance: BidProvenance::Routed,
        }
    }

    /// A bid re-offered after a load failure on a better-ranked sibling.
    pub fn failover(arrival: Arrival, plan: Option<RoomPlan>) -> Self {
        AdmissionBid {
            arrival,
            plan,
            provenance: BidProvenance::Failover,
        }
    }

    /// Folds a caller-held room plan into the bid.
    pub fn with_plan(mut self, plan: Option<RoomPlan>) -> Self {
        self.plan = plan;
        self
    }

    /// The arrival being bid.
    pub fn arrival(&self) -> &Arrival {
        &self.arrival
    }

    /// The caller-held rearrangement plan, if any.
    pub fn plan(&self) -> Option<&RoomPlan> {
        self.plan.as_ref()
    }

    /// Where the bid came from.
    pub fn provenance(&self) -> BidProvenance {
        self.provenance
    }
}

/// What became of one admission attempt.
enum Attempt {
    /// Admitted and resident.
    Admitted,
    /// Dropped (deterministic refusal: duplicate id or synthesis
    /// failure), already recorded in the report.
    Dropped,
    /// The load itself failed on *this* device (placement or routing
    /// congestion), recorded in the report with its attributed reason.
    /// Unlike [`Attempt::Dropped`] this is device-specific: the same
    /// request may well succeed on a sibling.
    Failed,
    /// Cannot be placed right now; stays at the head of the queue.
    NoRoom,
}

/// Outcome of the sequential *decide* step, before any frames are
/// written. Mirrors [`ReserveOutcome`] without the accounting the
/// public wrapper adds.
enum Decision {
    /// A ticket was seated and queued for execution.
    Seated,
    /// Deterministic refusal (duplicate id or synthesis failure),
    /// recorded and attributed.
    Dropped(RejectReason),
    /// The reservation failed on this device (planned move hit
    /// congestion, or allocation failed), recorded and attributed.
    Failed(RejectReason),
    /// Cannot be placed right now; nothing recorded.
    NoRoom,
}

/// What became of one [`RuntimeService::admit`] — the immediate,
/// queue-bypassing admission attempt a fleet router uses to probe
/// devices before committing a request to one of them. Reject arms
/// carry the attributed [`RejectReason`] so callers no longer have to
/// re-derive it from the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Admitted and resident on this device.
    Admitted,
    /// Refused and accounted (duplicate id or synthesis failure) — the
    /// refusal is deterministic for the request, so the request is
    /// consumed: do not try it elsewhere.
    Dropped {
        /// Why the request was refused.
        reason: RejectReason,
    },
    /// The load failed on *this* device (placement/routing congestion),
    /// recorded here with its attributed reason. The failure is
    /// device-specific — a fleet may retry the next-ranked device.
    LoadFailed {
        /// The attributed load-failure reason.
        reason: RejectReason,
    },
    /// Cannot be placed on this device right now; nothing was recorded,
    /// the caller may try another device or queue it.
    NoRoom,
}

/// What became of one [`RuntimeService::reserve`] — the sequential
/// *decide* half of two-phase admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// Decided and seated: an epoch-stamped ticket now reserves the
    /// arena region and the request is accounted. The load itself runs
    /// when this shard drains its ticket queue
    /// ([`RuntimeService::execute_reserved`]); fetch the result with
    /// [`RuntimeService::resolve_ticket`].
    Reserved,
    /// Refused and accounted at decide time (duplicate id or synthesis
    /// failure) — deterministic for the request, do not retry
    /// elsewhere.
    Dropped {
        /// Why the request was refused.
        reason: RejectReason,
    },
    /// The *reservation* itself failed on this device (a planned
    /// rearrangement move hit congestion, or allocation failed),
    /// recorded with its attributed reason. Device-specific, like a
    /// load failure: the caller may retry the next-ranked device.
    Failed {
        /// The attributed failure reason.
        reason: RejectReason,
    },
    /// Cannot be placed on this device right now; nothing was recorded.
    NoRoom,
}

/// The resolved fate of one executed admission ticket, returned by
/// [`RuntimeService::resolve_ticket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketOutcome {
    /// The design was implemented and the function is resident.
    Executed,
    /// The deferred load failed (already accounted and attributed on
    /// this shard); resolving it cancelled the reservation, so the
    /// caller may failover the request to a sibling.
    Failed {
        /// The attributed load-failure reason.
        reason: RejectReason,
    },
}

/// A seated admission awaiting execution: everything the execute phase
/// needs to finish the load without re-deciding anything.
#[derive(Debug)]
struct PendingTicket {
    trace_id: u64,
    queued_at: Micros,
    ticket: AdmissionTicket,
    design: MappedNetlist,
    /// Simulated instant the function starts (decide time + planned
    /// rearrangement traffic on the reconfiguration port).
    start: Micros,
    duration: Option<Micros>,
    tier: QosTier,
    had_routed_plan: bool,
    provenance: BidProvenance,
}

/// Execution fate of a ticket, parked until the caller resolves it. A
/// failed ticket keeps its [`FunctionId`] so resolution can cancel the
/// still-seated arena reservation.
#[derive(Debug, Clone, Copy)]
enum ResolvedTicket {
    Executed,
    Failed(FunctionId, RejectReason),
}

/// A function in flight between shards: the service-level wrapper a
/// fleet carries from [`RuntimeService::migrate_out`] to
/// [`RuntimeService::migrate_in`]. Besides the core-level
/// [`ExtractedFunction`] snapshot it keeps the *service* identity — the
/// trace id and the absolute residency expiry — so the function's
/// lifecycle continues seamlessly on the new device: it departs at the
/// same simulated time it always would have.
#[derive(Debug, Clone)]
pub struct MigratingFunction {
    trace_id: u64,
    extracted: ExtractedFunction,
    expiry: Option<Micros>,
    tier: QosTier,
}

impl MigratingFunction {
    /// The trace-level id of the migrating function.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The function's QoS tier — carried across migrations and
    /// evictions so the function stays exactly as evictable on its new
    /// shard (or after park readmission) as it was on the old one.
    pub fn tier(&self) -> QosTier {
        self.tier
    }

    /// The core-level snapshot (design, state, checkpoint).
    pub fn extracted(&self) -> &ExtractedFunction {
        &self.extracted
    }

    /// The function's shape (`rows`, `cols`).
    pub fn shape(&self) -> (u16, u16) {
        self.extracted.shape()
    }

    /// CLBs the function occupies — the reconfiguration-port time a
    /// device pays (× `us_per_clb`) to copy it off or on.
    pub fn cells(&self) -> u32 {
        self.extracted.cells()
    }

    /// The absolute residency expiry carried across the migration.
    pub fn expiry(&self) -> Option<Micros> {
        self.expiry
    }
}

/// The event-driven runtime service: the paper's on-line management
/// story closed into a loop. Functions arrive through a [`Trace`], are
/// admitted under an `rtm-sched` [`Policy`](rtm_sched::Policy), become
/// *real* loaded functions on the managed device (placement, routing,
/// configuration frames), get relocated live when fragmentation crosses
/// the configured threshold, and leave when their residency ends.
///
/// State persists across [`RuntimeService::run`] calls — a service is
/// long-running — so replaying a second trace continues from the
/// device state the first one left behind.
///
/// [`RuntimeService::run`] owns the clock for a single device. A
/// multi-device fleet drives the same machinery through the stepping
/// API instead — [`RuntimeService::advance_to`],
/// [`RuntimeService::reserve`] / [`RuntimeService::execute_reserved`] /
/// [`RuntimeService::resolve_ticket`] (or the one-shot
/// [`RuntimeService::admit`]), [`RuntimeService::enqueue`],
/// [`RuntimeService::depart`] and [`RuntimeService::settle`] — keeping
/// one shared clock across all shards while each shard keeps its own
/// queue, residency table and defragmentation trigger. Admission is
/// two-phase: the sequential *decide* step seats an epoch-stamped
/// ticket on the routing edge, and the heavy *execute* step (cells,
/// nets, configuration frames) runs when the shard drains its ticket
/// queue — shard-locally, so an engine may fan it over workers.
///
/// # Examples
///
/// ```
/// use rtm_sched::qos::QosTier;
/// use rtm_service::{RuntimeService, ServiceConfig};
/// use rtm_service::trace::{Arrival, Trace, TraceEvent};
///
/// let mut trace = Trace::new("doc");
/// trace.push(0, TraceEvent::Arrival(Arrival {
///     id: 0, rows: 6, cols: 6, duration: Some(100_000), deadline: None,
///     tier: QosTier::Standard,
/// }));
/// let mut service = RuntimeService::new(ServiceConfig::default());
/// let report = service.run(&trace).unwrap();
/// assert_eq!(report.admitted, 1);
/// assert_eq!(report.departures, 1, "duration expired inside the run");
/// ```
#[derive(Debug)]
pub struct RuntimeService {
    config: ServiceConfig,
    mgr: RunTimeManager,
    now: Micros,
    /// Trace id → manager function id for resident functions.
    resident: BTreeMap<u64, FunctionId>,
    /// Trace id → simulated time its residency expires.
    expiry: BTreeMap<u64, Micros>,
    /// Trace id → QoS tier of every resident — the candidate set
    /// [`RuntimeService::preemption_victim`] ranks when a higher-tier
    /// reserve cannot be seated.
    tier_of: BTreeMap<u64, QosTier>,
    queue: VecDeque<Queued>,
    /// Manager plan-stats snapshot at the start of the current run —
    /// [`RuntimeService::finish`] reports the delta.
    stats_base: PlanStats,
    /// The queue head that last failed to place, with the manager epoch
    /// it failed at. While the head and epoch are unchanged, serving
    /// the queue is a no-op without re-planning: `make_room` is a pure
    /// function of the layout, and deadline slack only shrinks as the
    /// clock advances, so a blocked head stays blocked until the device
    /// mutates.
    head_blocked: Option<(u64, u64)>,
    /// Deterministic event stream, recorded when tracing is enabled
    /// ([`RuntimeService::enable_events`]). `None` keeps the hot path
    /// branch-cheap. Manager-level events (loads, defrag cycles) are
    /// emitted *here*, from the manager's reports — the manager itself
    /// has no simulated clock to stamp them with.
    events: Option<EventBuffer>,
    /// Deterministic metric accumulators for the service's whole life;
    /// [`RuntimeService::finish`] deltas them into the report exactly
    /// like `PlanStats`.
    metrics: MetricsRegistry,
    /// Snapshot of `metrics` at the start of the current run.
    metrics_base: MetricsRegistry,
    /// Seated admissions awaiting execution, in decide order. Drained
    /// by [`RuntimeService::execute_reserved`] — and defensively by
    /// every entry point that could otherwise observe a half-admitted
    /// device, which is what makes deferred and immediate execution
    /// byte-identical.
    tickets: VecDeque<PendingTicket>,
    /// Executed tickets awaiting [`RuntimeService::resolve_ticket`],
    /// keyed by trace id. A failed entry still holds its arena
    /// reservation (so sibling-ranking metrics agree between execution
    /// modes); resolution cancels it.
    resolved: BTreeMap<u64, ResolvedTicket>,
    /// Bumped whenever the expiry schedule changes — the cheap dirty
    /// flag a fleet's horizon clock compares before re-reading
    /// [`RuntimeService::next_local_event`].
    schedule_version: u64,
    /// Deterministic failure injection: the next N ticket executions
    /// fail as if the device refused the load (`LoadOther`). Test seam
    /// for the failover nets — a real execute-time failure (routing
    /// congestion under foreign nets) needs a layout too contrived to
    /// pin deterministically across refactors.
    force_fail_loads: u32,
}

// Compile-time `Send` pin: a shard (service + its manager) must be
// movable to a worker thread for the parallel fleet engine. Holds today
// because every field is owned data and the manager's interior
// mutability is `Cell`/`RefCell` (`Send`, not `Sync`).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RuntimeService>();
};

impl RuntimeService {
    /// A service over a blank device described by `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let mut mgr = RunTimeManager::new(config.part);
        mgr.strategy = config.strategy;
        RuntimeService {
            config,
            mgr,
            now: 0,
            resident: BTreeMap::new(),
            expiry: BTreeMap::new(),
            tier_of: BTreeMap::new(),
            queue: VecDeque::new(),
            stats_base: PlanStats::default(),
            head_blocked: None,
            events: None,
            metrics: MetricsRegistry::new(),
            metrics_base: MetricsRegistry::new(),
            tickets: VecDeque::new(),
            resolved: BTreeMap::new(),
            schedule_version: 0,
            force_fail_loads: 0,
        }
    }

    /// Makes the next `n` ticket executions fail deterministically, as
    /// if the device refused the load — the seam the failover test
    /// nets use to exercise deferred `LoadFailed` paths on demand.
    #[doc(hidden)]
    pub fn force_execute_failures(&mut self, n: u32) {
        self.force_fail_loads += n;
    }

    /// Installs an [`EventBuffer`] tagged `shard`: from here on every
    /// lifecycle step emits a deterministic [`RtmEvent`] (simulated
    /// timestamps only). Drain with [`RuntimeService::take_events`].
    pub fn enable_events(&mut self, shard: u32) {
        self.events = Some(EventBuffer::new(shard));
    }

    /// True when an event buffer is installed.
    pub fn events_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Drains the recorded events, oldest first (empty when tracing is
    /// disabled).
    pub fn take_events(&mut self) -> Vec<RtmEvent> {
        self.events
            .as_ref()
            .map(EventBuffer::take)
            .unwrap_or_default()
    }

    /// The event sink, when tracing is enabled — the internal
    /// `Option<&dyn EventSink>` threaded through the admission,
    /// departure, defragmentation and migration paths.
    fn sink(&self) -> Option<&dyn EventSink> {
        self.events.as_ref().map(|b| b as &dyn EventSink)
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The managed device and function table (read-only).
    pub fn manager(&self) -> &RunTimeManager {
        &self.mgr
    }

    /// The device part this service manages.
    pub fn part(&self) -> Part {
        self.config.part
    }

    /// Current simulated time (µs).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Functions currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// True if this service holds `trace_id` — resident or waiting in
    /// the queue. A fleet uses this to route duplicate arrivals to the
    /// owning shard, so the shard-level duplicate refusal fires there.
    pub fn holds(&self, trace_id: u64) -> bool {
        self.resident.contains_key(&trace_id) || self.queue.iter().any(|q| q.arrival.id == trace_id)
    }

    /// The earliest known residency expiration, if any — the shard's
    /// contribution to a fleet-wide event clock.
    pub fn next_expiry(&self) -> Option<Micros> {
        self.expiry.values().min().copied()
    }

    /// The shard's next **self-scheduled** event: the read-only peek a
    /// fleet stepping engine uses to compute the next cross-shard
    /// horizon. Everything strictly before this instant is shard-local
    /// — this shard will not unload, admit or defragment anything on
    /// its own — so an engine may advance the shard to the horizon on
    /// any worker thread without a sibling ever observing intermediate
    /// state. Today the only self-scheduled events are residency
    /// expirations ([`RuntimeService::next_expiry`]); queued deadlines
    /// are *reactive* (checked when the queue is served at a processed
    /// instant) and deliberately not part of the horizon.
    pub fn next_local_event(&self) -> Option<Micros> {
        self.next_expiry()
    }

    /// Monotonic counter bumped whenever the expiry schedule — and
    /// therefore [`RuntimeService::next_local_event`] — may have
    /// changed. A fleet horizon clock keeps per-shard heap entries
    /// fresh by comparing versions instead of re-scanning every shard
    /// every epoch.
    pub fn schedule_version(&self) -> u64 {
        self.schedule_version
    }

    /// Seated admissions not yet executed (the shard's ticket-queue
    /// depth). Zero except between [`RuntimeService::reserve`] and the
    /// next [`RuntimeService::execute_reserved`] drain.
    pub fn pending_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// The resident functions as `(trace_id, manager_id, region)` — the
    /// candidate set a fleet rebalancing planner scores (via
    /// [`RunTimeManager::preview_release`](rtm_core::RunTimeManager::preview_release)
    /// and the region geometry) when deciding what to migrate where.
    pub fn resident_functions(&self) -> Vec<(u64, FunctionId, rtm_fpga::geom::Rect)> {
        self.resident
            .iter()
            .filter_map(|(tid, fid)| self.mgr.function(*fid).map(|f| (*tid, *fid, f.region)))
            .collect()
    }

    /// The manager-level id of one resident trace id (`None` when the
    /// id is not resident here) — the point lookup a fleet uses to
    /// resolve a single migration directive without materialising the
    /// whole resident set.
    pub fn resident_function_id(&self, trace_id: u64) -> Option<FunctionId> {
        self.resident.get(&trace_id).copied()
    }

    /// The requests waiting in this shard's queue, in queue order — a
    /// fleet rebalancing planner reads them to spot *geometry
    /// starvation*: a queued request larger than the shard's largest
    /// free rectangle can only start if residents migrate away, no
    /// amount of local compaction will seat it.
    pub fn queued_requests(&self) -> Vec<Arrival> {
        self.queue.iter().map(|q| q.arrival).collect()
    }

    /// Reconfiguration-port time (µs) this shard can spend on
    /// background work — a migration copy in or out — without making
    /// any *queued* request late: for every queued deadline-bound
    /// request, the port must be free again early enough that the
    /// request could still start by its deadline even if admitting it
    /// costs a worst-case rearrangement of its own area. The tightest
    /// such budget is the idle window; `Micros::MAX` when nothing
    /// queued carries a deadline. Future arrivals are unknown and
    /// deliberately not reserved for — migrations ride the windows the
    /// *known* work leaves open, which is exactly the strip-packing-
    /// with-delays discipline: defragment off the critical path.
    pub fn idle_window(&self) -> Micros {
        self.queue
            .iter()
            .filter_map(|q| {
                q.arrival.deadline.map(|d| {
                    d.saturating_sub(self.now)
                        .saturating_sub(q.arrival.area() as Micros * self.config.us_per_clb)
                })
            })
            .min()
            .unwrap_or(Micros::MAX)
    }

    /// Replays `trace` to completion: every event is processed in time
    /// order, then the clock advances through the remaining known
    /// residency expirations so duration-bound functions depart inside
    /// the run. Returns the structured report.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for failures that corrupt the
    /// service invariants (a failed unload or defragmentation).
    /// Per-request load failures are absorbed into
    /// [`ServiceReport::failures`] — one bad request must not take the
    /// service down.
    pub fn run(&mut self, trace: &Trace) -> Result<ServiceReport, CoreError> {
        let mut report = ServiceReport::new(trace.name());
        let events = trace.events();
        let mut idx = 0usize;
        loop {
            let next_trace = events.get(idx).map(|e| e.at);
            let now = match (next_trace, self.next_expiry()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(e)) => e,
                (Some(a), Some(e)) => a.min(e),
            };
            // 1. Clock forward; residencies that expired by now depart.
            self.advance_to(now, &mut report)?;

            // 2. Trace events at this instant, in stream order.
            while idx < events.len() && events[idx].at <= now {
                match events[idx].event {
                    TraceEvent::Arrival(a) => self.enqueue(events[idx].at, a, &mut report)?,
                    TraceEvent::Departure { id } => self.depart(id, &mut report)?,
                }
                idx += 1;
            }

            // 3. Serve the queue, sample fragmentation, defragment if
            //    the trigger fires.
            self.settle(&mut report)?;
        }

        self.finish(&mut report);
        Ok(report)
    }

    /// Advances the clock to `now` (monotonic: an earlier `now` is a
    /// no-op) and departs every residency that expired by then.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from a failed unload.
    pub fn advance_to(&mut self, now: Micros, report: &mut ServiceReport) -> Result<(), CoreError> {
        // Settle any still-pending tickets at their decide-time clock
        // before the clock moves: a departure (or anything else this
        // sweep does) must never observe a half-admitted device.
        self.execute_reserved(report)?;
        self.now = self.now.max(now);
        let due: Vec<u64> = self
            .expiry
            .iter()
            .filter(|(_, t)| **t <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            self.depart(id, report)?;
        }
        Ok(())
    }

    /// Queues an arrival that was submitted at `at` without attempting
    /// admission yet — [`RuntimeService::settle`] (or the next
    /// [`RuntimeService::run`] step) serves it in the configured
    /// [`QueueOrder`]. Advances the clock to `at` so wait times and
    /// residency expirations can never be computed against a stale
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only from draining still-pending
    /// tickets (the events of an earlier admission must land before
    /// this arrival's, whichever execution mode seated it).
    pub fn enqueue(
        &mut self,
        at: Micros,
        arrival: Arrival,
        report: &mut ServiceReport,
    ) -> Result<(), CoreError> {
        self.execute_reserved(report)?;
        self.now = self.now.max(at);
        report.submitted += 1;
        report.tiers.submitted[arrival.tier.index()] += 1;
        if let Some(s) = self.sink() {
            s.emit(
                self.now,
                EventKind::Arrival {
                    id: arrival.id,
                    rows: arrival.rows,
                    cols: arrival.cols,
                },
            );
            s.emit(self.now, EventKind::Enqueued { id: arrival.id });
        }
        self.queue.push_back(Queued {
            arrival,
            queued_at: at,
        });
        Ok(())
    }

    /// The *decide* half of two-phase admission: runs the routing and
    /// feasibility pipeline for `bid` right now, bypassing the queue,
    /// and on success seats an epoch-stamped [`AdmissionTicket`] that
    /// reserves the arena region and accounts the request — but writes
    /// no cells, nets or frames. The heavy implementation work runs
    /// when this shard next drains its ticket queue
    /// ([`RuntimeService::execute_reserved`] — inside the engine's
    /// parallel execute phase, for a fleet), and the fate of the ticket
    /// is fetched with [`RuntimeService::resolve_ticket`].
    ///
    /// On [`ReserveOutcome::NoRoom`] nothing is recorded and the caller
    /// may probe another device; the other outcomes account the request
    /// on this shard. Advances the clock to `at` first, so deadline
    /// feasibility, wait times and residency expirations are all judged
    /// at the bid's own time. A valid [`AdmissionBid::plan`] makes the
    /// decision plan-free (executed without re-running `make_room`); a
    /// stale plan is detected and re-planned.
    ///
    /// Still-pending tickets from earlier reservations are executed
    /// first — every entry point that could observe admission state
    /// drains the queue — so per-shard event order is identical whether
    /// tickets are executed inline ([`RuntimeService::admit`]) or
    /// deferred to an engine phase.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for invariant-corrupting failures,
    /// exactly like [`RuntimeService::run`].
    pub fn reserve(
        &mut self,
        at: Micros,
        bid: AdmissionBid,
        report: &mut ServiceReport,
    ) -> Result<ReserveOutcome, CoreError> {
        self.execute_reserved(report)?;
        self.now = self.now.max(at);
        let q = Queued {
            arrival: bid.arrival,
            queued_at: at,
        };
        // The Arrival event must precede the outcome event, but a NoRoom
        // bid records nothing — emit speculatively and roll back.
        let mark = self.events.as_ref().map(EventBuffer::mark);
        if let Some(s) = self.sink() {
            s.emit(
                self.now,
                EventKind::Arrival {
                    id: bid.arrival.id,
                    rows: bid.arrival.rows,
                    cols: bid.arrival.cols,
                },
            );
        }
        let decision = self.decide(&q, bid.plan, bid.provenance, report)?;
        if matches!(decision, Decision::NoRoom) {
            if let (Some(b), Some(m)) = (self.events.as_ref(), mark) {
                b.truncate(m);
            }
        }
        let tier = q.arrival.tier;
        if !matches!(decision, Decision::NoRoom) {
            report.submitted += 1;
            report.tiers.submitted[tier.index()] += 1;
        }
        Ok(match decision {
            Decision::NoRoom => ReserveOutcome::NoRoom,
            Decision::Seated => ReserveOutcome::Reserved,
            Decision::Dropped(reason) => ReserveOutcome::Dropped { reason },
            Decision::Failed(reason) => ReserveOutcome::Failed { reason },
        })
    }

    /// The *execute* half of two-phase admission: implements every
    /// seated ticket, oldest first — placement already fixed by the
    /// reservation, so this is pure implementation work (cells, nets,
    /// configuration frames) that an engine can fan over worker threads
    /// shard-locally. Outcomes are parked for
    /// [`RuntimeService::resolve_ticket`]; a failed load keeps its
    /// arena reservation until resolved, so sibling-facing metrics
    /// agree between execution modes.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for invariant-corrupting failures;
    /// per-ticket load failures are absorbed, attributed and parked,
    /// exactly like [`RuntimeService::run`] absorbs load failures.
    pub fn execute_reserved(&mut self, report: &mut ServiceReport) -> Result<(), CoreError> {
        while let Some(pt) = self.tickets.pop_front() {
            self.execute_one(pt, report)?;
        }
        Ok(())
    }

    /// Resolves the fate of a previously reserved bid. Resolution is
    /// one-shot: it consumes the outcome, and resolving a failed ticket
    /// cancels its arena reservation — until then the region stays
    /// reserved, by design.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTicket`] when `trace_id` has no
    /// executed-but-unresolved ticket here — the id was never reserved,
    /// its ticket has not been executed yet, or it was already resolved.
    /// A typed error instead of a silent no-op: every such call is a
    /// caller losing track of the ticket lifecycle, and the failover
    /// paths must be able to tell "already consumed" apart from a real
    /// outcome.
    pub fn resolve_ticket(&mut self, trace_id: u64) -> Result<TicketOutcome, CoreError> {
        match self
            .resolved
            .remove(&trace_id)
            .ok_or(CoreError::UnknownTicket { trace_id })?
        {
            ResolvedTicket::Executed => Ok(TicketOutcome::Executed),
            ResolvedTicket::Failed(fid, reason) => {
                // The reservation was kept across the failure so both
                // execution modes rank siblings against the same arena;
                // releasing it is what resolution *means*.
                let cancelled = self.mgr.cancel_reservation(fid);
                debug_assert!(cancelled.is_ok(), "failed ticket must still be seated");
                Ok(TicketOutcome::Failed { reason })
            }
        }
    }

    /// One-shot admission: [`RuntimeService::reserve`], then
    /// immediately execute and resolve — the single-device form of the
    /// two-phase pipeline. Both execution modes run the same machinery;
    /// an admission observes identical device state and emits identical
    /// events whether its execute step ran here or in an engine's
    /// deferred execute phase.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] only for invariant-corrupting failures.
    pub fn admit(
        &mut self,
        at: Micros,
        bid: AdmissionBid,
        report: &mut ServiceReport,
    ) -> Result<OfferOutcome, CoreError> {
        let id = bid.arrival.id;
        match self.reserve(at, bid, report)? {
            ReserveOutcome::NoRoom => Ok(OfferOutcome::NoRoom),
            ReserveOutcome::Dropped { reason } => Ok(OfferOutcome::Dropped { reason }),
            ReserveOutcome::Failed { reason } => Ok(OfferOutcome::LoadFailed { reason }),
            ReserveOutcome::Reserved => {
                self.execute_reserved(report)?;
                // A reserved bid always resolves after its drain, so an
                // UnknownTicket here is a real invariant breach — let it
                // propagate.
                match self.resolve_ticket(id)? {
                    TicketOutcome::Executed => Ok(OfferOutcome::Admitted),
                    TicketOutcome::Failed { reason } => Ok(OfferOutcome::LoadFailed { reason }),
                }
            }
        }
    }

    /// Serves the wait queue, samples the fragmentation timeline, and
    /// runs a defragmentation cycle when the index exceeds the
    /// configured threshold. One call per processed instant.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from a failed defragmentation.
    pub fn settle(&mut self, report: &mut ServiceReport) -> Result<(), CoreError> {
        // Pending tickets must become real functions before the queue
        // is served or the defrag trigger reads fragmentation.
        self.execute_reserved(report)?;
        self.serve_queue(report)?;

        // The timeline must show the state the trigger saw, not
        // only the post-defrag recovery.
        report.frag_timeline.push(FragSample {
            at: self.now,
            metrics: self.mgr.fragmentation(),
        });

        if self.mgr.fragmentation().exceeds(self.config.frag_threshold) {
            self.defrag_now(None, report)?;
        }
        Ok(())
    }

    /// Runs one defragmentation cycle immediately, regardless of this
    /// shard's own threshold — the fleet-level trigger. The manager
    /// still refuses plans with no predicted improvement, so forcing a
    /// cycle on an incompressible (or already compact) layout is a
    /// recorded no-op. Returns whether a cycle actually executed.
    ///
    /// `plan` lets a caller that already planned the compaction (a
    /// fleet ranking devices by predicted gain) hand the plan over for
    /// execution via
    /// [`RunTimeManager::defragment_with_plan`](rtm_core::RunTimeManager::defragment_with_plan)
    /// instead of paying a second planning pass; stale plans are
    /// detected and re-planned.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from a failed relocation.
    pub fn defrag_now(
        &mut self,
        plan: Option<DefragPlan>,
        report: &mut ServiceReport,
    ) -> Result<bool, CoreError> {
        // Compaction planning must never see a reserved-but-
        // unimplemented id: drain pending tickets first, like every
        // other admission-state-observing entry point.
        self.execute_reserved(report)?;
        // Both paths execute through the plan pipeline (rtm-lint's
        // plan-discipline rule pins it): a caller-less trigger takes
        // the manager's epoch-cached plan, so a threshold cycle whose
        // gain the trigger already ranked costs no second planning
        // pass.
        let plan = plan.unwrap_or_else(|| self.mgr.cached_defrag_plan());
        let d = self.mgr.defragment_with_plan(&plan, |_, _, _| {})?;
        if d.moves.is_empty() {
            return Ok(false);
        }
        report.defrag_cycles += 1;
        if let Some(s) = self.sink() {
            s.emit(
                self.now,
                EventKind::DefragCycle {
                    before: d.before,
                    after: d.after,
                    moves: d.moves.len(),
                },
            );
        }
        report.defrags.push(DefragSummary {
            at: self.now,
            before: d.before,
            after: d.after,
            moves: d.moves.len(),
            cells_moved: d.cells_moved(),
            frames: d.frames_total(),
        });
        self.account_moves(&d.moves, &d.relocations, report);
        // Consolidated free space may admit queued requests.
        self.serve_queue(report)?;
        report.frag_timeline.push(FragSample {
            at: self.now,
            metrics: self.mgr.fragmentation(),
        });
        Ok(true)
    }

    /// Closes out a run: queue/residency tallies, the final
    /// fragmentation snapshot, and the run's planning-counter delta
    /// (the manager counts for its whole life; the report shows what
    /// *this* run moved).
    pub fn finish(&mut self, report: &mut ServiceReport) {
        report.queued_at_end = self.queue.len();
        report.resident_at_end = self.resident.len();
        report.final_frag = Some(self.mgr.fragmentation());
        let totals = self.mgr.plan_stats();
        report.plan_stats = totals.delta_since(self.stats_base);
        self.stats_base = totals;
        report.metrics = self.metrics.delta_since(&self.metrics_base);
        self.metrics_base = self.metrics.clone();
    }

    /// Unloads a resident function, or cancels a queued one (counted as
    /// [`ServiceReport::cancelled`]). Unknown ids are ignored (a trace
    /// may depart a function that was never admitted).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from a failed unload.
    pub fn depart(&mut self, trace_id: u64, report: &mut ServiceReport) -> Result<(), CoreError> {
        // A departure may target a function whose admission is still a
        // pending ticket — execute first so it departs as a resident,
        // exactly as it would have under inline execution.
        self.execute_reserved(report)?;
        if let Some(fid) = self.resident.remove(&trace_id) {
            self.tier_of.remove(&trace_id);
            if self.expiry.remove(&trace_id).is_some() {
                self.schedule_version += 1;
            }
            self.mgr.unload(fid)?;
            report.departures += 1;
            if let Some(s) = self.sink() {
                s.emit(self.now, EventKind::Unload { id: trace_id });
            }
        } else {
            let before = self.queue.len();
            let now = self.now;
            let events = self.events.as_ref();
            self.queue.retain(|q| {
                if q.arrival.id == trace_id {
                    if let Some(b) = events {
                        b.emit(
                            now,
                            EventKind::Dequeued {
                                id: trace_id,
                                waited: now - q.queued_at,
                            },
                        );
                    }
                    false
                } else {
                    true
                }
            });
            report.cancelled += before - self.queue.len();
        }
        Ok(())
    }

    /// Extracts a resident function off this shard for migration to a
    /// sibling: the outbound migration step. The function's residency
    /// bookkeeping (trace id, absolute expiry) travels with the
    /// returned [`MigratingFunction`]; the counter moves optimistically
    /// ([`ServiceReport::migrations_out`]) and is moved back by
    /// [`RuntimeService::restore_migrated`] if the readmission on the
    /// target fails — so completed-migration counters always balance
    /// fleet-wide.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] when `trace_id` is not resident
    /// here (queued requests are routed, not migrated).
    pub fn migrate_out(
        &mut self,
        trace_id: u64,
        report: &mut ServiceReport,
    ) -> Result<MigratingFunction, CoreError> {
        self.execute_reserved(report)?;
        let fid = self
            .resident
            .get(&trace_id)
            .copied()
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask {
                id: trace_id,
            }))?;
        let extracted = self.mgr.extract_function(fid)?;
        self.resident.remove(&trace_id);
        let tier = self.tier_of.remove(&trace_id).unwrap_or(QosTier::Standard);
        let expiry = self.expiry.remove(&trace_id);
        if expiry.is_some() {
            self.schedule_version += 1;
        }
        report.migrations_out += 1;
        if let Some(s) = self.sink() {
            s.emit(self.now, EventKind::MigrationOut { id: trace_id });
        }
        Ok(MigratingFunction {
            trace_id,
            extracted,
            expiry,
            tier,
        })
    }

    /// Readmits a migrating function onto this shard: the inbound
    /// migration step. `plan` is the target-side rearrangement plan the
    /// fleet computed while scoring this shard (revalidated exactly
    /// like any caller-held plan — stale ⇒ re-planned, never
    /// executed). On success the function is resident here with its
    /// original expiry and the admission rearrangement traffic is
    /// accounted like any other relocation work.
    ///
    /// # Errors
    ///
    /// Returns an error when the shard already holds the id, no room
    /// can be made, or the implementation fails — in every case this
    /// shard is left without orphan state and the caller still owns the
    /// bundle, so the source can
    /// [`RuntimeService::restore_migrated`] it.
    pub fn migrate_in(
        &mut self,
        at: Micros,
        m: &MigratingFunction,
        plan: Option<RoomPlan>,
        report: &mut ServiceReport,
    ) -> Result<(), CoreError> {
        self.execute_reserved(report)?;
        self.now = self.now.max(at);
        if self.resident.contains_key(&m.trace_id) {
            return Err(CoreError::Place(rtm_place::PlaceError::DuplicateTask {
                id: m.trace_id,
            }));
        }
        let (rows, cols) = m.shape();
        let plan = self
            .mgr
            .revalidate_room_plan(rows, cols, plan)
            .ok_or(CoreError::Place(rtm_place::PlaceError::NoFit {
                rows,
                cols,
            }))?;
        let lr = self
            .mgr
            .readmit_function(&m.extracted, &plan, |_, _, _| {})?;
        self.resident.insert(m.trace_id, lr.id);
        self.tier_of.insert(m.trace_id, m.tier);
        if let Some(e) = m.expiry {
            self.expiry.insert(m.trace_id, e);
            self.schedule_version += 1;
        }
        report.migrations_in += 1;
        if let Some(s) = self.sink() {
            s.emit(self.now, EventKind::MigrationIn { id: m.trace_id });
        }
        self.account_moves(&lr.moves, &lr.relocations, report);
        Ok(())
    }

    /// Rolls a failed migration back onto this (source) shard from the
    /// extraction checkpoint: the function is resident again — frame
    /// for frame as it was — its expiry is reinstated, and the
    /// optimistic [`ServiceReport::migrations_out`] count moves back
    /// into [`ServiceReport::migrations_restored`].
    ///
    /// # Errors
    ///
    /// Propagates
    /// [`RunTimeManager::restore_function`](rtm_core::RunTimeManager::restore_function)
    /// errors (a restore can only fail if this shard mutated between
    /// the extraction and the rollback, which the fleet's atomic
    /// migration step never allows).
    pub fn restore_migrated(
        &mut self,
        m: &MigratingFunction,
        report: &mut ServiceReport,
    ) -> Result<(), CoreError> {
        let fid = self.mgr.restore_function(&m.extracted)?;
        self.resident.insert(m.trace_id, fid);
        self.tier_of.insert(m.trace_id, m.tier);
        if let Some(e) = m.expiry {
            self.expiry.insert(m.trace_id, e);
            self.schedule_version += 1;
        }
        debug_assert!(
            report.migrations_out > 0,
            "restore must be given the report that recorded the migrate_out"
        );
        report.migrations_out = report.migrations_out.saturating_sub(1);
        report.migrations_restored += 1;
        if let Some(s) = self.sink() {
            s.emit(self.now, EventKind::MigrationRestored { id: m.trace_id });
        }
        Ok(())
    }

    /// The cheapest resident this shard could sacrifice to seat an
    /// arrival at `tier`: lowest [`victim_cost`] (CLB footprint ×
    /// remaining runtime) among residents of a *strictly* lower tier,
    /// ties broken on trace id. `None` when nothing here is evictable
    /// by `tier`. Reads the post-drain resident set — the fleet's
    /// preemption edge runs right after a [`RuntimeService::reserve`],
    /// which drains pending tickets.
    ///
    /// `exclude` lists trace ids that are off the table — the fleet
    /// passes the residents it already displaced during the current
    /// preemption episode, so a victim whose bundle *migrated* to a
    /// sibling (still resident fleet-wide) cannot be picked again and
    /// ping-pong between shards forever: each lap of the eviction loop
    /// then displaces a distinct resident, which is what makes the
    /// loop terminate.
    pub fn preemption_victim(&self, tier: QosTier, exclude: &[u64]) -> Option<(u64, u128)> {
        self.resident
            .iter()
            .filter(|(tid, _)| {
                if exclude.contains(tid) {
                    return false;
                }
                let resident_tier = self.tier_of.get(tid).copied().unwrap_or(QosTier::Standard);
                tier.may_preempt(resident_tier)
            })
            .filter_map(|(tid, fid)| {
                let f = self.mgr.function(*fid)?;
                let remaining = self.expiry.get(tid).map(|e| e.saturating_sub(self.now));
                Some((*tid, victim_cost(f.region.area(), remaining)))
            })
            .min_by_key(|(tid, cost)| (*cost, *tid))
    }

    /// Extracts a resident off this shard because a higher-tier arrival
    /// preempted it: the outbound half of evict-via-migrate-or-park.
    /// Mechanically [`RuntimeService::migrate_out`] — the same
    /// checkpointed extraction bundle — but accounted as an eviction
    /// ([`ServiceReport::evictions_out`], an `Evicted` event) so the
    /// rebalancing identity `Σ migrations_out == Σ migrations_in`
    /// survives bundles that are *parked* instead of readmitted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] when `trace_id` is not resident
    /// here.
    pub fn evict_out(
        &mut self,
        trace_id: u64,
        report: &mut ServiceReport,
    ) -> Result<MigratingFunction, CoreError> {
        self.execute_reserved(report)?;
        let fid = self
            .resident
            .get(&trace_id)
            .copied()
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask {
                id: trace_id,
            }))?;
        let extracted = self.mgr.extract_function(fid)?;
        self.resident.remove(&trace_id);
        let tier = self.tier_of.remove(&trace_id).unwrap_or(QosTier::Standard);
        let expiry = self.expiry.remove(&trace_id);
        if expiry.is_some() {
            self.schedule_version += 1;
        }
        report.evictions_out += 1;
        if let Some(s) = self.sink() {
            s.emit(
                self.now,
                EventKind::Evicted {
                    id: trace_id,
                    tier: tier.index() as u8,
                },
            );
        }
        Ok(MigratingFunction {
            trace_id,
            extracted,
            expiry,
            tier,
        })
    }

    /// Readmits an evicted bundle onto this shard — as the migration
    /// target of a preemption, or from the fleet's park queue in a
    /// later idle window. Mechanically [`RuntimeService::migrate_in`]
    /// but accounted as an eviction readmission
    /// ([`ServiceReport::evictions_in`], a `Readmitted` event).
    ///
    /// # Errors
    ///
    /// Exactly like [`RuntimeService::migrate_in`]: on any error this
    /// shard holds no orphan state and the caller still owns the
    /// bundle (it can stay parked, or be restored to its source).
    pub fn evict_in(
        &mut self,
        at: Micros,
        m: &MigratingFunction,
        plan: Option<RoomPlan>,
        report: &mut ServiceReport,
    ) -> Result<(), CoreError> {
        self.execute_reserved(report)?;
        self.now = self.now.max(at);
        if self.resident.contains_key(&m.trace_id) {
            return Err(CoreError::Place(rtm_place::PlaceError::DuplicateTask {
                id: m.trace_id,
            }));
        }
        let (rows, cols) = m.shape();
        let plan = self
            .mgr
            .revalidate_room_plan(rows, cols, plan)
            .ok_or(CoreError::Place(rtm_place::PlaceError::NoFit {
                rows,
                cols,
            }))?;
        let lr = self
            .mgr
            .readmit_function(&m.extracted, &plan, |_, _, _| {})?;
        self.resident.insert(m.trace_id, lr.id);
        self.tier_of.insert(m.trace_id, m.tier);
        if let Some(e) = m.expiry {
            self.expiry.insert(m.trace_id, e);
            self.schedule_version += 1;
        }
        report.evictions_in += 1;
        if let Some(s) = self.sink() {
            s.emit(
                self.now,
                EventKind::Readmitted {
                    id: m.trace_id,
                    tier: m.tier.index() as u8,
                },
            );
        }
        self.account_moves(&lr.moves, &lr.relocations, report);
        Ok(())
    }

    /// Serves the queue in the configured [`QueueOrder`]: drops requests
    /// whose deadline has passed, orders the queue, then admits from the
    /// head until it cannot be placed (a blocked head blocks the queue,
    /// which is what makes each order a real scheduling discipline
    /// rather than a scan).
    fn serve_queue(&mut self, report: &mut ServiceReport) -> Result<(), CoreError> {
        let now = self.now;
        let events = self.events.as_ref();
        self.queue.retain(|q| {
            let overdue = q.arrival.deadline.map(|d| d < now).unwrap_or(false);
            if overdue {
                report.rejected_deadline += 1;
                if let Some(b) = events {
                    let id = q.arrival.id;
                    b.emit(
                        now,
                        EventKind::Dequeued {
                            id,
                            waited: now - q.queued_at,
                        },
                    );
                    b.emit(
                        now,
                        EventKind::Rejected {
                            id,
                            reason: RejectReason::DeadlinePassed,
                        },
                    );
                }
            }
            !overdue
        });
        match self.config.queue_order {
            QueueOrder::Fifo => {}
            QueueOrder::EarliestDeadline => self
                .queue
                .make_contiguous()
                .sort_by_key(|q| (q.arrival.deadline.unwrap_or(Micros::MAX), q.queued_at)),
            QueueOrder::SmallestArea => self
                .queue
                .make_contiguous()
                .sort_by_key(|q| (q.arrival.area(), q.queued_at)),
        }
        while let Some(q) = self.queue.front().copied() {
            // A head that already failed to place at this exact epoch
            // cannot succeed now: the layout is unchanged and deadline
            // slack only shrinks. Skip the redundant planning pass —
            // this is what keeps an idle-but-blocked queue from paying
            // one `make_room` per processed instant.
            if self.head_blocked == Some((q.arrival.id, self.mgr.epoch())) {
                break;
            }
            // Dequeued precedes the admission outcome; a NoRoom head
            // stays queued, so its speculative event rolls back.
            let mark = self.events.as_ref().map(EventBuffer::mark);
            if let Some(s) = self.sink() {
                s.emit(
                    self.now,
                    EventKind::Dequeued {
                        id: q.arrival.id,
                        waited: self.now - q.queued_at,
                    },
                );
            }
            match self.try_admit(&q, None, BidProvenance::Direct, report)? {
                Attempt::NoRoom => {
                    if let (Some(b), Some(m)) = (self.events.as_ref(), mark) {
                        b.truncate(m);
                    }
                    self.head_blocked = Some((q.arrival.id, self.mgr.epoch()));
                    break;
                }
                Attempt::Admitted | Attempt::Dropped | Attempt::Failed => {
                    self.head_blocked = None;
                    self.queue.pop_front();
                }
            }
        }
        Ok(())
    }

    /// Admits one queued request through the full two-phase pipeline,
    /// inline: decide (seat a ticket), execute it, resolve it. The
    /// queue path therefore emits exactly the same event sequence and
    /// touches exactly the same counters as a fleet-routed admission,
    /// whichever phase its execute step would have run in.
    fn try_admit(
        &mut self,
        q: &Queued,
        routed_plan: Option<RoomPlan>,
        provenance: BidProvenance,
        report: &mut ServiceReport,
    ) -> Result<Attempt, CoreError> {
        match self.decide(q, routed_plan, provenance, report)? {
            Decision::NoRoom => Ok(Attempt::NoRoom),
            Decision::Dropped(_) => Ok(Attempt::Dropped),
            Decision::Failed(_) => Ok(Attempt::Failed),
            Decision::Seated => {
                self.execute_reserved(report)?;
                match self.resolve_ticket(q.arrival.id)? {
                    TicketOutcome::Executed => Ok(Attempt::Admitted),
                    TicketOutcome::Failed { .. } => Ok(Attempt::Failed),
                }
            }
        }
    }

    /// The sequential decide step: the routing/feasibility pipeline up
    /// to and including seating the reservation, but no frame writes.
    /// `routed_plan` is a caller-held rearrangement plan (from a
    /// routing preview); whatever happens, deciding runs at most one
    /// planning pass: a valid plan runs zero (reused for both the
    /// deadline-feasibility check and the reservation), and a stale or
    /// absent one is planned once and then executed via
    /// [`RunTimeManager::reserve_room`](rtm_core::RunTimeManager::reserve_room).
    fn decide(
        &mut self,
        q: &Queued,
        routed_plan: Option<RoomPlan>,
        provenance: BidProvenance,
        report: &mut ServiceReport,
    ) -> Result<Decision, CoreError> {
        let a = q.arrival;
        let had_routed_plan = routed_plan.is_some();
        // A duplicate of a still-resident id would orphan the earlier
        // function in the bookkeeping: refuse it outright.
        if self.resident.contains_key(&a.id) {
            report.failures += 1;
            if let Some(s) = self.sink() {
                s.emit(
                    self.now,
                    EventKind::Rejected {
                        id: a.id,
                        reason: RejectReason::DuplicateOrSynthesis,
                    },
                );
            }
            return Ok(Decision::Dropped(RejectReason::DuplicateOrSynthesis));
        }
        // The rearrangement the load would need, so the admission
        // decision can weigh its cost *before* committing. A valid
        // routed plan answers for free; otherwise plan once now.
        let Some(plan) = self.mgr.revalidate_room_plan(a.rows, a.cols, routed_plan) else {
            return Ok(Decision::NoRoom);
        };
        if !plan.is_empty() && !self.config.policy.rearranges() {
            return Ok(Decision::NoRoom);
        }
        // The reconfiguration port is busy for the whole move traffic;
        // the incoming function starts afterwards. If that would miss
        // the deadline, don't move running functions for nothing — the
        // request stays queued: a departure may yet shrink the plan,
        // and `serve_queue` rejects it once the deadline itself passes.
        let start = self.now + plan.cells_moved() as Micros * self.config.us_per_clb;
        if a.deadline.map(|d| start > d).unwrap_or(false) {
            return Ok(Decision::NoRoom);
        }

        let design = match self.design_for(&a) {
            Ok(d) => d,
            Err(_) => {
                report.failures += 1;
                if let Some(s) = self.sink() {
                    s.emit(
                        self.now,
                        EventKind::Rejected {
                            id: a.id,
                            reason: RejectReason::DuplicateOrSynthesis,
                        },
                    );
                }
                return Ok(Decision::Dropped(RejectReason::DuplicateOrSynthesis));
            }
        };
        match self.mgr.reserve_room(a.rows, a.cols, &plan, |_, _, _| {}) {
            Err(e) => {
                // Seating the reservation can fail like a load can: a
                // planned rearrangement move hits congestion on the
                // live device, or allocation falls through. The
                // manager's bookkeeping stays consistent, the service
                // records the casualty — attributed, so fleet autopsies
                // can tell area pressure from wiring congestion — and
                // keeps running.
                report.failures += 1;
                let reason = match e.load_failure_reason() {
                    LoadFailureReason::NoFreeSlots => {
                        report.failures_no_slots += 1;
                        RejectReason::NoFreeSlots
                    }
                    LoadFailureReason::Unroutable => {
                        report.failures_unroutable += 1;
                        RejectReason::Unroutable
                    }
                    LoadFailureReason::Other => RejectReason::LoadOther,
                };
                if let Some(s) = self.sink() {
                    s.emit(self.now, EventKind::Rejected { id: a.id, reason });
                }
                Ok(Decision::Failed(reason))
            }
            Ok(ticket) => {
                if let Some(s) = self.sink() {
                    s.emit(
                        self.now,
                        EventKind::Reserved {
                            id: a.id,
                            moves: ticket.moves().len(),
                        },
                    );
                }
                self.tickets.push_back(PendingTicket {
                    trace_id: a.id,
                    queued_at: q.queued_at,
                    ticket,
                    design,
                    start,
                    duration: a.duration,
                    tier: a.tier,
                    had_routed_plan,
                    provenance,
                });
                Ok(Decision::Seated)
            }
        }
    }

    /// Executes one seated ticket: the parallel half of an admission.
    /// Success makes the function resident and emits the
    /// `Admitted`/`Load`/`Executed` record; failure is absorbed,
    /// attributed and parked (reservation kept) for
    /// [`RuntimeService::resolve_ticket`]. Either way the outcome joins
    /// the resolved set.
    fn execute_one(
        &mut self,
        pt: PendingTicket,
        report: &mut ServiceReport,
    ) -> Result<(), CoreError> {
        let id = pt.trace_id;
        let fid = pt.ticket.id();
        self.metrics.inc("deferred_loads");
        if self.force_fail_loads > 0 {
            // Injected failure (see `force_execute_failures`): account
            // it exactly like a real execute refusal — nothing was
            // written, the arena reservation stays seated until the
            // ticket is resolved.
            self.force_fail_loads -= 1;
            report.failures += 1;
            if let Some(s) = self.sink() {
                s.emit(
                    self.now,
                    EventKind::Rejected {
                        id,
                        reason: RejectReason::LoadOther,
                    },
                );
            }
            if let Some(ResolvedTicket::Failed(old_fid, _)) = self
                .resolved
                .insert(id, ResolvedTicket::Failed(fid, RejectReason::LoadOther))
            {
                let _ = self.mgr.cancel_reservation(old_fid);
            }
            return Ok(());
        }
        match self.mgr.execute_reserved(&pt.design, pt.ticket) {
            Err(e) => {
                // Same absorption/attribution as a decide-time failure;
                // the arena reservation deliberately stays seated until
                // the ticket is resolved, so sibling-facing metrics are
                // identical whichever phase ran this code.
                report.failures += 1;
                let reason = match e.load_failure_reason() {
                    LoadFailureReason::NoFreeSlots => {
                        report.failures_no_slots += 1;
                        RejectReason::NoFreeSlots
                    }
                    LoadFailureReason::Unroutable => {
                        report.failures_unroutable += 1;
                        RejectReason::Unroutable
                    }
                    LoadFailureReason::Other => RejectReason::LoadOther,
                };
                if let Some(s) = self.sink() {
                    s.emit(self.now, EventKind::Rejected { id, reason });
                }
                // A reused trace id whose earlier failed ticket was
                // never resolved would leak that ticket's arena
                // reservation when we overwrite the entry: release it.
                if let Some(ResolvedTicket::Failed(old_fid, _)) = self
                    .resolved
                    .insert(id, ResolvedTicket::Failed(fid, reason))
                {
                    let _ = self.mgr.cancel_reservation(old_fid);
                }
            }
            Ok(lr) => {
                let outcome = if lr.moves.is_empty() {
                    report.immediate += 1;
                    AdmissionOutcome::Immediate { region: lr.region }
                } else {
                    AdmissionOutcome::AfterRearrange {
                        region: lr.region,
                        moves: lr.moves.len(),
                        cells_moved: lr.cells_moved(),
                    }
                };
                report.admitted += 1;
                let waited = self.now - pt.queued_at;
                report.tiers.admitted[pt.tier.index()] += 1;
                report.tiers.waited[pt.tier.index()] += waited;
                let frames = lr.frames_total();
                if let Some(s) = self.sink() {
                    s.emit(
                        self.now,
                        EventKind::Admitted {
                            id,
                            waited,
                            moves: lr.moves.len(),
                        },
                    );
                    s.emit(self.now, EventKind::Load { id, frames });
                    s.emit(self.now, EventKind::Executed { id, frames });
                }
                self.metrics.observe("queue_wait_us", waited);
                self.metrics.observe("frames_per_load", frames as u64);
                self.metrics
                    .observe("moves_per_admission", lr.moves.len() as u64);
                // Per-tier roll-ups in the deterministic registry: an
                // admitted counter and a wait histogram per tier.
                let (tier_admitted, tier_wait) = match pt.tier {
                    QosTier::Batch => ("tier_batch_admitted", "tier_batch_wait_us"),
                    QosTier::Standard => ("tier_standard_admitted", "tier_standard_wait_us"),
                    QosTier::Interactive => {
                        ("tier_interactive_admitted", "tier_interactive_wait_us")
                    }
                };
                self.metrics.inc(tier_admitted);
                self.metrics.observe(tier_wait, waited);
                if pt.had_routed_plan {
                    self.metrics.inc("admissions_with_routed_plan");
                }
                if pt.provenance == BidProvenance::Failover {
                    self.metrics.inc("failover_admissions");
                }
                report.admissions.push(AdmissionRecord {
                    trace_id: id,
                    at: self.now,
                    waited,
                    outcome,
                });
                self.account_moves(&lr.moves, &lr.relocations, report);
                if let Some(d) = pt.duration {
                    self.expiry.insert(id, pt.start + d);
                    self.schedule_version += 1;
                }
                self.resident.insert(id, lr.id);
                self.tier_of.insert(id, pt.tier);
                if let Some(ResolvedTicket::Failed(old_fid, _)) =
                    self.resolved.insert(id, ResolvedTicket::Executed)
                {
                    let _ = self.mgr.cancel_reservation(old_fid);
                }
            }
        }
        Ok(())
    }

    /// Folds executed relocation traffic into the report totals.
    fn account_moves(
        &self,
        moves: &[Move],
        relocations: &[RelocationReport],
        report: &mut ServiceReport,
    ) {
        let cells: u32 = moves.iter().map(Move::cells_moved).sum();
        report.function_moves += moves.len();
        report.cells_moved += cells as u64;
        for r in relocations {
            let cost = self.config.cost_model.relocation_cost(self.config.part, r);
            report.frames_written += cost.frames_written;
            report.reconfig_ms += cost.millis();
        }
        report.baseline_halt_ms += moves
            .iter()
            .map(|m| m.cells_moved() as Micros * self.config.us_per_clb)
            .sum::<Micros>() as f64
            / 1000.0;
    }

    /// A synthetic free-running design sized for the request. The logic
    /// depth is kept modest — the *area* reservation is what the trace
    /// exercises; the design only has to be real enough to place, route
    /// and relocate.
    fn design_for(&self, a: &Arrival) -> Result<MappedNetlist, rtm_netlist::NetlistError> {
        let area = a.area();
        let gates = (area / 8).clamp(4, 16) as usize;
        let ffs = (area / 48).clamp(2, 4) as usize;
        let seed = self.config.design_seed ^ a.id.wrapping_mul(0x9e37_79b9);
        map_to_luts(&RandomCircuit::free_running(ffs, gates, seed).generate())
    }
}
