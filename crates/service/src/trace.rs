//! Trace model: the arrival/departure event streams the service replays.
//!
//! A [`Trace`] is a named, time-ordered stream of [`TraceEvent`]s —
//! function arrivals (with area, optional residency duration and
//! optional start deadline) and explicit departures for functions that
//! stay resident until told otherwise. Traces come from three places:
//! hand-built event lists ([`Trace::push`]), converted stochastic
//! workloads ([`Trace::from_workload`]), and the canned [`Scenario`]
//! generators used by the benches and the `service_loop` example.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtm_fpga::part::Part;
use rtm_sched::qos::QosTier;
use rtm_sched::task::{Micros, TaskSpec};
use rtm_sched::workload::WorkloadParams;
use std::fmt;

/// One function-arrival request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Trace-level id (distinct from the manager's function id).
    pub id: u64,
    /// CLB rows requested.
    pub rows: u16,
    /// CLB columns requested.
    pub cols: u16,
    /// How long the function stays resident once started (µs). `None`
    /// means it runs until an explicit [`TraceEvent::Departure`].
    pub duration: Option<Micros>,
    /// Absolute time by which the function must have *started* (µs).
    /// `None` means the request waits patiently in the queue.
    pub deadline: Option<Micros>,
    /// QoS tier. Admission may preempt residents of a strictly lower
    /// tier to seat this arrival (when preemption is enabled), and the
    /// per-tier report counters roll up under it.
    pub tier: QosTier,
}

impl Arrival {
    /// Area in CLBs.
    pub fn area(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {} [{}x{}]", self.id, self.rows, self.cols)?;
        if let Some(d) = self.duration {
            write!(f, " for {d}us")?;
        }
        if let Some(d) = self.deadline {
            write!(f, " deadline {d}us")?;
        }
        if self.tier != QosTier::Standard {
            write!(f, " [{}]", self.tier)?;
        }
        Ok(())
    }
}

/// One event of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A function requests admission.
    Arrival(Arrival),
    /// A resident (or still-queued) function leaves. The id refers to
    /// the [`Arrival::id`] of the function.
    Departure {
        /// The departing function's trace id.
        id: u64,
    },
}

/// An event stamped with its simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the event fires (µs).
    pub at: Micros,
    /// The event.
    pub event: TraceEvent,
}

/// A named, time-ordered event stream.
///
/// # Examples
///
/// ```
/// use rtm_sched::qos::QosTier;
/// use rtm_service::trace::{Arrival, Trace, TraceEvent};
///
/// let mut trace = Trace::new("two-functions");
/// trace.push(0, TraceEvent::Arrival(Arrival {
///     id: 0, rows: 4, cols: 4, duration: Some(100_000), deadline: None,
///     tier: QosTier::Standard,
/// }));
/// trace.push(50_000, TraceEvent::Arrival(Arrival {
///     id: 1, rows: 4, cols: 4, duration: None, deadline: None,
///     tier: QosTier::Standard,
/// }));
/// trace.push(400_000, TraceEvent::Departure { id: 1 });
/// assert_eq!(trace.arrivals(), 2);
/// assert!(trace.events().windows(2).all(|w| w[0].at <= w[1].at));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    events: Vec<TimedEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// The trace's name (reported in the [`ServiceReport`]).
    ///
    /// [`ServiceReport`]: crate::report::ServiceReport
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts an event, keeping events sorted by time (stable: equal
    /// timestamps keep insertion order).
    pub fn push(&mut self, at: Micros, event: TraceEvent) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, TimedEvent { at, event });
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Arrival(_)))
            .count()
    }

    /// Merges staggered copies of `traces` into one fleet-scale trace.
    ///
    /// Copy `k` keeps its internal event order, shifted `k * stagger`
    /// microseconds later, with every id (arrivals *and* departures)
    /// offset by `k * id_stride` so copies never collide, and absolute
    /// deadlines shifted along with the arrival times. This is how a
    /// multi-device workload is built from the single-device
    /// [`Scenario`] generators: `n` copies of a scenario offer roughly
    /// `n` devices' worth of load, with the phase offsets overlapping
    /// each copy's burst/churn/departure phases.
    ///
    /// # Panics
    ///
    /// Panics unless `id_stride` exceeds the largest id used by any
    /// input trace — a silent collision would make one copy's
    /// departure unload another copy's function.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_fpga::part::Part;
    /// use rtm_service::trace::{Scenario, Trace};
    ///
    /// let copies: Vec<Trace> = (0..3)
    ///     .map(|k| Scenario::SteadyChurn.trace(Part::Xcv50, 42 + k))
    ///     .collect();
    /// let fleet = Trace::merged("churn-x3", &copies, 1 << 32, 100_000);
    /// assert_eq!(fleet.arrivals(), copies.iter().map(Trace::arrivals).sum());
    /// assert!(fleet.events().windows(2).all(|w| w[0].at <= w[1].at));
    /// ```
    pub fn merged(
        name: impl Into<String>,
        traces: &[Trace],
        id_stride: u64,
        stagger: Micros,
    ) -> Self {
        let max_id = traces
            .iter()
            .flat_map(|t| t.events())
            .map(|e| match e.event {
                TraceEvent::Arrival(a) => a.id,
                TraceEvent::Departure { id } => id,
            })
            .max()
            .unwrap_or(0);
        assert!(
            traces.len() <= 1 || id_stride > max_id,
            "id_stride {id_stride} must exceed the largest input id {max_id}"
        );
        let mut out = Trace::new(name);
        for (k, t) in traces.iter().enumerate() {
            let dt = stagger * k as Micros;
            let did = id_stride * k as u64;
            for e in t.events() {
                let event = match e.event {
                    TraceEvent::Arrival(a) => TraceEvent::Arrival(Arrival {
                        id: a.id + did,
                        deadline: a.deadline.map(|d| d + dt),
                        ..a
                    }),
                    TraceEvent::Departure { id } => TraceEvent::Departure { id: id + did },
                };
                out.push(e.at + dt, event);
            }
        }
        out
    }

    /// Converts a stochastic `rtm-sched` workload into a trace: every
    /// [`TaskSpec`] becomes an arrival with its duration and no
    /// deadline.
    pub fn from_workload(name: impl Into<String>, tasks: &[TaskSpec]) -> Self {
        let mut trace = Trace::new(name);
        for t in tasks {
            trace.push(
                t.arrival,
                TraceEvent::Arrival(Arrival {
                    id: t.id,
                    rows: t.rows,
                    cols: t.cols,
                    duration: Some(t.duration),
                    deadline: None,
                    tier: QosTier::Standard,
                }),
            );
        }
        trace
    }
}

/// The canned workload scenarios exercised by the `service_loop`
/// example and bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Bursts of simultaneous arrivals with deadlines, separated by
    /// quiet gaps — models interactive load spikes.
    Bursty,
    /// Poisson-like arrivals with overlapping residencies — the
    /// steady-state churn that slowly fragments the array.
    SteadyChurn,
    /// A deterministic fragmenter: fill the device with full-height
    /// strips, depart every other one (comb fragmentation), then submit
    /// requests that fit only after a defragmentation cycle.
    AdversarialFragmenter,
    /// The tiered multi-tenant mix: long-running background batch
    /// residents, steady standard churn, then a flash crowd of
    /// deadline-bound interactive arrivals. The only scenario whose
    /// arrivals span all three [`QosTier`]s — the workload the
    /// preemptive-eviction path is measured on.
    TieredMix,
}

impl Scenario {
    /// All scenarios, for sweeps.
    pub const ALL: [Scenario; 4] = [
        Scenario::Bursty,
        Scenario::SteadyChurn,
        Scenario::AdversarialFragmenter,
        Scenario::TieredMix,
    ];

    /// The scenario's name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Bursty => "bursty",
            Scenario::SteadyChurn => "steady-churn",
            Scenario::AdversarialFragmenter => "adversarial-fragmenter",
            Scenario::TieredMix => "tiered-mix",
        }
    }

    /// Generates the scenario's trace, sized for `part` and
    /// reproducible in `seed`.
    pub fn trace(&self, part: Part, seed: u64) -> Trace {
        match self {
            Scenario::Bursty => bursty(part, seed),
            Scenario::SteadyChurn => steady_churn(part, seed),
            Scenario::AdversarialFragmenter => adversarial_fragmenter(part, seed),
            Scenario::TieredMix => tiered_mix(part, seed),
        }
    }

    /// `copies` staggered copies of this scenario (copy `k` seeded
    /// `seed + 100·k`), sized for `part` and merged into one
    /// fleet-scale trace named `"{scenario}-x{copies}"` with disjoint
    /// id ranges — the canonical multi-device workload used by the
    /// `fleet_loop` example/bench, the fleet tests, and the CI perf
    /// baseline. One definition keeps all of those comparing the same
    /// event stream.
    pub fn fleet_trace(&self, part: Part, copies: u64, seed: u64, stagger: Micros) -> Trace {
        let traces: Vec<Trace> = (0..copies)
            .map(|k| self.trace(part, seed + 100 * k))
            .collect();
        Trace::merged(format!("{self}-x{copies}"), &traces, 1 << 32, stagger)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bursts of 4–6 deadline-bound arrivals with quiet gaps between them.
fn bursty(part: Part, seed: u64) -> Trace {
    let (rows, cols) = (part.clb_rows(), part.clb_cols());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new(Scenario::Bursty.name());
    let mut id = 0u64;
    let mut t: Micros = 0;
    for _ in 0..4 {
        let burst = rng.gen_range(4..=6);
        for _ in 0..burst {
            let jitter: Micros = rng.gen_range(0..20_000);
            let at = t + jitter;
            let rows = rng.gen_range((rows / 4).max(2)..=(rows / 2).max(3));
            let cols = rng.gen_range((cols / 6).max(2)..=(cols / 3).max(3));
            let duration = rng.gen_range(300_000..=900_000);
            // Deadline tightness varies per request (interactive bursts
            // mix latency-critical and patient work) — what makes
            // deadline-aware queue orders differ from FIFO at all.
            let slack: Micros = rng.gen_range(600_000..=3_000_000);
            trace.push(
                at,
                TraceEvent::Arrival(Arrival {
                    id,
                    rows,
                    cols,
                    duration: Some(duration),
                    deadline: Some(at + slack),
                    tier: QosTier::Standard,
                }),
            );
            id += 1;
        }
        t += rng.gen_range(600_000u64..=1_200_000);
    }
    trace
}

/// Poisson-like arrivals with overlapping residencies (a converted
/// `rtm-sched` workload).
fn steady_churn(part: Part, seed: u64) -> Trace {
    let (rows, cols) = (part.clb_rows(), part.clb_cols());
    let tasks = WorkloadParams {
        n_tasks: 24,
        mean_interarrival: 120_000.0,
        rows: (2, (rows / 2).max(3)),
        cols: (2, (cols / 2).max(3)),
        duration: (200_000, 700_000),
        seed,
    }
    .generate();
    Trace::from_workload(Scenario::SteadyChurn.name(), &tasks)
}

/// Fill with full-height strips, depart alternating ones, then submit
/// requests larger than any surviving gap. The departure pattern is the
/// textbook comb that maximises fragmentation for a given free area, so
/// the big requests are admissible *only* after rearrangement.
fn adversarial_fragmenter(part: Part, seed: u64) -> Trace {
    let (rows, cols) = (part.clb_rows(), part.clb_cols());
    let mut rng = StdRng::seed_from_u64(seed);
    let strip_w = (cols / 8).max(3);
    let n_strips = (cols / strip_w) as u64;
    let mut trace = Trace::new(Scenario::AdversarialFragmenter.name());
    let mut t: Micros = 0;
    // Phase 1: wall-to-wall strips with no fixed duration (daemons).
    for i in 0..n_strips {
        trace.push(
            t,
            TraceEvent::Arrival(Arrival {
                id: i,
                rows,
                cols: strip_w,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            }),
        );
        t += 50_000;
    }
    // Phase 2: depart every other strip — comb fragmentation.
    t += 200_000;
    let parity = u64::from(rng.gen_bool(0.5));
    for i in (0..n_strips).filter(|i| i % 2 == parity) {
        trace.push(t, TraceEvent::Departure { id: i });
        t += 10_000;
    }
    // Phase 3: requests wider than any single gap; only a
    // defragmentation cycle (or load-time rearrangement) admits them.
    t += 100_000;
    let big_cols = 3 * strip_w;
    for k in 0..2u64 {
        trace.push(
            t,
            TraceEvent::Arrival(Arrival {
                id: 1000 + k,
                rows,
                cols: big_cols,
                duration: Some(400_000),
                deadline: Some(t + 5_000_000),
                tier: QosTier::Standard,
            }),
        );
        t += 300_000;
    }
    trace
}

/// Background batch residents, standard churn, then a flash crowd of
/// deadline-bound interactive arrivals — the tiered multi-tenant mix.
/// Without preemption the crowd finds the array held by long-running
/// batch strips and times out in the queue; with preemption admission
/// evicts the cheapest batch residents (migrate to a shard with room,
/// else park for idle-window readmission) and seats the crowd.
fn tiered_mix(part: Part, seed: u64) -> Trace {
    let (rows, cols) = (part.clb_rows(), part.clb_cols());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new(Scenario::TieredMix.name());
    let mut t: Micros = 0;
    let mut id = 0u64;
    // Phase 1: background batch — wall-to-wall long-running strips.
    let strip_w = (cols / 6).max(3);
    let n_strips = cols / strip_w;
    for _ in 0..n_strips {
        trace.push(
            t,
            TraceEvent::Arrival(Arrival {
                id,
                rows,
                cols: strip_w,
                duration: Some(rng.gen_range(4_000_000..=8_000_000)),
                deadline: None,
                tier: QosTier::Batch,
            }),
        );
        id += 1;
        t += 40_000;
    }
    // Phase 2: standard churn riding on the loaded array.
    for _ in 0..4 {
        t += rng.gen_range(50_000u64..=150_000);
        trace.push(
            t,
            TraceEvent::Arrival(Arrival {
                id,
                rows: rng.gen_range(2..=(rows / 4).max(2)),
                cols: rng.gen_range(2..=(cols / 6).max(2)),
                duration: Some(rng.gen_range(200_000..=500_000)),
                deadline: None,
                tier: QosTier::Standard,
            }),
        );
        id += 1;
    }
    // Phase 3: the flash crowd — big deadline-bound interactive
    // requests that fit only if batch residents give way.
    t += 200_000;
    let crowd = rng.gen_range(3..=4);
    for _ in 0..crowd {
        let jitter: Micros = rng.gen_range(0..30_000);
        let at = t + jitter;
        trace.push(
            at,
            TraceEvent::Arrival(Arrival {
                id,
                rows: rng.gen_range((rows / 2).max(3)..=rows),
                cols: rng.gen_range((cols / 4).max(3)..=(cols / 2).max(4)),
                duration: Some(rng.gen_range(300_000..=600_000)),
                deadline: Some(at + rng.gen_range(400_000u64..=1_500_000)),
                tier: QosTier::Interactive,
            }),
        );
        id += 1;
        t += 60_000;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order_stably() {
        let mut trace = Trace::new("t");
        let arr = |id| {
            TraceEvent::Arrival(Arrival {
                id,
                rows: 2,
                cols: 2,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            })
        };
        trace.push(100, arr(0));
        trace.push(50, arr(1));
        trace.push(100, arr(2));
        let times: Vec<Micros> = trace.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![50, 100, 100]);
        // Equal timestamps keep insertion order: 0 before 2.
        let ids: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Arrival(a) => Some(a.id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![1, 0, 2]);
    }

    #[test]
    fn scenarios_generate_deterministic_in_seed() {
        for s in Scenario::ALL {
            let a = s.trace(Part::Xcv50, 7);
            let b = s.trace(Part::Xcv50, 7);
            assert_eq!(a, b, "{s}");
            assert!(a.arrivals() > 0, "{s}");
            assert!(
                a.events().windows(2).all(|w| w[0].at <= w[1].at),
                "{s} sorted"
            );
            // Every request fits on the part.
            for e in a.events() {
                if let TraceEvent::Arrival(arr) = e.event {
                    assert!(arr.rows <= Part::Xcv50.clb_rows(), "{s}: {arr}");
                    assert!(arr.cols <= Part::Xcv50.clb_cols(), "{s}: {arr}");
                }
            }
        }
        let a = Scenario::Bursty.trace(Part::Xcv50, 1);
        let b = Scenario::Bursty.trace(Part::Xcv50, 2);
        assert_ne!(a, b, "seed must matter");
    }

    #[test]
    fn merged_offsets_ids_times_and_deadlines() {
        let mut t = Trace::new("one");
        t.push(
            10,
            TraceEvent::Arrival(Arrival {
                id: 1,
                rows: 2,
                cols: 2,
                duration: Some(100),
                deadline: Some(500),
                tier: QosTier::Interactive,
            }),
        );
        t.push(20, TraceEvent::Departure { id: 1 });
        let merged = Trace::merged("three", &[t.clone(), t.clone(), t], 1000, 7);
        assert_eq!(merged.events().len(), 6);
        assert_eq!(merged.arrivals(), 3);
        assert!(merged.events().windows(2).all(|w| w[0].at <= w[1].at));
        // Copy 2: times +14, ids +2000, deadline shifted with the copy.
        let last_arrival = merged
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Arrival(a) => Some((e.at, a)),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(last_arrival.0, 24);
        assert_eq!(last_arrival.1.id, 2001);
        assert_eq!(last_arrival.1.deadline, Some(514));
        assert_eq!(last_arrival.1.duration, Some(100), "durations are relative");
        assert_eq!(
            last_arrival.1.tier,
            QosTier::Interactive,
            "tiers ride through the merge untouched"
        );
    }

    #[test]
    #[should_panic(expected = "id_stride")]
    fn merged_rejects_colliding_id_stride() {
        let mut t = Trace::new("one");
        t.push(
            0,
            TraceEvent::Arrival(Arrival {
                id: 5,
                rows: 2,
                cols: 2,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            }),
        );
        // Stride 5 cannot separate ids up to 5: copy 0's id 5 would
        // collide with copy 1's id 0.
        let _ = Trace::merged("bad", &[t.clone(), t], 5, 0);
    }

    #[test]
    fn from_workload_preserves_tasks() {
        let tasks = WorkloadParams {
            n_tasks: 10,
            ..WorkloadParams::default()
        }
        .generate();
        let trace = Trace::from_workload("w", &tasks);
        assert_eq!(trace.arrivals(), 10);
        for (e, t) in trace.events().iter().zip(&tasks) {
            assert_eq!(e.at, t.arrival);
            match e.event {
                TraceEvent::Arrival(a) => {
                    assert_eq!(a.id, t.id);
                    assert_eq!(a.duration, Some(t.duration));
                    assert_eq!(a.deadline, None);
                }
                _ => panic!("workload traces contain only arrivals"),
            }
        }
    }

    #[test]
    fn tiered_mix_spans_all_three_tiers_in_phase_order() {
        let trace = Scenario::TieredMix.trace(Part::Xcv50, 3);
        let tiers: Vec<QosTier> = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Arrival(a) => Some(a.tier),
                _ => None,
            })
            .collect();
        for t in QosTier::ALL {
            assert!(tiers.contains(&t), "mix must contain {t} arrivals");
        }
        // Batch leads, interactive trails: the crowd lands on an array
        // already held by the background tier.
        assert_eq!(tiers.first(), Some(&QosTier::Batch));
        assert_eq!(tiers.last(), Some(&QosTier::Interactive));
        // Every interactive arrival is deadline-bound; no batch one is.
        for e in trace.events() {
            if let TraceEvent::Arrival(a) = e.event {
                match a.tier {
                    QosTier::Interactive => assert!(a.deadline.is_some(), "{a}"),
                    _ => assert!(a.deadline.is_none(), "{a}"),
                }
            }
        }
    }

    #[test]
    fn adversarial_trace_has_departures_and_big_requests() {
        let trace = Scenario::AdversarialFragmenter.trace(Part::Xcv50, 3);
        let departures = trace
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Departure { .. }))
            .count();
        assert_eq!(departures, 4, "half of the 8 strips depart");
        let strip_w = 3;
        let biggest = trace
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Arrival(a) => Some(a.cols),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(biggest > strip_w, "big requests must exceed any single gap");
    }
}
