//! Service configuration: device, policies and the defrag trigger.

use rtm_core::cost::CostModel;
use rtm_fpga::part::Part;
use rtm_place::alloc::Strategy;
use rtm_sched::policy::{Policy, BOUNDARY_SCAN_US_PER_CLB};
use rtm_sched::task::Micros;
use std::fmt;

/// Order in which the wait queue is served.
///
/// Whatever the order, serving stops at the first request that cannot
/// be placed — a blocked head blocks the queue — so each variant is a
/// real scheduling discipline, not an opportunistic scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOrder {
    /// Arrival order (the [`Scheduler`](rtm_sched::Scheduler)'s
    /// behaviour): perfectly fair, but one big blocked request starves
    /// everything behind it.
    Fifo,
    /// Earliest start deadline first; deadline-free requests go last.
    /// Raises admission rates when deadlines are tight and varied.
    EarliestDeadline,
    /// Smallest area first: small requests slip into gaps a big blocked
    /// head would waste.
    SmallestArea,
}

impl QueueOrder {
    /// All orders, for sweeps.
    pub const ALL: [QueueOrder; 3] = [
        QueueOrder::Fifo,
        QueueOrder::EarliestDeadline,
        QueueOrder::SmallestArea,
    ];

    /// The order's name.
    pub fn name(&self) -> &'static str {
        match self {
            QueueOrder::Fifo => "fifo",
            QueueOrder::EarliestDeadline => "edf",
            QueueOrder::SmallestArea => "smallest-area",
        }
    }
}

impl fmt::Display for QueueOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`RuntimeService`](crate::RuntimeService).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The device the service manages.
    pub part: Part,
    /// Rearrangement policy applied at admission time (the `rtm-sched`
    /// vocabulary): under [`Policy::NoRearrange`] a request that does
    /// not fit as-is queues; the other policies let the manager move
    /// running functions to make room.
    pub policy: Policy,
    /// Allocation strategy for incoming functions.
    pub strategy: Strategy,
    /// Order in which the wait queue is served.
    pub queue_order: QueueOrder,
    /// Defragmentation trigger: when the fragmentation index exceeds
    /// this threshold after an event, the service runs a compaction
    /// cycle with live relocation (see
    /// [`RunTimeManager::defragment`](rtm_core::RunTimeManager::defragment)).
    /// Set above `1.0` to disable.
    pub frag_threshold: f64,
    /// Cost model used to price relocation traffic in the report.
    pub cost_model: CostModel,
    /// Per-CLB move cost (µs) used for simulated-time accounting of
    /// rearrangements and the halting-baseline comparison.
    pub us_per_clb: Micros,
    /// Seed for the per-arrival synthetic designs.
    pub design_seed: u64,
}

impl Default for ServiceConfig {
    /// XCV50, transparent relocation, best-fit, defrag above 0.5,
    /// paper-default (Boundary Scan, column-granular) costs.
    fn default() -> Self {
        ServiceConfig {
            part: Part::Xcv50,
            policy: Policy::TransparentReloc,
            strategy: Strategy::BestFit,
            queue_order: QueueOrder::Fifo,
            frag_threshold: 0.5,
            cost_model: CostModel::paper_default(),
            us_per_clb: BOUNDARY_SCAN_US_PER_CLB,
            design_seed: 0x5eed,
        }
    }
}

impl ServiceConfig {
    /// Replaces the device part.
    pub fn with_part(mut self, part: Part) -> Self {
        self.part = part;
        self
    }

    /// Replaces the rearrangement policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the allocation strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the queue-serving order.
    pub fn with_queue_order(mut self, order: QueueOrder) -> Self {
        self.queue_order = order;
        self
    }

    /// Replaces the defragmentation threshold.
    pub fn with_frag_threshold(mut self, threshold: f64) -> Self {
        self.frag_threshold = threshold;
        self
    }

    /// Replaces the per-CLB move cost (e.g. a SelectMAP-class port).
    pub fn with_move_cost(mut self, us_per_clb: Micros) -> Self {
        self.us_per_clb = us_per_clb;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = ServiceConfig::default()
            .with_part(Part::Xcv200)
            .with_policy(Policy::NoRearrange)
            .with_strategy(Strategy::FirstFit)
            .with_queue_order(QueueOrder::EarliestDeadline)
            .with_frag_threshold(0.8)
            .with_move_cost(100);
        assert_eq!(c.part, Part::Xcv200);
        assert_eq!(c.policy, Policy::NoRearrange);
        assert_eq!(c.strategy, Strategy::FirstFit);
        assert_eq!(c.queue_order, QueueOrder::EarliestDeadline);
        assert_eq!(c.frag_threshold, 0.8);
        assert_eq!(c.us_per_clb, 100);
    }

    #[test]
    fn queue_order_names() {
        assert_eq!(QueueOrder::ALL.len(), 3);
        assert_eq!(QueueOrder::Fifo.to_string(), "fifo");
        assert_eq!(QueueOrder::EarliestDeadline.to_string(), "edf");
        assert_eq!(QueueOrder::SmallestArea.to_string(), "smallest-area");
    }
}
