//! # rtm-service
//!
//! The runtime service loop: the layer that closes the paper's on-line
//! management story. `rtm-sched` simulates arrival/placement/departure
//! on pure area bookkeeping; `rtm-core`'s [`RunTimeManager`] executes
//! real loads and live relocations on the device model — this crate
//! connects the two. A [`RuntimeService`] replays a [`trace::Trace`]
//! (function arrivals with area/deadline, departures, residency
//! expirations) through an `rtm-sched` admission policy, translates
//! every admitted request into [`RunTimeManager::load`] /
//! [`RunTimeManager::unload`] calls on a real device, and triggers a
//! defragmentation cycle — ordered compaction executed with staged
//! dynamic relocation, the moved functions running throughout — when
//! [`FragMetrics`](rtm_place::frag::FragMetrics) crosses a configured
//! threshold. The outcome is a structured
//! [`report::ServiceReport`]: admissions, rejections, relocation
//! traffic, frames written, and the fragmentation timeline.
//!
//! This mirrors how the surrounding literature evaluates run-time
//! managers — QoS-driven allocation (Ullmann et al.) and prefetch
//! scheduling (Resano et al.) both replay arrival/departure traces
//! against the allocator rather than poking single calls.
//!
//! ## Example
//!
//! ```
//! use rtm_service::{QosTier, RuntimeService, ServiceConfig};
//! use rtm_service::trace::{Arrival, Trace, TraceEvent};
//!
//! // Two functions arrive; the first departs when its residency ends.
//! let mut trace = Trace::new("hello-service");
//! trace.push(0, TraceEvent::Arrival(Arrival {
//!     id: 0, rows: 6, cols: 6, duration: Some(200_000), deadline: None,
//!     tier: QosTier::Standard,
//! }));
//! trace.push(50_000, TraceEvent::Arrival(Arrival {
//!     id: 1, rows: 4, cols: 4, duration: None, deadline: None,
//!     tier: QosTier::Standard,
//! }));
//!
//! let mut service = RuntimeService::new(ServiceConfig::default());
//! let report = service.run(&trace).unwrap();
//! assert_eq!(report.admitted, 2);
//! assert_eq!(report.departures, 1);
//! assert_eq!(report.resident_at_end, 1, "the daemon stays loaded");
//! // The admitted functions are real: placed, routed, configured.
//! assert_eq!(service.manager().functions().count(), 1);
//! ```
//!
//! [`RunTimeManager`]: rtm_core::RunTimeManager
//! [`RunTimeManager::load`]: rtm_core::RunTimeManager::load
//! [`RunTimeManager::unload`]: rtm_core::RunTimeManager::unload

#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod service;
pub mod trace;

pub use config::{QueueOrder, ServiceConfig};
pub use report::{ServiceReport, TierCounts};
pub use rtm_sched::qos::QosTier;
pub use service::{
    AdmissionBid, BidProvenance, MigratingFunction, OfferOutcome, ReserveOutcome, RuntimeService,
    TicketOutcome,
};
pub use trace::{Scenario, Trace, TraceEvent};
