//! The defrag-trigger contract: driving the service past the
//! fragmentation threshold must start a relocation cycle that
//! *measurably reduces* `FragMetrics` — the paper's claim, observed on
//! the live device rather than on bookkeeping alone.

use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{QosTier, RuntimeService, ServiceConfig};

/// A deterministic comb: four full-height strips, then the odd two
/// depart, shattering the free space into separated gaps.
fn comb_trace() -> Trace {
    let mut trace = Trace::new("comb");
    for i in 0..4u64 {
        trace.push(
            i * 10_000,
            TraceEvent::Arrival(Arrival {
                id: i,
                rows: 16,
                cols: 6,
                duration: None,
                deadline: None,
                tier: QosTier::Standard,
            }),
        );
    }
    // Depart strips 0 and 2: free columns 0..6 and 12..18, occupied
    // strips at 6..12 and 18..24 — largest free rect is half the free
    // area, fragmentation index 0.5.
    trace.push(100_000, TraceEvent::Departure { id: 0 });
    trace.push(110_000, TraceEvent::Departure { id: 2 });
    trace
}

#[test]
fn threshold_crossing_triggers_defrag_that_reduces_fragmentation() {
    let config = ServiceConfig::default()
        .with_part(Part::Xcv50)
        .with_frag_threshold(0.4);
    let mut service = RuntimeService::new(config);
    let report = service.run(&comb_trace()).unwrap();

    assert!(
        report.defrag_cycles >= 1,
        "threshold must trigger: {report}"
    );
    for cycle in &report.defrags {
        assert!(
            cycle.before.exceeds(0.4),
            "cycle started above the threshold: {cycle:?}"
        );
        assert!(
            cycle.after.fragmentation() < cycle.before.fragmentation(),
            "a defrag cycle must reduce fragmentation: {cycle:?}"
        );
        assert!(cycle.moves > 0);
        assert!(cycle.frames > 0, "real configuration frames were written");
    }
    // The surviving strips were compacted into one block on the real
    // device: all free space is contiguous again.
    let final_frag = report.final_frag.unwrap();
    assert_eq!(final_frag.fragmentation(), 0.0, "{report}");
    assert_eq!(service.manager().functions().count(), 2);
    // Relocation traffic was accounted.
    assert!(report.cells_moved > 0);
    assert!(report.reconfig_ms > 0.0);
}

#[test]
fn high_threshold_never_defrags() {
    let config = ServiceConfig::default()
        .with_part(Part::Xcv50)
        .with_frag_threshold(2.0);
    let mut service = RuntimeService::new(config);
    let report = service.run(&comb_trace()).unwrap();
    assert_eq!(report.defrag_cycles, 0);
    assert!(report.final_frag.unwrap().fragmentation() > 0.0);
}

#[test]
fn adversarial_scenario_recovers_through_defrag() {
    let config = ServiceConfig::default()
        .with_part(Part::Xcv50)
        .with_frag_threshold(0.5);
    let mut service = RuntimeService::new(config);
    let trace = Scenario::AdversarialFragmenter.trace(Part::Xcv50, 5);
    let report = service.run(&trace).unwrap();

    assert_eq!(report.failures, 0, "{report}");
    assert!(
        report.peak_frag() > 0.5,
        "the comb must shatter free space: {report}"
    );
    assert!(
        report.defrag_cycles >= 1 || report.admitted > report.immediate,
        "recovery needs relocation (defrag or load-time rearrangement): {report}"
    );
    // The oversized requests were admitted — the whole point of
    // defragmentation.
    assert_eq!(
        report.admitted, report.submitted,
        "every request eventually admitted: {report}"
    );
    for cycle in &report.defrags {
        assert!(cycle.after.fragmentation() < cycle.before.fragmentation());
    }
}
