//! Queue-order contract: serving the wait queue deadline- or size-aware
//! must be able to beat FIFO admission rates — the reason `QueueOrder`
//! exists. FIFO's failure mode is head-of-line blocking: one request
//! that cannot be placed starves everything behind it until deadlines
//! expire.

use rtm_fpga::part::Part;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{QosTier, QueueOrder, RuntimeService, ServiceConfig};

fn run_with(order: QueueOrder, trace: &Trace) -> rtm_service::ServiceReport {
    let config = ServiceConfig::default()
        .with_part(Part::Xcv50)
        .with_queue_order(order);
    let mut service = RuntimeService::new(config);
    service.run(trace).unwrap()
}

/// Staggered bursty copies on one XCV50 — enough contention that the
/// queue stays populated with mixed deadline slacks. EDF admits
/// strictly more than FIFO on the pinned seed (the margin holds across
/// every seed 1..=14 at this load; one is pinned to keep the debug-mode
/// test time reasonable): FIFO serves the oldest request first even
/// when a tighter-deadline request behind it is about to expire.
#[test]
fn edf_beats_fifo_admission_rate_on_contended_bursty() {
    for seed in [14u64] {
        let copies: Vec<Trace> = (0..2)
            .map(|k| Scenario::Bursty.trace(Part::Xcv50, seed + 100 * k))
            .collect();
        let trace = Trace::merged("bursty-x2", &copies, 1 << 32, 150_000);

        let fifo = run_with(QueueOrder::Fifo, &trace);
        let edf = run_with(QueueOrder::EarliestDeadline, &trace);

        assert_eq!(fifo.submitted, edf.submitted, "same offered load");
        assert!(
            edf.admitted > fifo.admitted,
            "seed {seed}: EDF must beat FIFO under contention \
             (fifo {}/{}, edf {}/{})",
            fifo.admitted,
            fifo.submitted,
            edf.admitted,
            edf.submitted,
        );
        assert!(edf.admission_rate() > fifo.admission_rate());
        // Every request is accounted under both orders.
        for r in [&fifo, &edf] {
            assert_eq!(
                r.admitted + r.rejected_deadline + r.failures + r.cancelled + r.queued_at_end,
                r.submitted,
                "{r}"
            );
        }
    }
}

/// Deterministic head-of-line blocking: the device is full, a big
/// patient request arrives before a small deadline-bound one. FIFO lets
/// the big head consume the space that opens and the small request's
/// deadline expires; smallest-area-first slips the small one in, and the
/// big one still gets admitted once the small one departs — one extra
/// admission, nothing lost.
#[test]
fn smallest_area_first_fixes_head_of_line_blocking() {
    let mut trace = Trace::new("hol-blocking");
    let arr = |id, rows, cols, duration, deadline| {
        TraceEvent::Arrival(Arrival {
            id,
            rows,
            cols,
            duration,
            deadline,
            tier: QosTier::Standard,
        })
    };
    // Two daemons fill the 16x24 device; the second expires at t=50ms.
    trace.push(0, arr(0, 8, 24, None, None));
    trace.push(0, arr(1, 8, 24, Some(50_000), None));
    // A big patient request, then a small deadline-bound one.
    trace.push(10_000, arr(2, 8, 24, Some(300_000), None));
    trace.push(10_000, arr(3, 4, 4, Some(20_000), Some(80_000)));

    let fifo = run_with(QueueOrder::Fifo, &trace);
    assert_eq!(fifo.admitted, 3, "{fifo}");
    assert_eq!(fifo.rejected_deadline, 1, "the 4x4 starved: {fifo}");

    let saf = run_with(QueueOrder::SmallestArea, &trace);
    assert_eq!(saf.admitted, 4, "small first, then the big one: {saf}");
    assert_eq!(saf.rejected_deadline, 0, "{saf}");
    assert!(saf.admission_rate() > fifo.admission_rate());

    // The big request was only delayed, not displaced: it is admitted
    // when the small one departs at t=70ms.
    let big = saf.admissions.iter().find(|a| a.trace_id == 2).unwrap();
    assert_eq!(big.at, 70_000, "{saf}");
}
