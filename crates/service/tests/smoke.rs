//! End-to-end smoke tests of the runtime service loop.

use rtm_fpga::part::Part;
use rtm_sched::policy::Policy;
use rtm_service::trace::{Arrival, Scenario, Trace, TraceEvent};
use rtm_service::{QosTier, RuntimeService, ServiceConfig};

fn arrival(id: u64, rows: u16, cols: u16, duration: Option<u64>) -> TraceEvent {
    TraceEvent::Arrival(Arrival {
        id,
        rows,
        cols,
        duration,
        deadline: None,
        tier: QosTier::Standard,
    })
}

#[test]
fn lifecycle_admit_expire_depart() {
    let mut trace = Trace::new("lifecycle");
    trace.push(0, arrival(0, 6, 6, Some(300_000)));
    trace.push(100_000, arrival(1, 4, 8, None));
    trace.push(500_000, TraceEvent::Departure { id: 1 });
    let mut service = RuntimeService::new(ServiceConfig::default());
    let report = service.run(&trace).unwrap();
    assert_eq!(report.submitted, 2);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.immediate, 2, "an empty device fits everything");
    assert_eq!(report.departures, 2);
    assert_eq!(report.resident_at_end, 0);
    assert_eq!(service.manager().functions().count(), 0);
    // The device is fully cleaned after the last departure.
    let dev = service.manager().device();
    assert!(dev.used_in(dev.bounds()).is_empty());
    assert!(report.frag_timeline.len() >= 3, "one sample per event time");
}

#[test]
fn state_persists_across_runs() {
    let mut service = RuntimeService::new(ServiceConfig::default());
    let mut first = Trace::new("first");
    first.push(0, arrival(0, 6, 6, None));
    service.run(&first).unwrap();
    assert_eq!(service.manager().functions().count(), 1);

    // The daemon from the first trace is still resident; departing it in
    // a later trace works because the service remembers the mapping.
    let mut second = Trace::new("second");
    second.push(0, TraceEvent::Departure { id: 0 });
    let report = service.run(&second).unwrap();
    assert_eq!(report.departures, 1);
    assert_eq!(service.manager().functions().count(), 0);
}

#[test]
fn deadline_rejection_when_device_is_full() {
    let part = Part::Xcv50; // 16x24
    let mut trace = Trace::new("deadline");
    // A daemon fills the whole device…
    trace.push(0, arrival(0, 16, 24, None));
    // …so this deadline-bound request can never start in time.
    trace.push(
        10_000,
        TraceEvent::Arrival(Arrival {
            id: 1,
            rows: 8,
            cols: 8,
            duration: Some(100_000),
            deadline: Some(200_000),
            tier: QosTier::Standard,
        }),
    );
    // A later event gives the clock a chance to pass the deadline.
    trace.push(400_000, TraceEvent::Departure { id: 99 });
    let mut service = RuntimeService::new(ServiceConfig::default().with_part(part));
    let report = service.run(&trace).unwrap();
    assert_eq!(report.admitted, 1);
    assert_eq!(report.rejected_deadline, 1);
    assert_eq!(report.queued_at_end, 0);
}

#[test]
fn no_rearrange_policy_defers_what_transparent_admits() {
    let part = Part::Xcv50;
    // Four full-height strips fill the device; the outer pair departs,
    // leaving two separated 16x6 gaps: a 16x10 request fits only after
    // rearrangement.
    let mut trace = Trace::new("policy-split");
    for i in 0..4u64 {
        trace.push(i * 10_000, arrival(i, 16, 6, None));
    }
    trace.push(50_000, TraceEvent::Departure { id: 0 });
    trace.push(60_000, TraceEvent::Departure { id: 2 });
    trace.push(70_000, arrival(4, 16, 10, Some(100_000)));

    let strict = ServiceConfig::default()
        .with_part(part)
        .with_policy(Policy::NoRearrange)
        .with_frag_threshold(2.0); // defrag disabled
    let mut service = RuntimeService::new(strict);
    let report = service.run(&trace).unwrap();
    assert_eq!(
        report.queued_at_end, 1,
        "without rearrangement the big request starves: {report}"
    );

    let transparent = ServiceConfig::default()
        .with_part(part)
        .with_policy(Policy::TransparentReloc)
        .with_frag_threshold(2.0);
    let mut service = RuntimeService::new(transparent);
    let report = service.run(&trace).unwrap();
    assert_eq!(report.admitted, 5, "{report}");
    assert!(
        report.admitted - report.immediate >= 1,
        "the big request needed a rearrangement: {report}"
    );
    assert!(report.function_moves > 0);
    assert!(report.frames_written > 0, "real frames were written");
    assert!(report.reconfig_ms > 0.0);
}

#[test]
fn queued_cancellation_and_duplicate_ids_are_accounted() {
    let mut trace = Trace::new("cancel-dup");
    // A daemon fills the whole device…
    trace.push(0, arrival(0, 16, 24, None));
    // …so this request queues; it then departs before being admitted.
    trace.push(10_000, arrival(1, 8, 8, None));
    trace.push(20_000, TraceEvent::Departure { id: 1 });
    // An arrival reusing the resident daemon's id must be refused, not
    // silently orphan the daemon in the bookkeeping.
    trace.push(30_000, arrival(0, 4, 4, None));
    let mut service = RuntimeService::new(ServiceConfig::default());
    let report = service.run(&trace).unwrap();
    assert_eq!(report.submitted, 3);
    assert_eq!(report.admitted, 1);
    assert_eq!(report.cancelled, 1, "{report}");
    assert_eq!(report.failures, 1, "duplicate id refused: {report}");
    assert_eq!(
        report.admitted + report.cancelled + report.failures + report.queued_at_end,
        report.submitted,
        "every request accounted for: {report}"
    );
    assert_eq!(service.manager().functions().count(), 1, "daemon intact");
}

#[test]
fn deadline_request_waits_for_cheaper_plan_instead_of_dropping() {
    // Comb fragmentation: strips at cols 0-5, 6-11, 12-17, 18-23; the
    // outer pair departs, so a 16x10 request needs a 96-CLB move
    // (~2.17 s of Boundary Scan traffic) — far past its deadline. It
    // must *wait*, not be dropped: a later departure empties the plan
    // and it is admitted before the deadline.
    let mut trace = Trace::new("patient-deadline");
    for i in 0..4u64 {
        trace.push(i * 10_000, arrival(i, 16, 6, None));
    }
    trace.push(50_000, TraceEvent::Departure { id: 0 });
    trace.push(60_000, TraceEvent::Departure { id: 2 });
    trace.push(
        70_000,
        TraceEvent::Arrival(Arrival {
            id: 4,
            rows: 16,
            cols: 10,
            duration: Some(100_000),
            deadline: Some(570_000),
            tier: QosTier::Standard,
        }),
    );
    trace.push(200_000, TraceEvent::Departure { id: 1 });
    let config = ServiceConfig::default().with_frag_threshold(2.0); // defrag off
    let mut service = RuntimeService::new(config);
    let report = service.run(&trace).unwrap();
    assert_eq!(report.rejected_deadline, 0, "{report}");
    assert_eq!(report.admitted, 5, "{report}");
    let big = report
        .admissions
        .iter()
        .find(|r| r.trace_id == 4)
        .expect("big request admitted");
    assert_eq!(
        big.at, 200_000,
        "admitted at the departure that opened contiguous room"
    );
    assert!(big.waited > 0);
}

#[test]
fn stepping_api_admit_synchronizes_the_clock() {
    // The fleet drives shards through admit()/enqueue() directly; a
    // bid ahead of the shard's clock must advance it, or wait times
    // underflow and expiries are measured from a stale instant.
    let mut service = RuntimeService::new(ServiceConfig::default());
    let mut rep = rtm_service::ServiceReport::new("step");
    let outcome = service
        .admit(
            1_000_000,
            rtm_service::AdmissionBid::direct(Arrival {
                id: 0,
                rows: 4,
                cols: 4,
                duration: Some(100_000),
                deadline: None,
                tier: QosTier::Standard,
            }),
            &mut rep,
        )
        .unwrap();
    assert_eq!(outcome, rtm_service::OfferOutcome::Admitted);
    assert_eq!(service.now(), 1_000_000, "admit advanced the clock");
    assert_eq!(
        service.next_expiry(),
        Some(1_100_000),
        "residency measured from the bid's own time"
    );
}

#[test]
fn two_phase_reserve_then_execute_matches_admit() {
    // The decide step seats the ticket (arena reserved, request
    // accounted) but writes nothing; the execute step implements it;
    // resolve reports the fate. The one-shot `admit` is exactly this
    // pipeline run inline.
    let mut service = RuntimeService::new(ServiceConfig::default());
    let mut rep = rtm_service::ServiceReport::new("two-phase");
    let a = Arrival {
        id: 7,
        rows: 4,
        cols: 4,
        duration: None,
        deadline: None,
        tier: QosTier::Standard,
    };
    let decided = service
        .reserve(0, rtm_service::AdmissionBid::direct(a), &mut rep)
        .unwrap();
    assert_eq!(decided, rtm_service::ReserveOutcome::Reserved);
    assert_eq!(rep.submitted, 1, "accounted at decide time");
    assert_eq!(rep.admitted, 0, "nothing implemented yet");
    assert_eq!(service.pending_tickets(), 1);
    assert_eq!(service.resident_count(), 0);

    service.execute_reserved(&mut rep).unwrap();
    assert_eq!(service.pending_tickets(), 0);
    assert_eq!(rep.admitted, 1, "the execute phase implemented it");
    assert_eq!(service.resident_count(), 1);
    assert_eq!(
        service.resolve_ticket(7),
        Ok(rtm_service::TicketOutcome::Executed)
    );
    assert_eq!(
        service.resolve_ticket(7),
        Err(rtm_core::CoreError::UnknownTicket { trace_id: 7 }),
        "resolution is one-shot"
    );
}

#[test]
fn resolving_an_unknown_ticket_is_a_typed_error() {
    // An id that was never reserved (and one that was already
    // resolved) must fail loudly — a silent no-op here is a caller
    // losing track of the ticket lifecycle.
    let mut service = RuntimeService::new(ServiceConfig::default());
    assert_eq!(
        service.resolve_ticket(99),
        Err(rtm_core::CoreError::UnknownTicket { trace_id: 99 }),
        "never-reserved id"
    );
}

#[test]
fn bursty_and_churn_scenarios_run_clean() {
    for scenario in [Scenario::Bursty, Scenario::SteadyChurn] {
        let trace = scenario.trace(Part::Xcv50, 11);
        let mut service = RuntimeService::new(ServiceConfig::default());
        let report = service.run(&trace).unwrap();
        assert_eq!(report.trace_name, scenario.name());
        assert_eq!(report.failures, 0, "{scenario}: {report}");
        assert_eq!(
            report.admitted + report.rejected_deadline + report.queued_at_end,
            report.submitted,
            "every request accounted for ({scenario}): {report}"
        );
        assert_eq!(
            report.resident_at_end,
            report.admitted - report.departures,
            "{scenario}"
        );
        assert!(
            report.admission_rate() > 0.5,
            "{scenario} must admit most requests: {report}"
        );
        // The timeline is time-ordered.
        assert!(report.frag_timeline.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
