//! Cross-device migration at the manager level: extract → readmit
//! round-trips, checkpoint restores, stale-plan handling, and the
//! cached-defrag-plan regression pin.

use rtm_core::{CoreError, RunTimeManager};
use rtm_fpga::config::layout::{tile_bit_location, PIP_BITS_BASE};
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::{map_to_luts, MappedNetlist};

fn small_design(seed: u64) -> MappedNetlist {
    map_to_luts(&RandomCircuit::free_running(4, 10, seed).generate()).unwrap()
}

/// Readback equivalence modulo the relocation offset: every cell-config
/// and state bit of every tile of the migrated function's region reads
/// the same on the target (at the translated tile) as it did on the
/// source before the migration. PIP bits are excluded — the readmitted
/// nets are re-routed inside the new region, and foreign reservations
/// on the target may legitimately detour them.
fn assert_readback_equivalent(
    pre: &rtm_fpga::config::ConfigMemory,
    old_region: Rect,
    target: &RunTimeManager,
    new_region: Rect,
) {
    assert_eq!(
        (old_region.rows, old_region.cols),
        (new_region.rows, new_region.cols)
    );
    let dr = new_region.origin.row as i32 - old_region.origin.row as i32;
    let dc = new_region.origin.col as i32 - old_region.origin.col as i32;
    for old_tile in old_region.iter() {
        let new_tile = old_tile.offset(dr, dc).expect("translated tile on device");
        for k in 0..PIP_BITS_BASE {
            let (a_addr, a_bit) = tile_bit_location(old_tile, k);
            let (b_addr, b_bit) = tile_bit_location(new_tile, k);
            assert_eq!(
                pre.get_bit(a_addr, a_bit).unwrap(),
                target.device().config().get_bit(b_addr, b_bit).unwrap(),
                "bit {k} of {old_tile} != bit {k} of {new_tile} (offset {dr},{dc})"
            );
        }
    }
}

#[test]
fn extract_readmit_roundtrip_is_readback_equivalent_modulo_offset() {
    let mut src = RunTimeManager::new(Part::Xcv50);
    let mut dst = RunTimeManager::new(Part::Xcv50);
    // Occupy the target's top-left corner so the migrated function
    // lands at a non-trivial offset from its source position.
    let blocker = dst.load(&small_design(2), 16, 4, |_, _, _| {}).unwrap();
    let r = src.load(&small_design(1), 8, 8, |_, _, _| {}).unwrap();

    let plan = src
        .plan_migration(r.id, &dst)
        .expect("target can host the shape");
    assert!(src.migration_plan_valid(&plan));
    assert_eq!(plan.shape(), (8, 8));
    assert_eq!(plan.cells(), 64);
    assert!(plan.room().is_empty(), "the target has contiguous room");

    let extracted = src.extract_function(r.id).unwrap();
    assert_eq!(extracted.shape(), (8, 8));
    assert_eq!(extracted.region(), r.region);
    // The source is fully clean: no orphan arena state, no leftover
    // configuration, and the manager keeps working.
    assert_eq!(src.functions().count(), 0);
    assert_eq!(src.fragmentation().utilisation(), 0.0);
    assert!(src.device().used_in(src.device().bounds()).is_empty());
    assert!(src.bookkeeping_consistent());
    src.defragment(|_, _, _| {}).unwrap();

    let lr = dst.readmit_function(&extracted, &plan.room().clone(), |_, _, _| {});
    let lr = lr.unwrap();
    assert_eq!((lr.region.rows, lr.region.cols), (8, 8));
    assert_ne!(
        lr.region.origin,
        extracted.region().origin,
        "the blocker forces a real relocation offset"
    );
    assert!(dst.bookkeeping_consistent());
    assert_eq!(dst.functions().count(), 2);
    assert_readback_equivalent(extracted.pre_config(), extracted.region(), &dst, lr.region);
    // Both residents are real functions: unload them cleanly.
    dst.unload(lr.id).unwrap();
    dst.unload(blocker.id).unwrap();
    assert!(dst.device().used_in(dst.device().bounds()).is_empty());
}

#[test]
fn restore_from_checkpoint_is_frame_exact() {
    let mut mgr = RunTimeManager::new(Part::Xcv50);
    let a = mgr.load(&small_design(3), 16, 6, |_, _, _| {}).unwrap();
    let b = mgr.load(&small_design(4), 8, 8, |_, _, _| {}).unwrap();
    let frag_before = mgr.fragmentation();

    let extracted = mgr.extract_function(a.id).unwrap();
    assert_eq!(mgr.functions().count(), 1);
    // The failed-migration path: put it back from the checkpoint.
    let new_id = mgr.restore_function(&extracted).unwrap();
    assert_ne!(new_id, a.id, "restore reinstates under a fresh id");
    assert_eq!(mgr.functions().count(), 2);
    assert!(mgr.bookkeeping_consistent());
    assert_eq!(mgr.fragmentation(), frag_before);
    // Frame-exact: the device configuration equals the pre-extraction
    // snapshot bit for bit.
    assert!(mgr
        .device()
        .config()
        .diff_frames(extracted.pre_config())
        .is_empty());
    // The restored function is fully alive: relocate and unload it.
    let to = Rect::new(ClbCoord::new(0, 18), 16, 6);
    mgr.relocate_function(new_id, to, |_, _, _| {}).unwrap();
    mgr.unload(new_id).unwrap();
    mgr.unload(b.id).unwrap();
    assert!(mgr.device().used_in(mgr.device().bounds()).is_empty());
}

#[test]
fn restore_refuses_a_stale_checkpoint() {
    let mut mgr = RunTimeManager::new(Part::Xcv50);
    let a = mgr.load(&small_design(5), 8, 8, |_, _, _| {}).unwrap();
    let extracted = mgr.extract_function(a.id).unwrap();
    // The device mutated since the extraction: the checkpoint no
    // longer composes with the current state and must be refused.
    let c = mgr.load(&small_design(6), 4, 4, |_, _, _| {}).unwrap();
    let err = mgr.restore_function(&extracted).unwrap_err();
    assert!(matches!(err, CoreError::DesignMismatch { .. }), "{err}");
    // Nothing was touched by the refusal.
    assert_eq!(mgr.functions().count(), 1);
    assert!(mgr.bookkeeping_consistent());
    mgr.unload(c.id).unwrap();
}

#[test]
fn stale_migration_plans_are_detected_not_executed() {
    let mut src = RunTimeManager::new(Part::Xcv50);
    let dst = RunTimeManager::new(Part::Xcv50);
    let r = src.load(&small_design(7), 8, 8, |_, _, _| {}).unwrap();
    let plan = src.plan_migration(r.id, &dst).unwrap();
    assert!(src.migration_plan_valid(&plan));
    // Any source mutation stales the plan: its geometry (and the
    // room plan computed for it) describe a layout that is gone.
    src.load(&small_design(8), 4, 4, |_, _, _| {}).unwrap();
    assert!(!src.migration_plan_valid(&plan));
    // A departed function stales it too, shape check included.
    let plan2 = src.plan_migration(r.id, &dst).unwrap();
    src.unload(r.id).unwrap();
    assert!(!src.migration_plan_valid(&plan2));
    // Unknown ids and impossible targets never plan at all.
    assert!(src.plan_migration(999, &dst).is_none());
    let tiny = RunTimeManager::new(Part::Xcv50);
    let big = {
        let mut m = RunTimeManager::new(Part::Xcv200);
        let lr = m.load(&small_design(9), 20, 30, |_, _, _| {}).unwrap();
        (m, lr.id)
    };
    assert!(
        big.0.plan_migration(big.1, &tiny).is_none(),
        "a 20x30 function cannot migrate onto a 16x24 device"
    );
}

#[test]
fn stale_room_plan_on_the_target_is_replanned_on_readmit() {
    let mut src = RunTimeManager::new(Part::Xcv50);
    let mut dst = RunTimeManager::new(Part::Xcv50);
    let r = src.load(&small_design(10), 8, 8, |_, _, _| {}).unwrap();
    let plan = src.plan_migration(r.id, &dst).unwrap();
    // The target mutates between planning and execution: the room
    // plan's epoch stamp no longer matches.
    let filler = dst.load(&small_design(11), 4, 4, |_, _, _| {}).unwrap();
    let extracted = src.extract_function(r.id).unwrap();
    let base = dst.plan_stats();
    let lr = dst
        .readmit_function(&extracted, plan.room(), |_, _, _| {})
        .unwrap();
    let delta = dst.plan_stats().delta_since(base);
    assert_eq!(delta.plans_invalidated, 1, "stale stamp detected");
    assert_eq!(delta.plans_reused, 0);
    assert_eq!(delta.make_room_calls, 1, "re-planned once, then executed");
    assert!(dst.bookkeeping_consistent());
    dst.unload(lr.id).unwrap();
    dst.unload(filler.id).unwrap();
}

/// The cached-DefragPlan satellite: ranking devices by predicted gain
/// already plans the cycle, so executing the cached plan afterwards
/// must add **zero** compaction planning passes — `compaction_plans`
/// stays flat between the gain query and the executed cycle.
#[test]
fn fleet_trigger_cycle_is_plan_free_end_to_end() {
    let mut mgr = RunTimeManager::new(Part::Xcv50);
    let a = mgr.load(&small_design(12), 16, 6, |_, _, _| {}).unwrap();
    let b = mgr.load(&small_design(13), 16, 6, |_, _, _| {}).unwrap();
    mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
        .unwrap();
    mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
        .unwrap();

    let base = mgr.plan_stats();
    let gain = mgr.predicted_defrag_gain();
    assert!(gain > 0.0, "the stranded layout must be repairable");
    let plan = mgr.cached_defrag_plan();
    assert!(plan.is_worthwhile());
    let after_planning = mgr.plan_stats().delta_since(base);
    assert_eq!(
        after_planning.compaction_plans, 1,
        "gain query and cached plan share one planning pass"
    );

    let report = mgr.defragment_with_plan(&plan, |_, _, _| {}).unwrap();
    assert_eq!(report.after.fragmentation(), 0.0);
    let total = mgr.plan_stats().delta_since(base);
    assert_eq!(
        total.compaction_plans, 1,
        "executing the cached plan re-plans nothing: flat compaction_plans"
    );
    assert_eq!(total.plans_reused, 1);
}
