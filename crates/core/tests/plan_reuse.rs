//! Plan/execute coherence for the plan-reuse admission pipeline.
//!
//! The fleet's frag-aware router decides *where* a function goes based
//! on [`RunTimeManager::preview_admission`]'s predicted post-placement
//! metrics, then executes the preview's plan via
//! [`RunTimeManager::load_with_plan`]. That decision is only sound if
//! the prediction is exact: these tests pin that the observed
//! [`FragMetrics`] after executing a previewed plan equal the preview
//! — over randomized load/unload histories — and that a plan whose
//! epoch stamp went stale is re-planned, never executed.

use proptest::prelude::*;
use rtm_core::RunTimeManager;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::{map_to_luts, MappedNetlist};

/// A small synthetic design sized for an `rows`x`cols` request, the
/// same way the runtime service synthesizes per-arrival designs.
fn design_for(rows: u16, cols: u16, seed: u64) -> MappedNetlist {
    let area = rows as u32 * cols as u32;
    let gates = (area / 8).clamp(4, 16) as usize;
    let ffs = (area / 48).clamp(2, 4) as usize;
    map_to_luts(&RandomCircuit::free_running(ffs, gates, seed).generate()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever load/unload history the device went through, the
    /// metrics `preview_admission` predicts are exactly the metrics
    /// `load_with_plan` leaves behind when it executes that plan.
    #[test]
    fn preview_metrics_match_load_with_plan_execution(
        shapes in proptest::collection::vec((4u16..=16, 4u16..=12), 1..4),
        unload_mask in proptest::collection::vec(any::<bool>(), 3..4),
        req_rows in 4u16..=16,
        req_cols in 4u16..=12,
    ) {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let mut loaded = Vec::new();
        for (k, (rows, cols)) in shapes.iter().enumerate() {
            let d = design_for(*rows, *cols, 77 + k as u64);
            if let Ok(lr) = mgr.load(&d, *rows, *cols, |_, _, _| {}) {
                loaded.push(lr.id);
            }
        }
        for (k, id) in loaded.iter().enumerate() {
            if unload_mask.get(k).copied().unwrap_or(false) {
                mgr.unload(*id).unwrap();
            }
        }

        // `None` = even compaction cannot make room: nothing to check.
        if let Some(preview) = mgr.preview_admission(req_rows, req_cols) {
            prop_assert_eq!(preview.plan.epoch(), mgr.epoch());
            let base = mgr.plan_stats();
            let d = design_for(req_rows, req_cols, 4242);
            // A placement/routing failure rolls the device back; the
            // prediction contract only covers successful loads.
            if let Ok(lr) =
                mgr.load_with_plan(&d, req_rows, req_cols, &preview.plan, |_, _, _| {})
            {
                prop_assert_eq!(lr.moves.as_slice(), preview.moves(),
                    "the load executed exactly the previewed plan");
                prop_assert_eq!(lr.region, preview.region,
                    "same allocator state, same region");
                prop_assert_eq!(mgr.fragmentation(), preview.after,
                    "plan/execute coherence: predicted metrics are observed metrics");
                let delta = mgr.plan_stats().delta_since(base);
                prop_assert_eq!(delta.plans_reused, 1);
                prop_assert_eq!(delta.make_room_calls, 0,
                    "a valid plan admits with zero planning passes");
            }
        }
    }
}

/// A stale plan — its epoch stamp predates an interleaved mutation —
/// must be detected and re-planned, not executed: executing it would
/// replay moves against a layout that no longer exists.
#[test]
fn interleaved_unload_invalidates_the_previewed_plan() {
    let mut mgr = RunTimeManager::new(Part::Xcv50);
    // A 16x6 function stranded mid-device forces a non-empty plan for a
    // 16x12 request.
    let blocker = design_for(16, 6, 7);
    let r = mgr.load(&blocker, 16, 6, |_, _, _| {}).unwrap();
    mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
        .unwrap();
    let preview = mgr.preview_admission(16, 12).expect("satisfiable");
    assert!(
        !preview.moves().is_empty(),
        "the stranded function must move"
    );

    // Interleaved departure: the planned move now names a function that
    // is gone.
    mgr.unload(r.id).unwrap();
    assert_ne!(preview.plan.epoch(), mgr.epoch(), "epoch moved");

    let base = mgr.plan_stats();
    let d = design_for(16, 12, 11);
    let lr = mgr
        .load_with_plan(&d, 16, 12, &preview.plan, |_, _, _| {})
        .expect("re-planned load succeeds on the empty device");
    let delta = mgr.plan_stats().delta_since(base);
    assert_eq!(delta.plans_invalidated, 1, "staleness detected");
    assert_eq!(delta.plans_reused, 0, "the stale plan was NOT executed");
    assert_eq!(delta.make_room_calls, 1, "exactly one fallback re-plan");
    assert!(
        lr.moves.is_empty(),
        "the fresh plan needs no moves on an empty device — executing \
         the stale one would have relocated a departed function"
    );
}
