//! Crate-level smoke tests for the run-time manager.

use rtm_core::manager::RunTimeManager;
use rtm_fpga::part::Part;
use rtm_netlist::itc99::{self, Variant};
use rtm_netlist::techmap::map_to_luts;

#[test]
fn manager_loads_runs_and_unloads_b01() {
    let netlist = itc99::generate(itc99::profile("b01").unwrap(), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut mgr = RunTimeManager::new(Part::Xcv200);
    let report = mgr.load(&mapped, 12, 12, |_, _, _| {}).unwrap();
    assert_eq!(report.region.area(), 144);
    assert_eq!(mgr.functions().count(), 1);
    assert!(mgr.fragmentation().free_cells < 28 * 42);
    mgr.unload(report.id).unwrap();
    assert_eq!(mgr.functions().count(), 0);
}

#[test]
fn device_always_matches_last_checkpoint_after_manager_ops() {
    // Every public mutation (load/unload) checkpoints on completion, so
    // recovery of an undisturbed manager must be a no-op.
    let netlist = itc99::generate(itc99::profile("b02").unwrap(), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut mgr = RunTimeManager::new(Part::Xcv200);
    let report = mgr.load(&mapped, 10, 10, |_, _, _| {}).unwrap();
    assert_eq!(
        mgr.recover().unwrap(),
        0,
        "clean manager needs no recovery frames"
    );
    mgr.unload(report.id).unwrap();
    assert_eq!(mgr.recover().unwrap(), 0);
}
