//! # rtm-core
//!
//! The paper's contribution: **dynamic relocation** of live logic on a
//! partially reconfigurable FPGA, and the run-time manager built on it.
//!
//! > "A new concept is introduced — dynamic relocation — which enables
//! > the relocation of each FPGA CLB and of its associated
//! > interconnections, even if the CLB is part of a function that is
//! > actually being used by an application." (Gericota et al., DATE 2003)
//!
//! The crate provides:
//!
//! * [`relocation`] — the two-phase CLB relocation procedure (Fig. 2),
//!   the auxiliary relocation circuit and state-transfer protocol for
//!   gated-clock and asynchronous cells (Fig. 3/4), and two-phase routing
//!   relocation (Fig. 5), all executed as ordinary device edits whose
//!   transparency is *observed*, not assumed;
//! * [`cost`] — the reconfiguration cost model (frames → interface bits →
//!   wall time) that reproduces the paper's 22.6 ms Boundary Scan figure;
//! * [`verify`] — the transparency harness: a lock-step golden/device
//!   comparison clocked through every relocation step;
//! * [`manager`] — the FPGA rearrangement & programming tool's engine
//!   (§4): on-line allocation, rearrangement planning, staged execution
//!   via dynamic relocation, and configuration recovery;
//! * a CLI binary `frpt` exposing the manager (the Fig. 7 tool, sans GUI).
//!
//! ## Example: relocate a live CLB cell and prove nobody noticed
//!
//! ```
//! use rtm_fpga::{Device, part::Part, geom::{ClbCoord, Rect}};
//! use rtm_netlist::{random::RandomCircuit, techmap::map_to_luts};
//! use rtm_sim::design::implement;
//! use rtm_core::verify::TransparencyHarness;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = RandomCircuit::free_running(4, 12, 1).generate();
//! let mapped = map_to_luts(&netlist)?;
//! let mut dev = Device::new(Part::Xcv200);
//! let region = Rect::new(ClbCoord::new(4, 4), 8, 8);
//! let placed = implement(&mut dev, &mapped, region)?;
//!
//! let mut harness = TransparencyHarness::new(&netlist, dev, placed);
//! harness.run_cycles(20)?;                       // application running…
//! let src = harness.placed().cell_loc(0);
//! let dst = (ClbCoord::new(14, 14), 0);
//! let report = harness.relocate_cell(src, dst)?; // …while we move a CLB
//! harness.run_cycles(20)?;
//! assert!(harness.transparent(), "no glitch, no state loss, no divergence");
//! assert!(report.frames_total() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod manager;
pub mod relocation;
pub mod verify;

pub use error::{CoreError, LoadFailureReason};
pub use manager::{
    AdmissionPreview, AdmissionTicket, DefragPlan, DefragReport, DeviceSummary, ExtractedFunction,
    FunctionId, LoadReport, LoadedFunction, ManagerStatus, MigrationPlan, PlanStats, RoomPlan,
    RunTimeManager,
};
pub use relocation::{RelocationClass, RelocationReport, StepKind};
