//! `frpt` — the FPGA Rearrangement and Programming Tool (paper §4,
//! Fig. 7, CLI edition).
//!
//! A command-driven front end over [`rtm_core::manager::RunTimeManager`]:
//! loads synthetic benchmark functions, relocates CLBs and whole
//! functions at run time, defragments the array, and reports
//! fragmentation and relocation costs. Accepts either co-ordinates
//! ("source and destination of the CLB to be relocated") or scripted
//! commands, mirroring the tool's two input modes.
//!
//! ```text
//! USAGE
//!   frpt [--part XCV200] [--trace <out.jsonl>] <script.frpt>
//!   frpt [--part XCV200] -e "load b01 10x10; status; defrag; status"
//!
//! COMMANDS
//!   load <b01..b13|rand:<ffs>x<gates>> <ROWSxCOLS>   load a function
//!   unload <id>                                      remove a function
//!   move <id> <ROW,COL>                              relocate a function
//!   reloc <id> <R,C,CELL> <R,C,CELL>                 relocate one cell
//!   defrag                                           full compaction
//!   status                                           manager summary
//!   recover                                          restore checkpoint
//! ```

use rtm_core::cost::CostModel;
use rtm_core::manager::{FunctionId, RunTimeManager};
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_netlist::itc99;
use rtm_netlist::random::RandomCircuit;
use rtm_netlist::techmap::map_to_luts;
use rtm_obs::{to_jsonl_stream, EventBuffer, EventKind, EventSink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("frpt: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut part = Part::Xcv200;
    let mut script: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--part" => {
                i += 1;
                let name = args.get(i).ok_or("--part needs a value")?;
                part = parse_part(name)?;
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).ok_or("--trace needs a path")?.clone());
            }
            "-e" => {
                i += 1;
                script = Some(args.get(i).ok_or("-e needs a command string")?.clone());
            }
            "-h" | "--help" => {
                println!("{}", HELP);
                return Ok(());
            }
            path => {
                script = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
        }
        i += 1;
    }
    let script = script.ok_or("no script given; try --help")?;

    let mut mgr = RunTimeManager::new(part);
    let cost_model = CostModel::paper_default();
    // The manager has no simulated clock, so the trace stamps events
    // with the 1-based command ordinal instead — still deterministic,
    // still wall-clock-free.
    let events = trace_path.as_ref().map(|_| EventBuffer::new(0));
    let mut op: u64 = 0;
    println!(
        "frpt: device {part} ({}x{} CLBs)",
        part.clb_rows(),
        part.clb_cols()
    );

    for raw in script.split([';', '\n']) {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        op += 1;
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "load" => cmd_load(&mut mgr, &words, events.as_ref(), op)?,
            "unload" => {
                let id = parse_id(&words, 1)?;
                mgr.unload(id).map_err(|e| e.to_string())?;
                if let Some(b) = &events {
                    b.emit(op, EventKind::Unload { id });
                }
                println!("unloaded function {id}");
            }
            "move" => cmd_move(&mut mgr, &cost_model, &words)?,
            "reloc" => cmd_reloc(&mut mgr, &cost_model, &words)?,
            "defrag" => cmd_defrag(&mut mgr, &cost_model, events.as_ref(), op)?,
            "status" => {
                println!("{}", mgr.status());
                println!("planning: {}", mgr.plan_stats());
            }
            "recover" => {
                let n = mgr.recover().map_err(|e| e.to_string())?;
                println!("recovered {n} frames from checkpoint");
            }
            other => return Err(format!("unknown command `{other}` in: {line}")),
        }
    }
    if let (Some(path), Some(b)) = (&trace_path, &events) {
        let stream = b.take();
        std::fs::write(path, to_jsonl_stream(&stream))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: wrote {} events to {path}", stream.len());
    }
    Ok(())
}

fn cmd_load(
    mgr: &mut RunTimeManager,
    words: &[&str],
    events: Option<&EventBuffer>,
    at: u64,
) -> Result<(), String> {
    let circuit = words.get(1).ok_or("load: missing circuit")?;
    let shape = words.get(2).ok_or("load: missing ROWSxCOLS")?;
    let (rows, cols) = parse_shape(shape)?;
    let netlist = if let Some(spec) = circuit.strip_prefix("rand:") {
        let (ffs, gates) = parse_shape(spec)?;
        RandomCircuit::free_running(ffs as usize, gates as usize, 42).generate()
    } else {
        let profile =
            itc99::profile(circuit).ok_or_else(|| format!("unknown circuit {circuit}"))?;
        itc99::generate(profile, itc99::Variant::FreeRunning)
    };
    let mapped = map_to_luts(&netlist).map_err(|e| e.to_string())?;
    let report = mgr
        .load(&mapped, rows, cols, |_, _, _| {})
        // The attributed reason (no-free-slots vs unroutable) is the
        // routing-failure autopsy: area pressure and wiring congestion
        // call for different fixes.
        .map_err(|e| format!("load failed [{}]: {e}", e.load_failure_reason()))?;
    if let Some(b) = events {
        b.emit(
            at,
            EventKind::Load {
                id: report.id,
                frames: report.frames_total(),
            },
        );
    }
    println!(
        "loaded {} as function {} at {} ({} cells){}",
        circuit,
        report.id,
        report.region,
        mapped.len(),
        if report.moves.is_empty() {
            String::new()
        } else {
            format!(" after {} rearrangement moves", report.moves.len())
        }
    );
    Ok(())
}

fn cmd_move(
    mgr: &mut RunTimeManager,
    cost_model: &CostModel,
    words: &[&str],
) -> Result<(), String> {
    let id = parse_id(words, 1)?;
    let coord = parse_coord(words.get(2).copied().ok_or("move: missing ROW,COL")?)?;
    let region = mgr
        .function(id)
        .ok_or_else(|| format!("unknown function {id}"))?
        .region;
    let to = Rect::new(coord, region.rows, region.cols);
    let reports = mgr
        .relocate_function(id, to, |_, _, _| {})
        .map_err(|e| e.to_string())?;
    let total_ms: f64 = reports
        .iter()
        .map(|r| cost_model.relocation_cost(mgr.device().part(), r).millis())
        .sum();
    println!(
        "moved function {id} to {to}: {} cell relocations, {:.1} ms via {}",
        reports.len(),
        total_ms,
        cost_model.interface,
    );
    Ok(())
}

/// `reloc <id> <srcR,srcC,cell> <dstR,dstC,cell>` — the paper's
/// coordinate-pair input mode: relocate one CLB cell of a function.
fn cmd_reloc(
    mgr: &mut RunTimeManager,
    cost_model: &CostModel,
    words: &[&str],
) -> Result<(), String> {
    let id = parse_id(words, 1)?;
    let src = parse_cell_loc(
        words
            .get(2)
            .copied()
            .ok_or("reloc: missing source R,C,cell")?,
    )?;
    let dst = parse_cell_loc(
        words
            .get(3)
            .copied()
            .ok_or("reloc: missing dest R,C,cell")?,
    )?;
    let report = mgr
        .relocate_cell_of(id, src, dst, |_, _, _| {})
        .map_err(|e| e.to_string())?;
    let cost = cost_model.relocation_cost(mgr.device().part(), &report);
    println!("{report}; cost {cost}");
    Ok(())
}

fn cmd_defrag(
    mgr: &mut RunTimeManager,
    cost_model: &CostModel,
    events: Option<&EventBuffer>,
    at: u64,
) -> Result<(), String> {
    // The manager plans the compaction and refuses cycles whose
    // predicted improvement is zero — no relocation traffic for a
    // fragmentation index that would not move.
    let report = mgr.defragment(|_, _, _| {}).map_err(|e| e.to_string())?;
    if report.moves.is_empty() {
        println!(
            "defrag: nothing to do (fragmentation {:.3}; compaction would not improve it)",
            report.before.fragmentation()
        );
        return Ok(());
    }
    if let Some(b) = events {
        b.emit(
            at,
            EventKind::DefragCycle {
                before: report.before,
                after: report.after,
                moves: report.moves.len(),
            },
        );
    }
    let total_ms: f64 = report
        .relocations
        .iter()
        .map(|r| cost_model.relocation_cost(mgr.device().part(), r).millis())
        .sum();
    println!(
        "defrag: {} function moves, {:.1} ms; fragmentation {:.3} -> {:.3}",
        report.moves.len(),
        total_ms,
        report.before.fragmentation(),
        report.after.fragmentation()
    );
    Ok(())
}

fn parse_part(name: &str) -> Result<Part, String> {
    Part::ALL
        .iter()
        .find(|p| p.to_string().eq_ignore_ascii_case(name))
        .copied()
        .ok_or_else(|| format!("unknown part {name}"))
}

fn parse_shape(s: &str) -> Result<(u16, u16), String> {
    let (a, b) = s
        .split_once('x')
        .ok_or_else(|| format!("bad shape {s}, want AxB"))?;
    Ok((
        a.parse().map_err(|_| format!("bad number {a}"))?,
        b.parse().map_err(|_| format!("bad number {b}"))?,
    ))
}

fn parse_coord(s: &str) -> Result<ClbCoord, String> {
    let (r, c) = s
        .split_once(',')
        .ok_or_else(|| format!("bad coordinate {s}, want R,C"))?;
    Ok(ClbCoord::new(
        r.parse().map_err(|_| format!("bad number {r}"))?,
        c.parse().map_err(|_| format!("bad number {c}"))?,
    ))
}

fn parse_cell_loc(s: &str) -> Result<(ClbCoord, usize), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("bad cell location {s}, want R,C,CELL"));
    }
    let r: u16 = parts[0]
        .parse()
        .map_err(|_| format!("bad number {}", parts[0]))?;
    let c: u16 = parts[1]
        .parse()
        .map_err(|_| format!("bad number {}", parts[1]))?;
    let cell: usize = parts[2]
        .parse()
        .map_err(|_| format!("bad number {}", parts[2]))?;
    Ok((ClbCoord::new(r, c), cell))
}

fn parse_id(words: &[&str], idx: usize) -> Result<FunctionId, String> {
    words
        .get(idx)
        .ok_or("missing function id")?
        .parse()
        .map_err(|_| "bad function id".to_string())
}

const HELP: &str = "frpt — FPGA Rearrangement and Programming Tool (DATE 2003 reproduction)

USAGE
  frpt [--part XCV200] [--trace <out.jsonl>] <script.frpt>
  frpt [--part XCV200] -e \"load b01 10x10; status; defrag; status\"

OPTIONS
  --trace <out.jsonl>   export load/unload/defrag events as JSONL
                        (stamped with the command ordinal — the tool
                        has no simulated clock)

COMMANDS (separated by ';' or newlines; '#' starts a comment)
  load <b01..b13|rand:FFSxGATES> <ROWSxCOLS>
  unload <id>
  move <id> <ROW,COL>
  reloc <id> <R,C,CELL> <R,C,CELL>
  defrag
  status
  recover";
