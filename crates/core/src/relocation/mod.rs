//! Dynamic relocation: the paper's §2 and §3 procedures.

mod engine;
mod plan;
mod routing;

pub use engine::{
    relocate_cell, relocate_cell_staged, RelocationOptions, RelocationReport, StepObserver,
    StepRecord,
};
pub use plan::{find_aux_sites, free_slot, RelocationClass, StepKind};
pub use routing::{relocate_sink_path, RoutingRelocationReport};
