//! The dynamic CLB relocation engine: Fig. 2 (two-phase), Fig. 3
//! (auxiliary relocation circuit) and Fig. 4 (procedure flow) as
//! executable device edits.
//!
//! Every procedure step is an ordinary set of configuration-memory
//! writes; the engine snapshots the configuration around each step so the
//! report carries the exact frame traffic (the input to the cost model),
//! and an observer callback is invoked after each step so a harness can
//! keep the system clocking — the relocation happens *while the circuit
//! runs*, which is the paper's whole point.

use crate::error::CoreError;
use crate::relocation::plan::{find_aux_sites, free_slot, RelocationClass, StepKind};
use rtm_fpga::cell::LogicCell;
use rtm_fpga::config::FrameAddress;
use rtm_fpga::geom::Rect;
use rtm_fpga::lut::Lut;
use rtm_fpga::storage::{ClockingClass, StorageKind};
use rtm_fpga::Device;
use rtm_sim::design::PlacedDesign;
use rtm_sim::place::CellLoc;
use rtm_sim::route::NetId;
use std::fmt;

/// Options controlling a relocation.
#[derive(Debug, Clone, Default)]
pub struct RelocationOptions {
    /// Restrict replica/auxiliary routing to this region (default: whole
    /// device).
    pub within: Option<Rect>,
    /// Ablation switch: skip the auxiliary relocation circuit even for
    /// gated-clock/asynchronous cells. The paper predicts (and the
    /// transparency harness observes) state loss when the clock enable is
    /// idle during the move.
    pub skip_aux: bool,
}

/// One executed procedure step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Which step of Fig. 4 this was.
    pub step: StepKind,
    /// Configuration frames whose contents changed in this step.
    pub frames: Vec<FrameAddress>,
    /// Clock cycles the system must run before the next step.
    pub wait_cycles: u32,
}

/// Observer invoked after each step (used by the verification harness to
/// keep the application clocking between reconfigurations). Receives the
/// design so observation points (feeds, output taps) can be refreshed.
pub type StepObserver<'a> = dyn FnMut(&Device, &PlacedDesign, &StepRecord) + 'a;

/// The outcome of one cell relocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelocationReport {
    /// The procedure class executed.
    pub class: RelocationClass,
    /// Source slot.
    pub src: CellLoc,
    /// Destination slot.
    pub dst: CellLoc,
    /// Auxiliary circuit slots used (empty for two-phase-only classes).
    pub aux_sites: Vec<CellLoc>,
    /// The executed steps with their frame traffic.
    pub steps: Vec<StepRecord>,
}

impl RelocationReport {
    /// Total frame writes across all steps.
    pub fn frames_total(&self) -> usize {
        self.steps.iter().map(|s| s.frames.len()).sum()
    }

    /// Distinct configuration columns touched by any step.
    pub fn columns_touched(&self) -> Vec<u16> {
        let mut cols: Vec<u16> = self
            .steps
            .iter()
            .flat_map(|s| s.frames.iter())
            .filter(|f| f.block == rtm_fpga::config::BlockType::Clb)
            .map(|f| f.major)
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }

    /// Total wait cycles the procedure imposed (time the system kept
    /// running normally — not overhead).
    pub fn wait_cycles_total(&self) -> u32 {
        self.steps.iter().map(|s| s.wait_cycles).sum()
    }
}

impl fmt::Display for RelocationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} relocation {}/{} -> {}/{}: {} steps, {} frames, {} columns",
            self.class,
            self.src.0,
            self.src.1,
            self.dst.0,
            self.dst.1,
            self.steps.len(),
            self.frames_total(),
            self.columns_touched().len(),
        )
    }
}

/// Where the moved cell lives in the design's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DesignSlot {
    Cell(usize),
    Feed(usize),
    Tap(usize),
}

/// Relocates the live logic cell at `src` to the free slot `dst`,
/// executing the procedure appropriate to the cell's clocking class and
/// invoking `observer` after every step.
///
/// On success the design's placement and net tables are updated; the
/// source slot is unconfigured and all its routing released.
///
/// # Errors
///
/// * [`CoreError::SourceUnused`] / [`CoreError::DestinationBusy`] for bad
///   endpoints;
/// * [`CoreError::RamRelocationUnsupported`] for LUT/RAM cells and
///   [`CoreError::RamColumnHazard`] if any rewritten column holds RAM
///   (paper §2);
/// * [`CoreError::NoAuxiliarySite`] if the gated/async procedure finds no
///   free cells for the auxiliary circuit;
/// * routing errors if the replica cannot be connected.
pub fn relocate_cell(
    dev: &mut Device,
    placed: &mut PlacedDesign,
    src: CellLoc,
    dst: CellLoc,
    opts: &RelocationOptions,
    mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
) -> Result<RelocationReport, CoreError> {
    let cfg = dev.clb(src.0)?.cells[src.1];
    if !cfg.is_used() {
        return Err(CoreError::SourceUnused {
            tile: src.0,
            cell: src.1,
        });
    }
    if cfg.ram_mode {
        return Err(CoreError::RamRelocationUnsupported {
            tile: src.0,
            cell: src.1,
        });
    }
    if !free_slot(dev, &placed.netdb, dst) {
        return Err(CoreError::DestinationBusy {
            tile: dst.0,
            cell: dst.1,
        });
    }
    check_ram_columns(dev, &[src.0.col, dst.0.col])?;

    let slot = design_slot(placed, src)?;

    // Gather the nets touching the source cell.
    let mut input_nets: [Option<NetId>; 4] = [None; 4];
    for (p, slot_net) in input_nets.iter_mut().enumerate() {
        *slot_net = placed.netdb.net_with_sink(PlacedDesign::in_node(src, p));
    }
    let ce_net = placed.netdb.net_with_sink(PlacedDesign::ce_node(src));
    let out_net = placed.netdb.net_with_source(PlacedDesign::out_node(src));

    let mut class = RelocationClass::of(&cfg);
    // A sequential cell nobody observes (no output net) cannot have its
    // state read for transfer — and nobody can tell: fall back to the
    // two-phase procedure.
    if class.needs_auxiliary() && (out_net.is_none() || opts.skip_aux) {
        class = RelocationClass::FreeRunning;
    }

    let mut ctx = Engine {
        dev,
        placed,
        opts,
        slot,
        steps: Vec::new(),
        aux_sites_used: Vec::new(),
        observer: &mut observer,
    };
    if class.needs_auxiliary() {
        ctx.gated_procedure(src, dst, cfg, &input_nets, ce_net, out_net)?
    } else {
        ctx.two_phase_procedure(src, dst, cfg, &input_nets, ce_net, out_net)?
    };
    let (steps, aux_sites) = (ctx.steps, ctx.aux_sites_used);

    Ok(RelocationReport {
        class,
        src,
        dst,
        aux_sites,
        steps,
    })
}

fn design_slot(placed: &PlacedDesign, src: CellLoc) -> Result<DesignSlot, CoreError> {
    if let Some(i) = placed.placement.cell_locs.iter().position(|l| *l == src) {
        return Ok(DesignSlot::Cell(i));
    }
    if let Some(i) = placed.placement.feed_locs.iter().position(|l| *l == src) {
        return Ok(DesignSlot::Feed(i));
    }
    if let Some(i) = placed.placement.tap_locs.iter().position(|l| *l == src) {
        return Ok(DesignSlot::Tap(i));
    }
    Err(CoreError::DesignMismatch {
        detail: format!("cell {}/{} not in the design's placement", src.0, src.1),
    })
}

fn check_ram_columns(dev: &Device, cols: &[u16]) -> Result<(), CoreError> {
    for &col in cols {
        for row in 0..dev.rows() {
            let clb = dev.clb(rtm_fpga::geom::ClbCoord::new(row, col))?;
            if clb.has_ram() {
                return Err(CoreError::RamColumnHazard { column: col });
            }
        }
    }
    Ok(())
}

/// Internal execution context: wraps the device/design and records steps.
struct Engine<'a, F: FnMut(&Device, &PlacedDesign, &StepRecord)> {
    dev: &'a mut Device,
    placed: &'a mut PlacedDesign,
    opts: &'a RelocationOptions,
    slot: DesignSlot,
    steps: Vec<StepRecord>,
    aux_sites_used: Vec<CellLoc>,
    observer: &'a mut F,
}

impl<F: FnMut(&Device, &PlacedDesign, &StepRecord)> Engine<'_, F> {
    /// Runs `body` as one procedure step, recording the frames it touched
    /// and notifying the observer.
    fn step(
        &mut self,
        kind: StepKind,
        body: impl FnOnce(&mut Device, &mut PlacedDesign, &RelocationOptions) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        let before = self.dev.config().snapshot();
        body(self.dev, self.placed, self.opts)?;
        let frames = self.dev.config().diff_frames(&before);
        let record = StepRecord {
            step: kind,
            frames,
            wait_cycles: kind.wait_cycles(),
        };
        (self.observer)(self.dev, self.placed, &record);
        self.steps.push(record);
        Ok(())
    }

    /// Fig. 2: the two-phase procedure (combinational and free-running
    /// sequential cells). Returns the replica's output net id.
    fn two_phase_procedure(
        &mut self,
        src: CellLoc,
        dst: CellLoc,
        cfg: LogicCell,
        input_nets: &[Option<NetId>; 4],
        ce_net: Option<NetId>,
        out_net: Option<NetId>,
    ) -> Result<(), CoreError> {
        // Phase 1: copy the internal configuration…
        self.step(StepKind::CopyConfig, |dev, _, _| {
            dev.set_cell(dst.0, dst.1, cfg)?;
            Ok(())
        })?;
        // …and place the inputs of both CLBs in parallel.
        self.step(StepKind::ParallelInputs, |dev, placed, opts| {
            for (p, net) in input_nets.iter().enumerate() {
                if let Some(net) = net {
                    placed.netdb.extend_net(
                        dev,
                        *net,
                        PlacedDesign::in_node(dst, p),
                        opts.within,
                    )?;
                }
            }
            if let Some(net) = ce_net {
                placed
                    .netdb
                    .extend_net(dev, net, PlacedDesign::ce_node(dst), opts.within)?;
            }
            Ok(())
        })?;
        // Phase 2: outputs in parallel, then retire the original.
        self.parallel_and_retire(src, dst, out_net)
    }

    /// Fig. 3/4: the gated-clock / asynchronous procedure with the
    /// auxiliary relocation circuit.
    fn gated_procedure(
        &mut self,
        src: CellLoc,
        dst: CellLoc,
        cfg: LogicCell,
        input_nets: &[Option<NetId>; 4],
        ce_net: Option<NetId>,
        out_net: Option<NetId>,
    ) -> Result<(), CoreError> {
        let ce_net = ce_net.ok_or_else(|| CoreError::DesignMismatch {
            detail: format!("gated cell {}/{} has no routed enable", src.0, src.1),
        })?;
        let out_net = out_net.expect("checked by caller");
        let aux = find_aux_sites(self.dev, &self.placed.netdb, dst.0, 3, &[src, dst])?;
        check_ram_columns(self.dev, &[aux[0].0.col, aux[1].0.col, aux[2].0.col])?;
        let (mux_loc, or_loc, comb_loc) = (aux[0], aux[1], aux[2]);
        self.aux_sites_used = aux.clone();

        let mut cfg_bypass = cfg;
        cfg_bypass.d_bypass = true;
        let comb_copy = LogicCell {
            lut: cfg.lut,
            storage: StorageKind::None,
            clocking: ClockingClass::FreeRunning,
            registered_output: false,
            ram_mode: false,
            uses_ce: false,
            d_bypass: false,
        };
        // 2:1 mux (Fig. 3): pin0 = original clock-enable (select), pin1 =
        // original registered output, pin2 = replica combinational output.
        let mux = LogicCell {
            lut: Lut::from_fn(|i| if i[0] { i[2] } else { i[1] }),
            ..comb_copy
        };
        // OR gate with the clock-enable control folded into its truth
        // table: or(ce, control) where `control` is rewritten through the
        // configuration memory.
        let or_inactive = LogicCell {
            lut: Lut::passthrough(0),
            ..comb_copy
        };
        let or_active = LogicCell {
            lut: Lut::constant(true),
            ..comb_copy
        };

        // Step 1: build and connect the auxiliary circuit; parallel the
        // CLB input signals.
        let mut aux_nets: Vec<NetId> = Vec::new();
        self.step(StepKind::ConnectAux, |dev, placed, opts| {
            dev.set_cell(dst.0, dst.1, cfg_bypass)?;
            dev.set_cell(comb_loc.0, comb_loc.1, comb_copy)?;
            dev.set_cell(mux_loc.0, mux_loc.1, mux)?;
            dev.set_cell(or_loc.0, or_loc.1, or_inactive)?;
            for (p, net) in input_nets.iter().enumerate() {
                if let Some(net) = net {
                    placed.netdb.extend_net(
                        dev,
                        *net,
                        PlacedDesign::in_node(comb_loc, p),
                        opts.within,
                    )?;
                    placed.netdb.extend_net(
                        dev,
                        *net,
                        PlacedDesign::in_node(dst, p),
                        opts.within,
                    )?;
                }
            }
            placed
                .netdb
                .extend_net(dev, ce_net, PlacedDesign::in_node(mux_loc, 0), opts.within)?;
            placed
                .netdb
                .extend_net(dev, ce_net, PlacedDesign::in_node(or_loc, 0), opts.within)?;
            placed.netdb.extend_net(
                dev,
                out_net,
                PlacedDesign::in_node(mux_loc, 1),
                opts.within,
            )?;
            let c_out = placed.netdb.route_net(
                dev,
                PlacedDesign::out_node(comb_loc),
                &[PlacedDesign::in_node(mux_loc, 2)],
                opts.within,
            )?;
            let a_out = placed.netdb.route_net(
                dev,
                PlacedDesign::out_node(mux_loc),
                &[PlacedDesign::dx_node(dst)],
                opts.within,
            )?;
            let b_out = placed.netdb.route_net(
                dev,
                PlacedDesign::out_node(or_loc),
                &[PlacedDesign::ce_node(dst)],
                opts.within,
            )?;
            aux_nets.extend([c_out, a_out, b_out]);
            Ok(())
        })?;
        let (c_out, a_out, b_out) = (aux_nets[0], aux_nets[1], aux_nets[2]);

        // Step 2: activate relocation and clock-enable control.
        self.step(StepKind::ActivateControl, |dev, _, _| {
            dev.set_cell(or_loc.0, or_loc.1, or_active)?;
            Ok(())
        })?;
        // Step 3: deactivate clock-enable control.
        self.step(StepKind::DeactivateControl, |dev, _, _| {
            dev.set_cell(or_loc.0, or_loc.1, or_inactive)?;
            Ok(())
        })?;
        // Step 4: connect the clock-enable inputs of both CLBs.
        self.step(StepKind::ConnectCeBoth, |dev, placed, opts| {
            placed
                .netdb
                .extend_net(dev, ce_net, PlacedDesign::ce_node(dst), opts.within)?;
            Ok(())
        })?;
        // Step 5: atomically switch the replica's D source to its own LUT
        // (single configuration bit).
        self.step(StepKind::SwitchDSource, |dev, _, _| {
            dev.set_cell(dst.0, dst.1, cfg)?;
            Ok(())
        })?;
        // Step 6: disconnect all auxiliary relocation circuit signals.
        self.step(StepKind::DisconnectAux, |dev, placed, _| {
            placed.netdb.remove_net(dev, c_out);
            placed.netdb.remove_net(dev, a_out);
            placed.netdb.remove_net(dev, b_out);
            for (p, net) in input_nets.iter().enumerate() {
                if let Some(net) = net {
                    placed
                        .netdb
                        .remove_sink(dev, *net, PlacedDesign::in_node(comb_loc, p));
                }
            }
            placed
                .netdb
                .remove_sink(dev, ce_net, PlacedDesign::in_node(mux_loc, 0));
            placed
                .netdb
                .remove_sink(dev, ce_net, PlacedDesign::in_node(or_loc, 0));
            placed
                .netdb
                .remove_sink(dev, out_net, PlacedDesign::in_node(mux_loc, 1));
            dev.set_cell(comb_loc.0, comb_loc.1, LogicCell::default())?;
            dev.set_cell(mux_loc.0, mux_loc.1, LogicCell::default())?;
            dev.set_cell(or_loc.0, or_loc.1, LogicCell::default())?;
            Ok(())
        })?;

        self.parallel_and_retire(src, dst, Some(out_net))
    }

    /// Updates the design's placement/net tables to point at the replica.
    /// Done as soon as both copies agree (after outputs are paralleled),
    /// so observers tracking the design see a valid location at every
    /// step.
    fn update_tables(
        placed: &mut PlacedDesign,
        slot: DesignSlot,
        dst: CellLoc,
        net: Option<NetId>,
    ) {
        match slot {
            DesignSlot::Cell(i) => {
                placed.placement.cell_locs[i] = dst;
                placed.cell_nets[i] = net;
            }
            DesignSlot::Feed(i) => {
                placed.placement.feed_locs[i] = dst;
                placed.feed_nets[i] = net;
            }
            DesignSlot::Tap(i) => {
                placed.placement.tap_locs[i] = dst;
            }
        }
    }

    /// Shared tail: parallel outputs, disconnect original outputs, then
    /// original inputs; free the source cell.
    fn parallel_and_retire(
        &mut self,
        src: CellLoc,
        dst: CellLoc,
        out_net: Option<NetId>,
    ) -> Result<(), CoreError> {
        let slot = self.slot;
        if let Some(out_net) = out_net {
            let sinks: Vec<_> = self
                .placed
                .netdb
                .net(out_net)
                .expect("live net")
                .sinks()
                .collect();
            if sinks.is_empty() {
                // No observers: just retire the original net.
                self.step(StepKind::DisconnectOrigOutputs, |dev, placed, _| {
                    placed.netdb.remove_net(dev, out_net);
                    Self::update_tables(placed, slot, dst, None);
                    Ok(())
                })?;
            } else {
                self.step(StepKind::ParallelOutputs, |dev, placed, opts| {
                    let new_id = placed.netdb.route_net(
                        dev,
                        PlacedDesign::out_node(dst),
                        &sinks,
                        opts.within,
                    )?;
                    Self::update_tables(placed, slot, dst, Some(new_id));
                    Ok(())
                })?;
                self.step(StepKind::DisconnectOrigOutputs, |dev, placed, _| {
                    placed.netdb.remove_net(dev, out_net);
                    Ok(())
                })?;
            }
        } else {
            Self::update_tables(self.placed, slot, dst, None);
        }
        // Gather the input nets again (the source pins still hold sinks).
        self.step(StepKind::DisconnectOrigInputs, |dev, placed, _| {
            for p in 0..4 {
                let pin = PlacedDesign::in_node(src, p);
                if let Some(net) = placed.netdb.net_with_sink(pin) {
                    placed.netdb.remove_sink(dev, net, pin);
                }
            }
            let ce = PlacedDesign::ce_node(src);
            if let Some(net) = placed.netdb.net_with_sink(ce) {
                placed.netdb.remove_sink(dev, net, ce);
            }
            dev.set_cell(src.0, src.1, LogicCell::default())?;
            dev.set_cell_state(src.0, src.1, false)?;
            Ok(())
        })?;
        Ok(())
    }
}

/// Relocates a cell to a (possibly distant) destination **in stages** of
/// at most `max_hop` CLBs each, as the paper recommends: "the relocation
/// of a complete function may take place in several stages, to avoid an
/// excessive increase in path delays during the relocation interval"
/// (§3). Every intermediate hop is a full transparent relocation; the
/// replica paths therefore never span more than `max_hop` tiles.
///
/// Returns one report per hop.
///
/// # Errors
///
/// As [`relocate_cell`]; additionally fails if no free intermediate slot
/// exists near a waypoint.
///
/// # Panics
///
/// Panics if `max_hop` is zero.
pub fn relocate_cell_staged(
    dev: &mut Device,
    placed: &mut PlacedDesign,
    src: CellLoc,
    dst: CellLoc,
    max_hop: u16,
    opts: &RelocationOptions,
    mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
) -> Result<Vec<RelocationReport>, CoreError> {
    assert!(max_hop > 0, "max_hop must be positive");
    let mut reports = Vec::new();
    let mut cur = src;
    loop {
        let remaining = cur.0.manhattan(dst.0);
        if remaining <= max_hop as u32 {
            reports.push(relocate_cell(dev, placed, cur, dst, opts, &mut observer)?);
            return Ok(reports);
        }
        // Waypoint: step `max_hop` CLBs along the dominant axis toward
        // the destination, then take the nearest free slot.
        let dr = (dst.0.row as i32 - cur.0.row as i32).clamp(-(max_hop as i32), max_hop as i32);
        let budget = max_hop as i32 - dr.abs();
        let dc = (dst.0.col as i32 - cur.0.col as i32).clamp(-budget, budget);
        let target = cur
            .0
            .offset(dr, dc)
            .ok_or_else(|| CoreError::DesignMismatch {
                detail: format!("waypoint from {} out of bounds", cur.0),
            })?;
        let waypoint =
            crate::relocation::plan::find_aux_sites(dev, &placed.netdb, target, 1, &[cur, dst])?[0];
        reports.push(relocate_cell(
            dev,
            placed,
            cur,
            waypoint,
            opts,
            &mut observer,
        )?);
        cur = waypoint;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::part::Part;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;
    use rtm_sim::design::implement;

    fn setup(seed: u64) -> (Device, PlacedDesign) {
        let netlist = RandomCircuit::free_running(3, 8, seed).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(2, 2), 8, 8);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        (dev, placed)
    }

    #[test]
    fn source_unused_rejected() {
        let (mut dev, mut placed) = setup(1);
        let err = relocate_cell(
            &mut dev,
            &mut placed,
            (ClbCoord::new(25, 25), 0),
            (ClbCoord::new(26, 26), 0),
            &RelocationOptions::default(),
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SourceUnused { .. }));
    }

    #[test]
    fn destination_busy_rejected() {
        let (mut dev, mut placed) = setup(2);
        let src = placed.placement.cell_locs[0];
        let dst = placed.placement.cell_locs[1]; // occupied by the design
        let err = relocate_cell(
            &mut dev,
            &mut placed,
            src,
            dst,
            &RelocationOptions::default(),
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DestinationBusy { .. }));
    }

    #[test]
    fn foreign_cell_rejected_as_design_mismatch() {
        let (mut dev, mut placed) = setup(3);
        // Configure a cell the design does not know about.
        let alien = (ClbCoord::new(20, 20), 0);
        let cfg = LogicCell {
            lut: Lut::constant(true),
            ..LogicCell::default()
        };
        dev.set_cell(alien.0, alien.1, cfg).unwrap();
        let err = relocate_cell(
            &mut dev,
            &mut placed,
            alien,
            (ClbCoord::new(21, 21), 0),
            &RelocationOptions::default(),
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DesignMismatch { .. }));
    }

    #[test]
    fn within_region_too_small_is_unroutable() {
        let (mut dev, mut placed) = setup(4);
        let src = placed.placement.cell_locs[0];
        // Destination far outside a tiny permitted routing region.
        let opts = RelocationOptions {
            within: Some(Rect::new(ClbCoord::new(2, 2), 3, 3)),
            ..Default::default()
        };
        let err = relocate_cell(
            &mut dev,
            &mut placed,
            src,
            (ClbCoord::new(25, 25), 0),
            &opts,
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Sim(rtm_sim::SimError::Unroutable { .. })
        ));
    }

    #[test]
    fn ram_column_hazard_rejected() {
        let (mut dev, mut placed) = setup(5);
        let src = placed.placement.cell_locs[0];
        let dst = (ClbCoord::new(20, 20), 0);
        // Park a RAM-mode cell in the destination column.
        let ram = LogicCell {
            lut: Lut::constant(true),
            ram_mode: true,
            ..LogicCell::default()
        };
        dev.set_cell(ClbCoord::new(5, dst.0.col), 3, ram).unwrap();
        let err = relocate_cell(
            &mut dev,
            &mut placed,
            src,
            dst,
            &RelocationOptions::default(),
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::RamColumnHazard { .. }));
    }

    #[test]
    fn report_accessors_and_display() {
        let (mut dev, mut placed) = setup(6);
        let src = placed.placement.cell_locs[0];
        let dst = (ClbCoord::new(20, 20), 0);
        let mut observed_steps = 0;
        let report = relocate_cell(
            &mut dev,
            &mut placed,
            src,
            dst,
            &RelocationOptions::default(),
            |_, _, _| observed_steps += 1,
        )
        .unwrap();
        assert_eq!(report.steps.len(), observed_steps);
        assert!(report.wait_cycles_total() >= report.steps.len() as u32);
        assert!(!report.columns_touched().is_empty());
        assert!(report.columns_touched().contains(&src.0.col));
        assert!(report.to_string().contains("relocation"));
        assert_eq!(placed.placement.cell_locs[0], dst, "table updated");
    }

    #[test]
    fn observer_sees_monotonic_procedure() {
        let (mut dev, mut placed) = setup(7);
        let src = placed.placement.cell_locs[0];
        let dst = (ClbCoord::new(22, 22), 1);
        let mut kinds = Vec::new();
        relocate_cell(
            &mut dev,
            &mut placed,
            src,
            dst,
            &RelocationOptions::default(),
            |_, _, r| kinds.push(r.step),
        )
        .unwrap();
        // Two-phase order: copy, inputs, ... original retired last.
        assert_eq!(kinds.first(), Some(&StepKind::CopyConfig));
        assert_eq!(kinds.last(), Some(&StepKind::DisconnectOrigInputs));
        let pi = kinds.iter().position(|k| *k == StepKind::ParallelInputs);
        let po = kinds.iter().position(|k| *k == StepKind::ParallelOutputs);
        let dc = kinds
            .iter()
            .position(|k| *k == StepKind::DisconnectOrigOutputs);
        if let (Some(pi), Some(po), Some(dc)) = (pi, po, dc) {
            assert!(pi < po && po < dc, "phase order violated: {kinds:?}");
        }
    }
}
