//! Relocation classification, step vocabulary and auxiliary-site search.

use crate::error::CoreError;
use rtm_fpga::cell::LogicCell;
use rtm_fpga::clb::CELLS_PER_CLB;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::routing::{RouteNode, Wire};
use rtm_fpga::storage::{ClockingClass, StorageKind};
use rtm_fpga::Device;
use rtm_sim::place::CellLoc;
use rtm_sim::route::NetDb;
use std::fmt;

/// Which relocation procedure a cell requires (paper §2's three
/// implementation classes, plus purely combinational cells that need no
/// state transfer at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocationClass {
    /// No storage: the two-phase copy alone is sufficient.
    Combinational,
    /// Synchronous, free-running clock: two-phase copy; the replica
    /// flip-flop acquires state from the paralleled inputs within one
    /// clock cycle.
    FreeRunning,
    /// Synchronous, gated clock: requires the auxiliary relocation
    /// circuit (Fig. 3) to transfer state coherently.
    GatedClock,
    /// Asynchronous (transparent latch): same auxiliary circuit with the
    /// latch enable in place of the clock enable.
    Asynchronous,
}

impl RelocationClass {
    /// Classifies a cell configuration.
    pub fn of(config: &LogicCell) -> RelocationClass {
        match (config.storage, config.clocking) {
            (StorageKind::None, _) => RelocationClass::Combinational,
            (_, ClockingClass::FreeRunning) => RelocationClass::FreeRunning,
            (_, ClockingClass::GatedClock) => RelocationClass::GatedClock,
            (_, ClockingClass::Asynchronous) => RelocationClass::Asynchronous,
        }
    }

    /// True if the class needs the auxiliary relocation circuit.
    pub fn needs_auxiliary(&self) -> bool {
        matches!(
            self,
            RelocationClass::GatedClock | RelocationClass::Asynchronous
        )
    }
}

impl fmt::Display for RelocationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelocationClass::Combinational => "combinational",
            RelocationClass::FreeRunning => "free-running",
            RelocationClass::GatedClock => "gated-clock",
            RelocationClass::Asynchronous => "asynchronous",
        };
        f.write_str(s)
    }
}

/// One step of the relocation procedure (the Fig. 4 flow, refined: the
/// atomic D-source switch is split out of the aux disconnect so a single
/// frame write performs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Copy the CLB internal configuration to the replica (phase 1 start).
    CopyConfig,
    /// Build and connect the auxiliary relocation circuit; parallel the
    /// CLB input signals.
    ConnectAux,
    /// Parallel the CLB input signals (classes without aux circuit).
    ParallelInputs,
    /// Activate the relocation and clock-enable control (aux LUT rewrite).
    ActivateControl,
    /// Deactivate the clock-enable control.
    DeactivateControl,
    /// Connect the clock-enable inputs of both CLBs.
    ConnectCeBoth,
    /// Switch the replica's D source from the auxiliary path to its own
    /// LUT (single-bit configuration write).
    SwitchDSource,
    /// Disconnect all auxiliary relocation circuit signals and free the
    /// auxiliary cells.
    DisconnectAux,
    /// Place the CLB outputs in parallel (phase 2 start).
    ParallelOutputs,
    /// Disconnect the original CLB outputs.
    DisconnectOrigOutputs,
    /// Disconnect the original CLB inputs and free the original cell.
    DisconnectOrigInputs,
}

impl StepKind {
    /// Clock cycles the system must run after this step before the next
    /// one (the ">2 CLK" / ">1 CLK" wait points of Fig. 4).
    pub fn wait_cycles(&self) -> u32 {
        match self {
            StepKind::ActivateControl => 3, // > 2 CLK pulses
            StepKind::ParallelInputs => 2,  // replica FF captures
            StepKind::ParallelOutputs => 2, // > 1 CLK pulse
            StepKind::DeactivateControl
            | StepKind::ConnectCeBoth
            | StepKind::SwitchDSource
            | StepKind::DisconnectAux => 1,
            _ => 1,
        }
    }
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// True if the cell slot is unused on the device and none of its pins
/// carry a routed net.
pub fn free_slot(dev: &Device, netdb: &NetDb, loc: CellLoc) -> bool {
    let Ok(clb) = dev.clb(loc.0) else {
        return false;
    };
    if clb.cells[loc.1].is_used() {
        return false;
    }
    let c = loc.1 as u8;
    let pins = [
        Wire::CellOut(c),
        Wire::CellCe(c),
        Wire::CellDx(c),
        Wire::CellIn(c, 0),
        Wire::CellIn(c, 1),
        Wire::CellIn(c, 2),
        Wire::CellIn(c, 3),
    ];
    pins.iter()
        .all(|w| netdb.users_of(RouteNode::new(loc.0, *w)).is_empty())
}

/// Finds `count` free cell slots near `center` (spiral search by
/// Manhattan distance) for the auxiliary relocation circuit, excluding
/// `exclude` slots.
///
/// # Errors
///
/// Returns [`CoreError::NoAuxiliarySite`] if the search exhausts the
/// device.
pub fn find_aux_sites(
    dev: &Device,
    netdb: &NetDb,
    center: ClbCoord,
    count: usize,
    exclude: &[CellLoc],
) -> Result<Vec<CellLoc>, CoreError> {
    let mut found = Vec::with_capacity(count);
    let max_radius = (dev.rows() + dev.cols()) as i32;
    for radius in 0..=max_radius {
        for dr in -radius..=radius {
            let rem = radius - dr.abs();
            let dcs: &[i32] = if rem == 0 { &[0] } else { &[-rem, rem] };
            for &dc in dcs {
                let Some(tile) = center.offset(dr, dc) else {
                    continue;
                };
                if tile.row >= dev.rows() || tile.col >= dev.cols() {
                    continue;
                }
                for cell in 0..CELLS_PER_CLB {
                    let loc = (tile, cell);
                    if exclude.contains(&loc) || found.contains(&loc) {
                        continue;
                    }
                    if free_slot(dev, netdb, loc) {
                        found.push(loc);
                        if found.len() == count {
                            return Ok(found);
                        }
                    }
                }
            }
        }
    }
    Err(CoreError::NoAuxiliarySite { near: center })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::lut::Lut;
    use rtm_fpga::part::Part;

    #[test]
    fn classification() {
        let mut c = LogicCell::default();
        assert_eq!(RelocationClass::of(&c), RelocationClass::Combinational);
        c.storage = StorageKind::FlipFlop;
        c.clocking = ClockingClass::FreeRunning;
        assert_eq!(RelocationClass::of(&c), RelocationClass::FreeRunning);
        c.clocking = ClockingClass::GatedClock;
        assert_eq!(RelocationClass::of(&c), RelocationClass::GatedClock);
        assert!(RelocationClass::of(&c).needs_auxiliary());
        c.storage = StorageKind::Latch;
        c.clocking = ClockingClass::Asynchronous;
        assert_eq!(RelocationClass::of(&c), RelocationClass::Asynchronous);
        assert!(!RelocationClass::Combinational.needs_auxiliary());
        assert!(!RelocationClass::FreeRunning.needs_auxiliary());
    }

    #[test]
    fn wait_points_match_figure_4() {
        assert!(StepKind::ActivateControl.wait_cycles() > 2, "> 2 CLK");
        assert!(StepKind::ParallelOutputs.wait_cycles() > 1, "> 1 CLK");
        assert!(StepKind::CopyConfig.wait_cycles() >= 1);
    }

    #[test]
    fn free_slot_detects_usage() {
        let mut dev = Device::new(Part::Xcv50);
        let db = NetDb::new();
        let loc = (ClbCoord::new(3, 3), 1);
        assert!(free_slot(&dev, &db, loc));
        let cfg = LogicCell {
            lut: Lut::constant(true),
            ..LogicCell::default()
        };
        dev.set_cell(loc.0, loc.1, cfg).unwrap();
        assert!(!free_slot(&dev, &db, loc));
    }

    #[test]
    fn free_slot_respects_routing() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = NetDb::new();
        let src = RouteNode::new(ClbCoord::new(2, 2), Wire::CellOut(0));
        let sink = RouteNode::new(ClbCoord::new(2, 3), Wire::CellIn(0, 1));
        db.route_net(&mut dev, src, &[sink], None).unwrap();
        // Pin occupied by the net -> slot not free even though unconfigured.
        assert!(!free_slot(&dev, &db, (ClbCoord::new(2, 3), 0)));
        assert!(free_slot(&dev, &db, (ClbCoord::new(2, 3), 1)));
    }

    #[test]
    fn aux_site_search_finds_nearby() {
        let dev = Device::new(Part::Xcv50);
        let db = NetDb::new();
        let center = ClbCoord::new(8, 8);
        let sites = find_aux_sites(&dev, &db, center, 3, &[(center, 0)]).unwrap();
        assert_eq!(sites.len(), 3);
        for (tile, _) in &sites {
            assert!(center.manhattan(*tile) <= 1, "sites should be close");
        }
        assert!(!sites.contains(&(center, 0)));
    }

    #[test]
    fn aux_site_search_fails_on_full_device() {
        let mut dev = Device::new(Part::Xcv50);
        let cfg = LogicCell {
            lut: Lut::constant(true),
            ..LogicCell::default()
        };
        for tile in dev.bounds().iter() {
            for c in 0..CELLS_PER_CLB {
                dev.set_cell(tile, c, cfg).unwrap();
            }
        }
        let db = NetDb::new();
        let err = find_aux_sites(&dev, &db, ClbCoord::new(0, 0), 1, &[]).unwrap_err();
        assert!(matches!(err, CoreError::NoAuxiliarySite { .. }));
    }
}
