//! Two-phase relocation of routing resources (paper §3, Fig. 5).
//!
//! "The interconnections involved are first duplicated in order to
//! establish an alternative path, and then disconnected, becoming
//! available to be reused." While both paths are active the effective
//! propagation delay is the longer of the two (Fig. 6) — the timing
//! numbers in the report come from `rtm-sim`'s static analysis.

use crate::error::CoreError;
use rtm_fpga::config::FrameAddress;
use rtm_fpga::geom::Rect;
use rtm_fpga::routing::RouteNode;
use rtm_fpga::Device;
use rtm_sim::delay::ParallelPathTiming;
use rtm_sim::route::{NetDb, NetId};
use std::fmt;

/// Outcome of one routing relocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingRelocationReport {
    /// The net whose branch was moved.
    pub net: NetId,
    /// The sink whose path was replaced.
    pub sink: RouteNode,
    /// Delay of the original path (ps).
    pub old_delay_ps: u64,
    /// Delay of the replica path (ps).
    pub new_delay_ps: u64,
    /// Frames written to duplicate the path (phase 1).
    pub duplicate_frames: Vec<FrameAddress>,
    /// Frames written to retire the original (phase 2).
    pub retire_frames: Vec<FrameAddress>,
}

impl RoutingRelocationReport {
    /// The Fig. 6 timing while both paths were paralleled.
    pub fn parallel_timing(&self) -> ParallelPathTiming {
        ParallelPathTiming {
            original_ps: self.old_delay_ps,
            replica_ps: self.new_delay_ps,
        }
    }
}

impl fmt::Display for RoutingRelocationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rerouted {} on net {}: {}ps -> {}ps ({} + {} frames)",
            self.sink,
            self.net,
            self.old_delay_ps,
            self.new_delay_ps,
            self.duplicate_frames.len(),
            self.retire_frames.len(),
        )
    }
}

/// Relocates the routing of one sink of `net`: duplicates the connection
/// over a disjoint path, calls `between_phases` while both paths are
/// paralleled (the harness runs clock cycles there), then retires the
/// original branch and absorbs the replica into the net.
///
/// # Errors
///
/// Returns [`CoreError::Sim`] wrapping `Unroutable` if no disjoint
/// alternative path exists, and `SinkOccupied`-style errors for sinks not
/// on the net.
pub fn relocate_sink_path(
    dev: &mut Device,
    netdb: &mut NetDb,
    net: NetId,
    sink: RouteNode,
    within: Option<Rect>,
    mut between_phases: impl FnMut(&Device),
) -> Result<RoutingRelocationReport, CoreError> {
    let old_delay_ps = {
        let n = netdb.net(net).ok_or(CoreError::DesignMismatch {
            detail: format!("net {net} is not live"),
        })?;
        n.sink_delay_ps(sink).ok_or(CoreError::DesignMismatch {
            detail: format!("{sink} is not a sink of net {net}"),
        })?
    };
    let source = netdb.net(net).expect("checked").source;

    // Phase 1: duplicate — route a parallel branch from the same source
    // as a temporary net. Its path is automatically disjoint from the
    // original (those nodes are occupied by `net`).
    let before = dev.config().snapshot();
    let replica = netdb.route_net(dev, source, &[sink], within)?;
    let duplicate_frames = dev.config().diff_frames(&before);
    let new_delay_ps = netdb
        .net(replica)
        .expect("just routed")
        .sink_delay_ps(sink)
        .expect("sink present");

    // Both paths are live: let the system run (Fig. 6 window).
    between_phases(dev);

    // Phase 2: disconnect the original branch and adopt the replica.
    let before = dev.config().snapshot();
    netdb.remove_sink(dev, net, sink);
    netdb.absorb(net, replica);
    let retire_frames = dev.config().diff_frames(&before);

    Ok(RoutingRelocationReport {
        net,
        sink,
        old_delay_ps,
        new_delay_ps,
        duplicate_frames,
        retire_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::part::Part;
    use rtm_fpga::routing::Wire;

    fn node(r: u16, c: u16, wire: Wire) -> RouteNode {
        RouteNode::new(ClbCoord::new(r, c), wire)
    }

    #[test]
    fn reroute_keeps_connectivity_throughout() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = NetDb::new();
        let source = node(4, 4, Wire::CellOut(0));
        let sink = node(4, 8, Wire::CellIn(0, 0));
        let other_sink = node(6, 4, Wire::CellIn(0, 0));
        let net = db
            .route_net(&mut dev, source, &[sink, other_sink], None)
            .unwrap();

        let mut observed_parallel = false;
        let report = relocate_sink_path(&mut dev, &mut db, net, sink, None, |d| {
            // While paralleled: two pips drive the sink's pin path — the
            // sink must still be reachable.
            assert!(d.sinks_of(source).contains(&sink));
            observed_parallel = true;
        })
        .unwrap();
        assert!(observed_parallel);
        assert!(report.old_delay_ps > 0);
        assert!(report.new_delay_ps > 0);
        assert!(!report.duplicate_frames.is_empty());
        assert!(!report.retire_frames.is_empty());

        // After: still connected, other sink untouched, net bookkeeping
        // coherent.
        assert!(dev.sinks_of(source).contains(&sink));
        assert!(dev.sinks_of(source).contains(&other_sink));
        let n = db.net(net).unwrap();
        assert_eq!(n.sinks().count(), 2);
        assert!(n.sink_delay_ps(sink).is_some());
    }

    #[test]
    fn effective_delay_is_max_of_both_paths() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = NetDb::new();
        let source = node(2, 2, Wire::CellOut(0));
        let sink = node(2, 5, Wire::CellIn(0, 1));
        let net = db.route_net(&mut dev, source, &[sink], None).unwrap();
        let report = relocate_sink_path(&mut dev, &mut db, net, sink, None, |_| {}).unwrap();
        let t = report.parallel_timing();
        assert_eq!(
            t.effective_delay_ps(),
            report.old_delay_ps.max(report.new_delay_ps)
        );
        assert_eq!(
            t.fuzziness_ps(),
            report.old_delay_ps.abs_diff(report.new_delay_ps)
        );
    }

    #[test]
    fn missing_sink_rejected() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = NetDb::new();
        let source = node(1, 1, Wire::CellOut(0));
        let sink = node(1, 2, Wire::CellIn(0, 1));
        let net = db.route_net(&mut dev, source, &[sink], None).unwrap();
        let bogus = node(9, 9, Wire::CellIn(0, 0));
        let err = relocate_sink_path(&mut dev, &mut db, net, bogus, None, |_| {}).unwrap_err();
        assert!(matches!(err, CoreError::DesignMismatch { .. }));
    }

    #[test]
    fn replica_path_is_disjoint_from_original() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = NetDb::new();
        let source = node(3, 3, Wire::CellOut(1));
        let sink = node(3, 6, Wire::CellIn(1, 0));
        let net = db.route_net(&mut dev, source, &[sink], None).unwrap();
        let before_nodes: Vec<RouteNode> = db.net(net).unwrap().nodes().collect();
        let report = relocate_sink_path(&mut dev, &mut db, net, sink, None, |_| {}).unwrap();
        // The new path's delay differs from the old (different resources).
        // (Equal-length disjoint detours are possible in principle but the
        // first BFS alternative here is strictly longer.)
        assert_ne!(report.new_delay_ps, 0);
        let after_nodes: Vec<RouteNode> = db.net(net).unwrap().nodes().collect();
        // Old exclusive intermediate nodes were released.
        let released: Vec<_> = before_nodes
            .iter()
            .filter(|n| !after_nodes.contains(n))
            .collect();
        assert!(
            !released.is_empty(),
            "original branch resources must be freed"
        );
    }
}
