//! Error type for relocation and run-time management.

use rtm_fpga::geom::ClbCoord;
use std::fmt;

/// Coarse, attributable reason a [`RunTimeManager::load`] failed — the
/// routing-failure autopsy a service needs to tell congestion apart
/// from capacity.
///
/// A load walks two phases that can fail for different reasons:
/// placement (`implement_reserved` could not find cell slots inside the
/// region, or no region existed at all) and routing (free slots
/// existed, but a net could not be wired through the congested switch
/// fabric). Absorbed per-request failures used to be a single opaque
/// counter; classifying them tells an operator whether a fleet needs
/// *bigger devices* or a *better router*.
///
/// [`RunTimeManager::load`]: crate::RunTimeManager::load
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadFailureReason {
    /// Placement-side failure: no free region/cell slots could hold the
    /// design (area pressure, not wiring).
    NoFreeSlots,
    /// Routing-side failure: cells placed, but a net was unroutable (or
    /// its sink pin already claimed) through the shared fabric.
    Unroutable,
    /// Anything else (engine invariants, device errors).
    Other,
}

impl fmt::Display for LoadFailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoadFailureReason::NoFreeSlots => "no-free-slots",
            LoadFailureReason::Unroutable => "unroutable",
            LoadFailureReason::Other => "other",
        })
    }
}

/// Errors raised by the relocation engine and manager.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The source location holds no configured cell.
    SourceUnused {
        /// Tile of the offending location.
        tile: ClbCoord,
        /// Cell index within the CLB.
        cell: usize,
    },
    /// The destination slot is not free.
    DestinationBusy {
        /// Tile of the offending location.
        tile: ClbCoord,
        /// Cell index within the CLB.
        cell: usize,
    },
    /// On-line relocation of LUT/RAM cells is not feasible (paper §2).
    RamRelocationUnsupported {
        /// Tile of the offending location.
        tile: ClbCoord,
        /// Cell index within the CLB.
        cell: usize,
    },
    /// A LUT/RAM cell lies in a column the relocation would rewrite
    /// (paper §2: "LUT/RAMs should not lie in any column that could be
    /// affected by the relocation procedure").
    RamColumnHazard {
        /// The hazardous column.
        column: u16,
    },
    /// No free cells found for the auxiliary relocation circuit.
    NoAuxiliarySite {
        /// Where the search centred.
        near: ClbCoord,
    },
    /// The design view and device diverged (internal invariant).
    DesignMismatch {
        /// Explanation.
        detail: String,
    },
    /// A two-phase admission ticket id with nothing to resolve: the id
    /// was never reserved, or it was already resolved (resolution is
    /// one-shot and consumes the outcome).
    UnknownTicket {
        /// The trace id the caller presented.
        trace_id: u64,
    },
    /// An underlying implementation (place/route/sim) error.
    Sim(rtm_sim::SimError),
    /// An underlying device error.
    Fpga(rtm_fpga::FpgaError),
    /// An underlying area-management error.
    Place(rtm_place::PlaceError),
    /// An underlying bitstream error.
    Bitstream(rtm_bitstream::BitstreamError),
}

impl CoreError {
    /// Classifies this error as a [`LoadFailureReason`] so a service
    /// can attribute an absorbed load failure without matching on the
    /// whole error tree.
    pub fn load_failure_reason(&self) -> LoadFailureReason {
        match self {
            CoreError::Place(rtm_place::PlaceError::NoFit { .. })
            | CoreError::Sim(rtm_sim::SimError::RegionTooSmall { .. })
            | CoreError::Sim(rtm_sim::SimError::RegionOutOfBounds { .. }) => {
                LoadFailureReason::NoFreeSlots
            }
            CoreError::Sim(rtm_sim::SimError::Unroutable { .. })
            | CoreError::Sim(rtm_sim::SimError::SinkOccupied { .. }) => {
                LoadFailureReason::Unroutable
            }
            _ => LoadFailureReason::Other,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SourceUnused { tile, cell } => {
                write!(f, "no configured cell at {tile}/{cell}")
            }
            CoreError::DestinationBusy { tile, cell } => {
                write!(f, "destination {tile}/{cell} is not free")
            }
            CoreError::RamRelocationUnsupported { tile, cell } => {
                write!(
                    f,
                    "cell {tile}/{cell} is in LUT/RAM mode; on-line relocation unsupported"
                )
            }
            CoreError::RamColumnHazard { column } => {
                write!(
                    f,
                    "column {column} holds LUT/RAM cells and would be rewritten"
                )
            }
            CoreError::NoAuxiliarySite { near } => {
                write!(
                    f,
                    "no free cells for the auxiliary relocation circuit near {near}"
                )
            }
            CoreError::DesignMismatch { detail } => write!(f, "design mismatch: {detail}"),
            CoreError::UnknownTicket { trace_id } => {
                write!(f, "ticket {trace_id} is unknown or already resolved")
            }
            CoreError::Sim(e) => write!(f, "implementation error: {e}"),
            CoreError::Fpga(e) => write!(f, "device error: {e}"),
            CoreError::Place(e) => write!(f, "area error: {e}"),
            CoreError::Bitstream(e) => write!(f, "bitstream error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Fpga(e) => Some(e),
            CoreError::Place(e) => Some(e),
            CoreError::Bitstream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtm_sim::SimError> for CoreError {
    fn from(e: rtm_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<rtm_fpga::FpgaError> for CoreError {
    fn from(e: rtm_fpga::FpgaError) -> Self {
        CoreError::Fpga(e)
    }
}

impl From<rtm_place::PlaceError> for CoreError {
    fn from(e: rtm_place::PlaceError) -> Self {
        CoreError::Place(e)
    }
}

impl From<rtm_bitstream::BitstreamError> for CoreError {
    fn from(e: rtm_bitstream::BitstreamError) -> Self {
        CoreError::Bitstream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let t = ClbCoord::new(1, 2);
        for e in [
            CoreError::SourceUnused { tile: t, cell: 0 },
            CoreError::DestinationBusy { tile: t, cell: 1 },
            CoreError::RamRelocationUnsupported { tile: t, cell: 2 },
            CoreError::RamColumnHazard { column: 9 },
            CoreError::NoAuxiliarySite { near: t },
            CoreError::DesignMismatch { detail: "x".into() },
            CoreError::UnknownTicket { trace_id: 7 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn load_failures_classify_by_phase() {
        use rtm_fpga::routing::{RouteNode, Wire};
        let r = rtm_fpga::geom::Rect::new(ClbCoord::new(0, 0), 2, 2);
        let node = RouteNode::new(ClbCoord::new(0, 0), Wire::CellOut(0));
        let no_slots: CoreError = rtm_place::PlaceError::NoFit { rows: 4, cols: 4 }.into();
        assert_eq!(
            no_slots.load_failure_reason(),
            LoadFailureReason::NoFreeSlots
        );
        let too_small: CoreError = rtm_sim::SimError::RegionTooSmall {
            cells: 9,
            capacity: 4,
            region: r,
        }
        .into();
        assert_eq!(
            too_small.load_failure_reason(),
            LoadFailureReason::NoFreeSlots
        );
        let unroutable: CoreError = rtm_sim::SimError::Unroutable {
            from: node,
            to: node,
        }
        .into();
        assert_eq!(
            unroutable.load_failure_reason(),
            LoadFailureReason::Unroutable
        );
        let other = CoreError::DesignMismatch { detail: "x".into() };
        assert_eq!(other.load_failure_reason(), LoadFailureReason::Other);
        for reason in [
            LoadFailureReason::NoFreeSlots,
            LoadFailureReason::Unroutable,
            LoadFailureReason::Other,
        ] {
            assert!(!reason.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let e: CoreError = rtm_fpga::FpgaError::BadFrameAddress { detail: "d".into() }.into();
        assert!(e.source().is_some());
    }
}
