//! The run-time manager: the engine behind the paper's "FPGA
//! Rearrangement and Programming tool" (§4).
//!
//! Owns the device, the area bookkeeping and every loaded function.
//! Incoming functions are placed on-line; when fragmentation blocks a
//! request the manager plans a rearrangement (`rtm-place`'s
//! local-repacking / ordered-compaction planner) and executes it with
//! **dynamic relocation** — staged, cell by cell, while the moved
//! functions keep running. A complete configuration copy is kept for
//! recovery, exactly as the paper's tool does.

use crate::error::CoreError;
use crate::relocation::{relocate_cell, RelocationOptions, RelocationReport, StepRecord};
use rtm_fpga::config::ConfigMemory;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::techmap::MappedNetlist;
use rtm_place::alloc::Strategy;
use rtm_place::defrag::{make_room, plan_compaction, predict_metrics, Move};
use rtm_place::frag::FragMetrics;
use rtm_place::TaskArena;
use rtm_sim::design::{implement_reserved, PlacedDesign};
use rtm_sim::place::CellLoc;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a loaded function.
pub type FunctionId = u64;

/// A function resident on the device.
#[derive(Debug, Clone)]
pub struct LoadedFunction {
    /// The mapped design.
    pub design: MappedNetlist,
    /// Current region.
    pub region: Rect,
    /// Its implementation (placement + live nets).
    pub placed: PlacedDesign,
}

/// Summary returned by [`RunTimeManager::load`].
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The new function's id.
    pub id: FunctionId,
    /// Where it was placed.
    pub region: Rect,
    /// Rearrangement moves that were executed to make room (empty if the
    /// request fitted immediately).
    pub moves: Vec<Move>,
    /// Relocation reports for every cell moved during rearrangement.
    pub relocations: Vec<RelocationReport>,
}

impl LoadReport {
    /// Total configuration frames written by the rearrangement (zero
    /// when the request fitted immediately).
    pub fn frames_total(&self) -> usize {
        self.relocations.iter().map(|r| r.frames_total()).sum()
    }

    /// CLBs of running logic that were relocated to make room.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }
}

/// The non-mutating preview returned by
/// [`RunTimeManager::preview_admission`]: what loading a function of the
/// requested shape would do to this device.
#[derive(Debug, Clone)]
pub struct AdmissionPreview {
    /// Rearrangement moves the load would execute first (empty if the
    /// request fits as-is).
    pub moves: Vec<Move>,
    /// The region the allocator would hand the function.
    pub region: Rect,
    /// Predicted fragmentation metrics after rearrangement *and*
    /// placement.
    pub after: FragMetrics,
}

impl AdmissionPreview {
    /// CLBs of running logic the rearrangement would relocate.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }
}

/// Summary returned by [`RunTimeManager::defragment`]: the executed
/// compaction plan, the per-cell relocation traffic, and the
/// fragmentation before/after — the evidence that a service-initiated
/// defragmentation cycle actually helped.
#[derive(Debug, Clone)]
pub struct DefragReport {
    /// The function moves the compaction executed.
    pub moves: Vec<Move>,
    /// Relocation reports for every cell moved.
    pub relocations: Vec<RelocationReport>,
    /// Fragmentation metrics before the cycle.
    pub before: FragMetrics,
    /// Fragmentation metrics after the cycle.
    pub after: FragMetrics,
}

impl DefragReport {
    /// Total configuration frames written across all relocations.
    pub fn frames_total(&self) -> usize {
        self.relocations.iter().map(|r| r.frames_total()).sum()
    }

    /// CLBs of running logic relocated.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }

    /// How much the fragmentation index dropped (positive = improved).
    pub fn improvement(&self) -> f64 {
        self.before.fragmentation() - self.after.fragmentation()
    }
}

impl fmt::Display for DefragReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "defrag: {} moves, {} CLBs, {} frames, frag {:.3} -> {:.3}",
            self.moves.len(),
            self.cells_moved(),
            self.frames_total(),
            self.before.fragmentation(),
            self.after.fragmentation(),
        )
    }
}

/// The run-time manager. See the [crate-level docs](crate).
#[derive(Debug)]
pub struct RunTimeManager {
    dev: Device,
    arena: TaskArena,
    functions: BTreeMap<FunctionId, LoadedFunction>,
    next_id: FunctionId,
    recovery: ConfigMemory,
    /// Allocation strategy for incoming functions.
    pub strategy: Strategy,
}

impl RunTimeManager {
    /// A manager over a blank device.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    ///
    /// let mgr = RunTimeManager::new(Part::Xcv50);
    /// assert_eq!(mgr.status().functions, 0);
    /// assert_eq!(mgr.fragmentation().utilisation(), 0.0);
    /// ```
    pub fn new(part: Part) -> Self {
        let dev = Device::new(part);
        let arena = TaskArena::new(dev.bounds());
        let recovery = dev.config().snapshot();
        RunTimeManager {
            dev,
            arena,
            functions: BTreeMap::new(),
            next_id: 1,
            recovery,
            strategy: Strategy::BestFit,
        }
    }

    /// The device (read-only).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Loaded functions.
    pub fn functions(&self) -> impl Iterator<Item = (FunctionId, &LoadedFunction)> {
        self.functions.iter().map(|(id, f)| (*id, f))
    }

    /// One loaded function.
    pub fn function(&self, id: FunctionId) -> Option<&LoadedFunction> {
        self.functions.get(&id)
    }

    /// Current fragmentation metrics.
    pub fn fragmentation(&self) -> FragMetrics {
        self.arena.fragmentation()
    }

    /// Plans — without executing anything — the rearrangement that
    /// [`RunTimeManager::load`] would run to free a `rows`×`cols`
    /// region: an empty plan when the request fits as-is, a move list
    /// when rearrangement would be needed, `None` when even compaction
    /// cannot help. Lets a service weigh the relocation cost of an
    /// admission before committing to it.
    pub fn plan_room(&self, rows: u16, cols: u16) -> Option<Vec<Move>> {
        make_room(&self.arena, rows, cols)
    }

    /// Plans — without executing anything — the raw ordered compaction.
    /// [`RunTimeManager::defragment`] additionally refuses to execute a
    /// plan whose predicted improvement is zero; use
    /// [`RunTimeManager::predicted_defrag_gain`] for the net effect.
    pub fn plan_defrag(&self) -> Vec<Move> {
        plan_compaction(&self.arena)
    }

    /// Predicted drop of the fragmentation index if
    /// [`RunTimeManager::defragment`] ran now (zero when the cycle would
    /// be skipped as useless). Lets a service — or a fleet router
    /// choosing which device most deserves a cycle — rank devices by how
    /// much a compaction would actually buy.
    pub fn predicted_defrag_gain(&self) -> f64 {
        let moves = plan_compaction(&self.arena);
        if moves.is_empty() {
            return 0.0;
        }
        let predicted = predict_metrics(&self.arena, &moves);
        (self.fragmentation().fragmentation() - predicted.fragmentation()).max(0.0)
    }

    /// Previews — without executing anything — the full admission of a
    /// `rows`×`cols` function: the rearrangement [`RunTimeManager::load`]
    /// would execute, the region the allocator would then hand out, and
    /// the fragmentation metrics the device would be left with. `None`
    /// when even compaction cannot make room.
    ///
    /// This is the cross-device routing primitive: a fleet-level router
    /// can ask every device "what would admitting this cost you and what
    /// state would it leave you in" and pick the device whose
    /// post-placement fragmentation is lowest.
    pub fn preview_admission(&self, rows: u16, cols: u16) -> Option<AdmissionPreview> {
        let moves = make_room(&self.arena, rows, cols)?;
        let mut scratch = self.arena.clone();
        for mv in &moves {
            scratch.relocate(mv.id, mv.to).ok()?;
        }
        // An id no real function can hold: the preview allocation exists
        // only on the scratch copy.
        let region = scratch
            .allocate(FunctionId::MAX, rows, cols, self.strategy)
            .ok()?;
        Some(AdmissionPreview {
            moves,
            region,
            after: scratch.fragmentation(),
        })
    }

    /// Runs a full defragmentation cycle: plans an ordered compaction
    /// (`rtm-place`'s [`plan_compaction`]) and executes every move with
    /// staged dynamic relocation — the moved functions keep running
    /// throughout, which is the paper's core claim. `observer` is
    /// invoked after every relocation step.
    ///
    /// # Errors
    ///
    /// Propagates engine errors if any cell move fails; the area
    /// bookkeeping of already-executed moves remains consistent.
    pub fn defragment(
        &mut self,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<DefragReport, CoreError> {
        let before = self.fragmentation();
        let moves = plan_compaction(&self.arena);
        // Execute only plans predicted to lower the fragmentation index.
        // Ordered compaction always packs leftward, and on some layouts
        // (the bursty trace showed 0.549 -> 0.549) that moves running
        // functions without growing the largest free rectangle — pure
        // reconfiguration traffic for nothing. Skipped cycles cause no
        // device traffic and no checkpoint.
        let useless = !moves.is_empty()
            && predict_metrics(&self.arena, &moves).fragmentation() >= before.fragmentation();
        if moves.is_empty() || useless {
            return Ok(DefragReport {
                moves: Vec::new(),
                relocations: Vec::new(),
                before,
                after: before,
            });
        }
        let mut relocations = Vec::new();
        for mv in &moves {
            let reports = self.relocate_function_inner(mv.id, mv.to, &mut observer)?;
            relocations.extend(reports);
        }
        self.checkpoint();
        Ok(DefragReport {
            moves,
            relocations,
            before,
            after: self.fragmentation(),
        })
    }

    /// Loads a function into a `rows`×`cols` region, rearranging running
    /// functions if needed. Each executed move is performed with dynamic
    /// relocation; `observer` is invoked after every relocation step so a
    /// caller can keep simulations clocking.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    /// use rtm_netlist::{random::RandomCircuit, techmap::map_to_luts};
    ///
    /// let mut mgr = RunTimeManager::new(Part::Xcv200);
    /// let design = map_to_luts(&RandomCircuit::free_running(4, 10, 1).generate()).unwrap();
    /// let report = mgr.load(&design, 8, 8, |_, _, _| {}).unwrap();
    /// assert!(report.moves.is_empty(), "an empty device needs no rearrangement");
    /// assert_eq!(mgr.functions().count(), 1);
    /// mgr.unload(report.id).unwrap();
    /// assert_eq!(mgr.functions().count(), 0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] when even rearrangement cannot free a
    /// region, or implementation errors from placement/routing.
    pub fn load(
        &mut self,
        design: &MappedNetlist,
        rows: u16,
        cols: u16,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<LoadReport, CoreError> {
        // Plan (and execute) any rearrangement needed.
        let plan = make_room(&self.arena, rows, cols).ok_or(CoreError::Place(
            rtm_place::PlaceError::NoFit { rows, cols },
        ))?;
        let mut relocations = Vec::new();
        for mv in &plan {
            let reports = self.relocate_function_inner(mv.id, mv.to, &mut observer)?;
            relocations.extend(reports);
        }
        if !plan.is_empty() {
            // The executed moves are durable state even if the load
            // itself fails below: checkpoint them so a failure rollback
            // keeps the configuration consistent with the bookkeeping.
            self.checkpoint();
        }

        let id = self.next_id;
        let region = self.arena.allocate(id, rows, cols, self.strategy)?;
        // Other functions' wires may cross this region (relocation paths
        // are not region-bounded): reserve them so the router cannot
        // bridge nets.
        let reserved = self.foreign_nodes(None);
        let placed = match implement_reserved(&mut self.dev, design, region, &reserved) {
            Ok(placed) => placed,
            Err(e) => {
                // A failed implementation leaves partly configured
                // cells and partly routed nets behind. Undo both sides:
                // release the area reservation (an orphaned arena task
                // would poison every later compaction plan) and restore
                // the last configuration checkpoint — the paper's
                // recovery copy doing exactly its job.
                self.arena
                    .release(id)
                    .expect("region was allocated just above");
                self.recover()?;
                return Err(e.into());
            }
        };
        self.functions.insert(
            id,
            LoadedFunction {
                design: design.clone(),
                region,
                placed,
            },
        );
        self.next_id += 1;
        self.checkpoint();
        Ok(LoadReport {
            id,
            region,
            moves: plan,
            relocations,
        })
    }

    /// Unloads a function: releases its region, routing and cells.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] for unknown ids.
    pub fn unload(&mut self, id: FunctionId) -> Result<(), CoreError> {
        let f = self
            .functions
            .remove(&id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        self.arena.release(id)?;
        let mut placed = f.placed;
        let nets: Vec<_> = placed.netdb.nets().map(|(n, _)| n).collect();
        for n in nets {
            placed.netdb.remove_net(&mut self.dev, n);
        }
        let all_locs: Vec<_> = placed
            .placement
            .cell_locs
            .iter()
            .chain(placed.placement.feed_locs.iter())
            .chain(placed.placement.tap_locs.iter())
            .copied()
            .collect();
        for loc in all_locs {
            self.dev
                .set_cell(loc.0, loc.1, rtm_fpga::cell::LogicCell::default())?;
            self.dev.set_cell_state(loc.0, loc.1, false)?;
        }
        self.checkpoint();
        Ok(())
    }

    /// Moves a whole running function to a new region (same shape) with
    /// staged, cell-by-cell dynamic relocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    /// use rtm_fpga::geom::{ClbCoord, Rect};
    /// use rtm_netlist::{random::RandomCircuit, techmap::map_to_luts};
    ///
    /// let mut mgr = RunTimeManager::new(Part::Xcv200);
    /// let design = map_to_luts(&RandomCircuit::free_running(4, 10, 2).generate()).unwrap();
    /// let loaded = mgr.load(&design, 8, 8, |_, _, _| {}).unwrap();
    /// let to = Rect::new(ClbCoord::new(18, 20), 8, 8);
    /// let reports = mgr.relocate_function(loaded.id, to, |_, _, _| {}).unwrap();
    /// assert!(!reports.is_empty(), "every placed cell was relocated live");
    /// assert_eq!(mgr.function(loaded.id).unwrap().region, to);
    /// ```
    ///
    /// # Errors
    ///
    /// Area errors if the target overlaps another function; engine errors
    /// if any cell move fails.
    pub fn relocate_function(
        &mut self,
        id: FunctionId,
        to: Rect,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<Vec<RelocationReport>, CoreError> {
        let reports = self.relocate_function_inner(id, to, &mut observer)?;
        self.checkpoint();
        Ok(reports)
    }

    fn relocate_function_inner(
        &mut self,
        id: FunctionId,
        to: Rect,
        observer: &mut impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<Vec<RelocationReport>, CoreError> {
        let from = self
            .arena
            .task_rect(id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        // Area bookkeeping first: rejects overlap with other functions.
        self.arena.relocate(id, to)?;

        // All routing of this move must respect every other function's
        // wires: reserve their nodes in the moving function's database.
        let reserved = self.foreign_nodes(Some(id));
        let f = self
            .functions
            .get_mut(&id)
            .expect("function table in sync with arena");
        f.placed.netdb.reserve(reserved);
        let dr = to.origin.row as i32 - from.origin.row as i32;
        let dc = to.origin.col as i32 - from.origin.col as i32;

        // Collect every slot to move (cells + feeds), ordered so that
        // slots furthest along the movement direction go first — their
        // destinations are never occupied by a not-yet-moved sibling
        // (memmove ordering).
        let mut slots: Vec<CellLoc> = Vec::new();
        slots.extend(f.placed.placement.cell_locs.iter().copied());
        slots.extend(f.placed.placement.feed_locs.iter().copied());
        slots.extend(f.placed.placement.tap_locs.iter().copied());
        slots.sort_by_key(|loc| {
            -(loc.0.col as i64 * dc.signum() as i64 + loc.0.row as i64 * dr.signum() as i64)
        });

        let mut reports = Vec::new();
        for src in slots {
            let dst_tile = src
                .0
                .offset(dr, dc)
                .ok_or_else(|| CoreError::DesignMismatch {
                    detail: format!("translated tile for {} out of bounds", src.0),
                })?;
            let dst = (dst_tile, src.1);
            if dst == src {
                continue;
            }
            let opts = RelocationOptions::default();
            let report = relocate_cell(
                &mut self.dev,
                &mut f.placed,
                src,
                dst,
                &opts,
                &mut *observer,
            )
            .inspect_err(|_| {
                // Leave no dangling reservations behind on failure.
            });
            match report {
                Ok(report) => reports.push(report),
                Err(e) => {
                    f.placed.netdb.clear_reservations();
                    return Err(e);
                }
            }
        }
        f.placed.netdb.clear_reservations();
        f.region = to;
        Ok(reports)
    }

    /// Every routing node owned by functions other than `except` — the
    /// set that must be reserved before routing on their behalf.
    fn foreign_nodes(&self, except: Option<FunctionId>) -> Vec<rtm_fpga::routing::RouteNode> {
        let mut nodes = Vec::new();
        for (fid, f) in &self.functions {
            if Some(*fid) == except {
                continue;
            }
            nodes.extend(f.placed.netdb.all_nodes());
        }
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Relocates a single cell of a loaded function — the tool's
    /// coordinate-pair input mode (§4: "providing the co-ordinates —
    /// source and destination — of the CLB to be relocated").
    ///
    /// # Errors
    ///
    /// Unknown ids, busy destinations and engine errors.
    pub fn relocate_cell_of(
        &mut self,
        id: FunctionId,
        src: CellLoc,
        dst: CellLoc,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<RelocationReport, CoreError> {
        if !self
            .arena
            .task_rect(id)
            .map(|r| r.contains(dst.0))
            .unwrap_or(false)
        {
            // The destination must stay within the function's region so
            // the area bookkeeping remains truthful.
            return Err(CoreError::DestinationBusy {
                tile: dst.0,
                cell: dst.1,
            });
        }
        let reserved = self.foreign_nodes(Some(id));
        let f = self
            .functions
            .get_mut(&id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        f.placed.netdb.reserve(reserved);
        let result = relocate_cell(
            &mut self.dev,
            &mut f.placed,
            src,
            dst,
            &RelocationOptions::default(),
            &mut observer,
        );
        f.placed.netdb.clear_reservations();
        let report = result?;
        self.checkpoint();
        Ok(report)
    }

    /// Takes a fresh recovery snapshot of the configuration ("the program
    /// always keeps a complete copy of the current configuration",
    /// paper §4).
    pub fn checkpoint(&mut self) {
        self.recovery = self.dev.config().snapshot();
    }

    /// Restores the last checkpoint into the device (system recovery).
    ///
    /// # Errors
    ///
    /// Propagates frame-write errors (cannot occur for a matching part).
    pub fn recover(&mut self) -> Result<usize, CoreError> {
        let frames = self.dev.config().diff_frames(&self.recovery);
        let n = frames.len();
        for addr in frames {
            let frame = self.recovery.read_frame(addr)?;
            self.dev.write_frame(addr, frame)?;
        }
        Ok(n)
    }

    /// One-line status for the CLI.
    pub fn status(&self) -> ManagerStatus {
        ManagerStatus {
            part: self.dev.part(),
            functions: self.functions.len(),
            frag: self.fragmentation(),
        }
    }
}

/// Status summary of the manager.
#[derive(Debug, Clone, Copy)]
pub struct ManagerStatus {
    /// The device part.
    pub part: Part,
    /// Number of resident functions.
    pub functions: usize,
    /// Fragmentation metrics.
    pub frag: FragMetrics,
}

impl fmt::Display for ManagerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} functions | {}",
            self.part, self.functions, self.frag
        )
    }
}

/// Convenience: the translated rectangle of a move (used by callers
/// replaying plans).
pub fn translate(rect: Rect, to_origin: ClbCoord) -> Rect {
    Rect::new(to_origin, rect.rows, rect.cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    fn small_design(seed: u64) -> MappedNetlist {
        map_to_luts(&RandomCircuit::free_running(4, 10, seed).generate()).unwrap()
    }

    #[test]
    fn load_and_unload_roundtrip() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(1);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        assert!(r.moves.is_empty());
        assert_eq!(mgr.functions().count(), 1);
        assert!(mgr.fragmentation().utilisation() > 0.0);
        mgr.unload(r.id).unwrap();
        assert_eq!(mgr.functions().count(), 0);
        // Device fully cleaned: everything unconfigured again.
        assert_eq!(mgr.device().pips().count(), 0);
        let used = mgr.device().used_in(mgr.device().bounds());
        assert!(used.is_empty(), "leftover cells: {used:?}");
    }

    #[test]
    fn failed_load_leaves_no_orphan_state() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        // Far more LUTs than a 2x2 region can hold: placement fails
        // after the region was reserved.
        let big = map_to_luts(&RandomCircuit::free_running(4, 30, 77).generate()).unwrap();
        assert!(mgr.load(&big, 2, 2, |_, _, _| {}).is_err());
        // The failure must not leak the area reservation (an orphaned
        // arena task would poison every later compaction plan and crash
        // `defragment`) nor any partial configuration.
        assert_eq!(mgr.fragmentation().utilisation(), 0.0);
        assert!(mgr.device().used_in(mgr.device().bounds()).is_empty());
        // The manager keeps working normally.
        mgr.defragment(|_, _, _| {}).unwrap();
        let d = small_design(1);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        mgr.unload(r.id).unwrap();
        assert_eq!(mgr.functions().count(), 0);
    }

    #[test]
    fn unknown_function_errors() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        assert!(mgr.unload(42).is_err());
        assert!(mgr
            .relocate_function(42, Rect::new(ClbCoord::new(0, 0), 2, 2), |_, _, _| {})
            .is_err());
    }

    #[test]
    fn relocate_function_translates_every_cell() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(2);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let from = r.region;
        let to = Rect::new(ClbCoord::new(18, 20), from.rows, from.cols);
        let reports = mgr.relocate_function(r.id, to, |_, _, _| {}).unwrap();
        assert!(!reports.is_empty());
        let f = mgr.function(r.id).unwrap();
        assert_eq!(f.region, to);
        for loc in f
            .placed
            .placement
            .cell_locs
            .iter()
            .chain(f.placed.placement.feed_locs.iter())
        {
            assert!(to.contains(loc.0), "{} escaped the target region", loc.0);
        }
        // The old region is fully clean.
        assert!(mgr.device().used_in(from).is_empty());
    }

    #[test]
    fn overlapping_function_move_with_sliding_overlap() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(3);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let from = r.region;
        // Slide by 3 columns (direction chosen to stay on the device):
        // overlapping source/destination.
        let new_col = if from.origin.col >= 3 {
            from.origin.col - 3
        } else {
            from.origin.col + 3
        };
        let to = Rect::new(
            ClbCoord::new(from.origin.row, new_col),
            from.rows,
            from.cols,
        );
        mgr.relocate_function(r.id, to, |_, _, _| {}).unwrap();
        assert_eq!(mgr.function(r.id).unwrap().region, to);
    }

    #[test]
    fn relocate_cell_of_moves_one_cell_within_region() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(9);
        let r = mgr.load(&d, 10, 10, |_, _, _| {}).unwrap();
        let f = mgr.function(r.id).unwrap();
        let src = f.placed.placement.cell_locs[0];
        // A free slot inside the function's own region.
        let dst =
            crate::relocation::find_aux_sites(mgr.device(), &f.placed.netdb, src.0, 1, &[src])
                .unwrap()[0];
        assert!(r.region.contains(dst.0), "aux search stays near src");
        let report = mgr.relocate_cell_of(r.id, src, dst, |_, _, _| {}).unwrap();
        assert_eq!(report.src, src);
        assert_eq!(report.dst, dst);
        assert_eq!(
            mgr.function(r.id).unwrap().placed.placement.cell_locs[0],
            dst
        );

        // A destination outside the region is refused.
        let outside_tile = mgr
            .device()
            .bounds()
            .iter()
            .find(|t| !r.region.contains(*t))
            .expect("device larger than the region");
        assert!(matches!(
            mgr.relocate_cell_of(r.id, dst, (outside_tile, 0), |_, _, _| {}),
            Err(CoreError::DestinationBusy { .. })
        ));
    }

    #[test]
    fn recovery_restores_configuration() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(4);
        mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let before = mgr.device().config().snapshot();
        // Vandalise the device outside the manager's knowledge.
        let mut clb = *mgr.device().clb(ClbCoord::new(0, 0)).unwrap();
        clb.cells[0].lut = rtm_fpga::lut::Lut::constant(true);
        mgr.dev.set_clb(ClbCoord::new(0, 0), clb).unwrap();
        assert!(!mgr.device().config().diff_frames(&before).is_empty());
        let restored = mgr.recover().unwrap();
        assert!(restored > 0);
        assert!(mgr.device().config().diff_frames(&before).is_empty());
    }

    #[test]
    fn defragment_consolidates_free_space() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
        let d1 = small_design(12);
        let d2 = small_design(13);
        let a = mgr.load(&d1, 16, 6, |_, _, _| {}).unwrap();
        let b = mgr.load(&d2, 16, 6, |_, _, _| {}).unwrap();
        // Strand the functions so the free space splits into two gaps.
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
            .unwrap();
        let before = mgr.fragmentation();
        assert!(before.exceeds(0.4), "setup must fragment: {before}");
        let planned = mgr.plan_defrag();
        let report = mgr.defragment(|_, _, _| {}).unwrap();
        assert_eq!(report.moves, planned, "plan matches execution");
        assert!(!report.moves.is_empty());
        assert!(report.frames_total() > 0);
        assert!(
            report.improvement() > 0.0,
            "compaction must reduce fragmentation: {report}"
        );
        assert_eq!(report.after.fragmentation(), 0.0, "one free rectangle");
        // Both functions still resident, regions disjoint.
        assert_eq!(mgr.functions().count(), 2);
    }

    #[test]
    fn defragment_skips_cycles_with_no_predicted_improvement() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
        let a = mgr.load(&small_design(20), 16, 4, |_, _, _| {}).unwrap();
        let b = mgr.load(&small_design(21), 16, 8, |_, _, _| {}).unwrap();
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 0), 16, 4), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 16), 16, 8), |_, _, _| {})
            .unwrap();
        // Free space (cols 4-15) is already one rectangle, yet ordered
        // compaction still wants to slide b leftward: 128 CLBs of
        // relocation traffic with zero predicted improvement.
        let before = mgr.fragmentation();
        assert_eq!(before.fragmentation(), 0.0);
        assert!(!mgr.plan_defrag().is_empty(), "left-pack plans a move");
        assert_eq!(mgr.predicted_defrag_gain(), 0.0);

        let report = mgr.defragment(|_, _, _| {}).unwrap();
        assert!(report.moves.is_empty(), "useless cycle must be skipped");
        assert!(report.relocations.is_empty());
        assert_eq!(report.before, report.after);
        // Nothing moved on the device.
        assert_eq!(mgr.function(b.id).unwrap().region.origin.col, 16);
    }

    #[test]
    fn preview_admission_predicts_without_mutating() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let r = mgr.load(&small_design(14), 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
            .unwrap();
        // A 16x12 request needs the stranded function out of the middle.
        let p = mgr.preview_admission(16, 12).expect("satisfiable");
        assert!(!p.moves.is_empty());
        assert!(p.cells_moved() > 0);
        assert_eq!((p.region.rows, p.region.cols), (16, 12));
        assert!(
            p.after.utilisation() > mgr.fragmentation().utilisation(),
            "prediction includes the incoming function"
        );
        // Nothing actually happened.
        assert_eq!(mgr.function(r.id).unwrap().region.origin.col, 9);
        assert_eq!(mgr.functions().count(), 1);
        // A fitting request previews with an empty plan; an impossible
        // one with None.
        assert!(mgr.preview_admission(4, 4).unwrap().moves.is_empty());
        assert!(mgr.preview_admission(16, 24).is_none());
    }

    #[test]
    fn plan_room_previews_load_rearrangement() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let d = small_design(14);
        let r = mgr.load(&d, 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
            .unwrap();
        // A 16x12 request needs the stranded function out of the middle.
        let plan = mgr.plan_room(16, 12).expect("satisfiable");
        assert!(!plan.is_empty());
        // Planning must not have changed any state.
        assert_eq!(mgr.function(r.id).unwrap().region.origin.col, 9);
        // An impossible request is reported as such.
        assert!(mgr.plan_room(16, 24).is_none());
    }

    #[test]
    fn load_rearranges_when_fragmented() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
                                                        // Two 16x6 functions arranged to leave two 6-column gaps.
        let d1 = small_design(5);
        let a = mgr.load(&d1, 16, 6, |_, _, _| {}).unwrap();
        let d2 = small_design(6);
        let b = mgr.load(&d2, 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
            .unwrap();
        // Free space: columns 0..6 and 12..18 — fragmented. A 16x10
        // request cannot fit in either gap, but fits after rearrangement.
        assert!(mgr.fragmentation().largest_rect < 160);
        let d3 = small_design(7);
        let r = mgr.load(&d3, 16, 10, |_, _, _| {}).unwrap();
        assert!(!r.moves.is_empty(), "rearrangement must have happened");
        assert_eq!(mgr.functions().count(), 3);
    }
}
